//! Per-column statistics: equi-depth histogram + most-common values + NDV.
//!
//! This is the Postgres-flavoured statistic the traditional baselines use
//! (Selinger model, JoinHist): per-column, independence across columns,
//! MCV list for skew, equi-depth buckets for ranges, and a fixed default
//! selectivity for `LIKE` — deliberately reproducing the weaknesses the
//! paper's Figure 7 shows for the `Postgres` baseline.

use fj_query::{like_match, CmpOp, FilterExpr, Predicate};
use fj_storage::{Column, DataType, Value};
use std::collections::HashMap;

/// Number of MCVs retained, as in Postgres' default statistics target ÷ 1.
const NUM_MCV: usize = 32;
/// Number of equi-depth buckets.
const NUM_BUCKETS: usize = 64;
/// Postgres-style default selectivity for un-anchored LIKE patterns.
const DEFAULT_MATCH_SEL: f64 = 0.005;
/// Default equality selectivity when the value misses MCVs and NDV is unknown.
const DEFAULT_EQ_SEL: f64 = 0.005;

/// Summary statistics of one column.
#[derive(Debug, Clone)]
pub struct ColumnHistogram {
    total: f64,
    null_frac: f64,
    ndv: f64,
    dtype: DataType,
    /// Most common integer values (or dictionary codes) with frequencies.
    mcv: Vec<(i64, f64)>,
    /// Most common strings (kept as text for LIKE evaluation).
    mcv_str: Vec<(String, f64)>,
    /// Equi-depth bucket upper bounds over non-MCV integer values.
    uppers: Vec<i64>,
    /// Fraction of rows per bucket (uniform by construction, kept explicit).
    bucket_frac: Vec<f64>,
    /// Global min/max of non-null integer values.
    minmax: Option<(i64, i64)>,
}

impl ColumnHistogram {
    /// Builds statistics for `col`.
    pub fn build(col: &Column) -> Self {
        let total = col.len() as f64;
        let nulls = col.nulls().null_count() as f64;
        let null_frac = if total > 0.0 { nulls / total } else { 0.0 };
        match col.dtype() {
            DataType::Int => Self::build_int(col, total, null_frac),
            DataType::Str => Self::build_str(col, total, null_frac),
            DataType::Float => ColumnHistogram {
                total,
                null_frac,
                ndv: 0.0,
                dtype: DataType::Float,
                mcv: Vec::new(),
                mcv_str: Vec::new(),
                uppers: Vec::new(),
                bucket_frac: Vec::new(),
                minmax: None,
            },
        }
    }

    fn build_int(col: &Column, total: f64, null_frac: f64) -> Self {
        let mut counts: HashMap<i64, u64> = HashMap::new();
        for i in 0..col.len() {
            if !col.is_null(i) {
                *counts.entry(col.ints()[i]).or_default() += 1;
            }
        }
        let ndv = counts.len() as f64;
        let minmax = counts
            .keys()
            .fold(None, |acc: Option<(i64, i64)>, &v| match acc {
                None => Some((v, v)),
                Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
            });
        let mut by_freq: Vec<(i64, u64)> = counts.iter().map(|(&v, &c)| (v, c)).collect();
        by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mcv: Vec<(i64, f64)> = by_freq
            .iter()
            .take(NUM_MCV)
            .map(|&(v, c)| (v, c as f64 / total.max(1.0)))
            .collect();
        let mcv_set: std::collections::HashSet<i64> = mcv.iter().map(|&(v, _)| v).collect();
        // Histogram over remaining values (value-weighted equi-depth).
        let mut rest: Vec<(i64, u64)> = by_freq
            .iter()
            .filter(|(v, _)| !mcv_set.contains(v))
            .copied()
            .collect();
        rest.sort_unstable_by_key(|&(v, _)| v);
        let rest_rows: u64 = rest.iter().map(|&(_, c)| c).sum();
        let mut uppers = Vec::new();
        let mut bucket_frac = Vec::new();
        if rest_rows > 0 {
            let per = (rest_rows as usize).div_ceil(NUM_BUCKETS) as u64;
            let mut acc = 0u64;
            for &(v, c) in &rest {
                acc += c;
                if acc >= per {
                    uppers.push(v);
                    bucket_frac.push(acc as f64 / total.max(1.0));
                    acc = 0;
                }
            }
            if acc > 0 {
                uppers.push(rest.last().expect("non-empty rest").0);
                bucket_frac.push(acc as f64 / total.max(1.0));
            }
        }
        ColumnHistogram {
            total,
            null_frac,
            ndv,
            dtype: DataType::Int,
            mcv,
            mcv_str: Vec::new(),
            uppers,
            bucket_frac,
            minmax,
        }
    }

    fn build_str(col: &Column, total: f64, null_frac: f64) -> Self {
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for i in 0..col.len() {
            if !col.is_null(i) {
                *counts.entry(col.codes()[i]).or_default() += 1;
            }
        }
        let ndv = counts.len() as f64;
        let mut by_freq: Vec<(u32, u64)> = counts.into_iter().collect();
        by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let dict = col.dict();
        let mcv_str: Vec<(String, f64)> = by_freq
            .iter()
            .take(NUM_MCV)
            .map(|&(c, n)| (dict[c as usize].clone(), n as f64 / total.max(1.0)))
            .collect();
        ColumnHistogram {
            total,
            null_frac,
            ndv,
            dtype: DataType::Str,
            mcv: Vec::new(),
            mcv_str,
            uppers: Vec::new(),
            bucket_frac: Vec::new(),
            minmax: None,
        }
    }

    /// Number of rows the statistics were built over.
    pub fn total_rows(&self) -> f64 {
        self.total
    }

    /// Incorporates rows `first_new_row..` of the (already appended-to)
    /// column in `O(|delta|)` — the Postgres-`ANALYZE`-avoiding maintenance
    /// path of paper §4.3 applied to the traditional per-column statistic.
    /// Totals, the NULL fraction, min/max, and the retained MCV
    /// frequencies update exactly; equi-depth bucket *boundaries* stay
    /// frozen with their masses rescaled (bucket re-selection, like bin
    /// re-selection, is a rebuild-time decision), and new MCV-missed
    /// *integer* values spread across the frozen buckets (string columns
    /// keep only an MCV list, as at build time). The NDV estimate keeps its
    /// build-time value (distinguishing genuinely-new values from repeats
    /// needs the full value set, which only a rebuild re-derives).
    pub fn insert(&mut self, col: &Column, first_new_row: usize) {
        let old_total = self.total;
        let new_total = col.len() as f64;
        if new_total <= old_total {
            return;
        }
        let scale = old_total / new_total.max(1.0);
        // Exact rescale of every stored fraction to the new denominator.
        for (_, f) in self.mcv.iter_mut() {
            *f *= scale;
        }
        for (_, f) in self.mcv_str.iter_mut() {
            *f *= scale;
        }
        let mut rest_mass = 0.0;
        for f in self.bucket_frac.iter_mut() {
            *f *= scale;
        }
        let mut nulls = self.null_frac * old_total;
        // One pass over the delta: bump MCV hits exactly, pool the rest.
        let one = 1.0 / new_total.max(1.0);
        for i in first_new_row..col.len() {
            if col.is_null(i) {
                nulls += 1.0;
                continue;
            }
            match self.dtype {
                DataType::Int => {
                    let v = col.ints()[i];
                    self.minmax = Some(match self.minmax {
                        None => (v, v),
                        Some((lo, hi)) => (lo.min(v), hi.max(v)),
                    });
                    if let Some((_, f)) = self.mcv.iter_mut().find(|&&mut (m, _)| m == v) {
                        *f += one;
                    } else {
                        rest_mass += one;
                    }
                }
                DataType::Str => {
                    // MCV-missed string mass has no histogram form even at
                    // build time (strings keep only an MCV list); misses
                    // fall back to default selectivities like stale
                    // Postgres stats.
                    let s = &col.dict()[col.codes()[i] as usize];
                    if let Some((_, f)) = self.mcv_str.iter_mut().find(|(m, _)| m == s) {
                        *f += one;
                    }
                }
                DataType::Float => {}
            }
        }
        // Spread MCV-missed mass across the frozen buckets proportionally.
        // A histogram built with every value in the MCV list has no
        // buckets; the first MCV-missed inserts then open one catch-all
        // bucket up to the new max, so their mass is represented instead
        // of silently dropped (mirrors Postgres keeping stale stats until
        // the next ANALYZE, not losing rows).
        if rest_mass > 0.0 && self.dtype == DataType::Int {
            let bucket_total: f64 = self.bucket_frac.iter().sum();
            if bucket_total > 0.0 {
                for f in self.bucket_frac.iter_mut() {
                    *f += rest_mass * (*f / bucket_total);
                }
            } else if let Some((_, hi)) = self.minmax {
                self.uppers.push(hi);
                self.bucket_frac.push(rest_mass);
            }
        }
        self.total = new_total;
        self.null_frac = nulls / new_total.max(1.0);
    }

    /// Estimated number of distinct non-null values.
    pub fn ndv(&self) -> f64 {
        self.ndv
    }

    /// Fraction of NULL rows.
    pub fn null_frac(&self) -> f64 {
        self.null_frac
    }

    /// Estimated selectivity (fraction of rows) of a boolean clause on this
    /// column, combining atoms with independence-style fuzzy logic —
    /// exactly the "attribute independence within a clause" weakness the
    /// traditional baselines exhibit.
    pub fn selectivity(&self, clause: &FilterExpr) -> f64 {
        match clause {
            FilterExpr::True => 1.0,
            FilterExpr::Pred(p) => self.pred_selectivity(p).clamp(0.0, 1.0),
            FilterExpr::And(parts) => parts.iter().map(|c| self.selectivity(c)).product(),
            FilterExpr::Or(parts) => {
                let miss: f64 = parts.iter().map(|c| 1.0 - self.selectivity(c)).product();
                1.0 - miss
            }
            FilterExpr::Not(inner) => 1.0 - self.selectivity(inner),
        }
    }

    fn pred_selectivity(&self, p: &Predicate) -> f64 {
        match p {
            Predicate::IsNull { negated, .. } => {
                if *negated {
                    1.0 - self.null_frac
                } else {
                    self.null_frac
                }
            }
            Predicate::Cmp { op, value, .. } => match self.dtype {
                DataType::Int | DataType::Float => self.numeric_cmp(*op, value),
                DataType::Str => self.string_cmp(*op, value),
            },
            Predicate::Between { lo, hi, .. } => {
                let a = self.numeric_cmp(CmpOp::Ge, lo);
                let b = self.numeric_cmp(CmpOp::Le, hi);
                (a + b - 1.0).max(0.0)
            }
            Predicate::InList { values, .. } => {
                let sum: f64 = values
                    .iter()
                    .map(|v| {
                        self.pred_selectivity(&Predicate::Cmp {
                            column: String::new(),
                            op: CmpOp::Eq,
                            value: v.clone(),
                        })
                    })
                    .sum();
                sum.min(1.0)
            }
            Predicate::Like {
                pattern, negated, ..
            } => {
                let hit: f64 = self
                    .mcv_str
                    .iter()
                    .filter(|(s, _)| like_match(pattern, s))
                    .map(|&(_, f)| f)
                    .sum();
                let mcv_mass: f64 = self.mcv_str.iter().map(|&(_, f)| f).sum();
                let rest = (1.0 - self.null_frac - mcv_mass).max(0.0);
                let sel = hit + rest * DEFAULT_MATCH_SEL;
                if *negated {
                    (1.0 - self.null_frac - sel).max(0.0)
                } else {
                    sel
                }
            }
        }
    }

    fn numeric_cmp(&self, op: CmpOp, value: &Value) -> f64 {
        let Some(v) = value.as_float() else {
            return 0.0;
        };
        match op {
            CmpOp::Eq => self.eq_selectivity(value),
            CmpOp::Neq => (1.0 - self.null_frac - self.eq_selectivity(value)).max(0.0),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                // MCVs contribute exactly; histogram buckets interpolate.
                let mut sel = 0.0;
                for &(m, f) in &self.mcv {
                    if op.eval((m as f64).partial_cmp(&v).expect("finite")) {
                        sel += f;
                    }
                }
                let mut prev = self.minmax.map(|(lo, _)| lo).unwrap_or(0);
                for (i, &u) in self.uppers.iter().enumerate() {
                    let frac = self.bucket_frac[i];
                    let (blo, bhi) = (prev as f64, u as f64);
                    let cover = match op {
                        CmpOp::Lt | CmpOp::Le => ((v - blo) / (bhi - blo + 1.0)).clamp(0.0, 1.0),
                        _ => ((bhi - v) / (bhi - blo + 1.0)).clamp(0.0, 1.0),
                    };
                    sel += frac * cover;
                    prev = u;
                }
                sel
            }
        }
    }

    fn eq_selectivity(&self, value: &Value) -> f64 {
        if let Some(v) = value.as_int() {
            if let Some(&(_, f)) = self.mcv.iter().find(|&&(m, _)| m == v) {
                return f;
            }
        } else if let Some(s) = value.as_str() {
            if let Some(&(_, f)) = self.mcv_str.iter().find(|(m, _)| m == s) {
                return f;
            }
        }
        let mcv_mass: f64 = self.mcv.iter().map(|&(_, f)| f).sum::<f64>()
            + self.mcv_str.iter().map(|&(_, f)| f).sum::<f64>();
        let n_mcv = self.mcv.len() + self.mcv_str.len();
        let rest_ndv = (self.ndv - n_mcv as f64).max(1.0);
        if self.ndv > 0.0 {
            ((1.0 - self.null_frac - mcv_mass).max(0.0) / rest_ndv).max(0.0)
        } else {
            DEFAULT_EQ_SEL
        }
    }

    fn string_cmp(&self, op: CmpOp, value: &Value) -> f64 {
        let Some(s) = value.as_str() else { return 0.0 };
        match op {
            CmpOp::Eq => self.eq_selectivity(value),
            CmpOp::Neq => (1.0 - self.null_frac - self.eq_selectivity(value)).max(0.0),
            _ => {
                // Lexicographic ranges: MCV mass + default for the rest.
                let hit: f64 = self
                    .mcv_str
                    .iter()
                    .filter(|(m, _)| op.eval(m.as_str().cmp(s)))
                    .map(|&(_, f)| f)
                    .sum();
                let mcv_mass: f64 = self.mcv_str.iter().map(|&(_, f)| f).sum();
                hit + (1.0 - self.null_frac - mcv_mass).max(0.0) * 0.33
            }
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.mcv.len() * 16
            + self
                .mcv_str
                .iter()
                .map(|(s, _)| s.len() + 24)
                .sum::<usize>()
            + self.uppers.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_storage::{ColumnDef, Table, TableSchema};

    fn int_col(values: &[Option<i64>]) -> Column {
        let schema = TableSchema::new(vec![ColumnDef::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = values
            .iter()
            .map(|v| vec![v.map(Value::Int).unwrap_or(Value::Null)])
            .collect();
        Table::from_rows("t", schema, &rows)
            .unwrap()
            .column(0)
            .clone()
    }

    fn exact_sel(values: &[Option<i64>], clause: &FilterExpr) -> f64 {
        let n = values.len() as f64;
        let hits = values
            .iter()
            .filter(|v| clause.eval(&|_| v.map(Value::Int).unwrap_or(Value::Null)))
            .count();
        hits as f64 / n
    }

    #[test]
    fn insert_tracks_totals_nulls_minmax_and_mcv_exactly() {
        let mut values: Vec<Option<i64>> = vec![Some(7); 200];
        values.extend((0..100).map(Some));
        values.push(None);
        let mut h = ColumnHistogram::build(&int_col(&values));
        // Append a delta: more of the heavy MCV value, a NULL, and a value
        // beyond the old max.
        let mut appended = values.clone();
        appended.extend([Some(7), Some(7), None, Some(5000)].iter().copied());
        let first_new = values.len();
        h.insert(&int_col(&appended), first_new);
        let rebuilt = ColumnHistogram::build(&int_col(&appended));
        // Exactly-maintained statistics match a full rebuild.
        assert_eq!(h.total_rows(), rebuilt.total_rows());
        assert!((h.null_frac() - rebuilt.null_frac()).abs() < 1e-12);
        assert_eq!(h.minmax, rebuilt.minmax);
        // The MCV frequency of 7 is exact under both paths.
        let freq_of_7 =
            |hist: &ColumnHistogram| hist.mcv.iter().find(|&&(v, _)| v == 7).map(|&(_, f)| f);
        let (a, b) = (freq_of_7(&h).unwrap(), freq_of_7(&rebuilt).unwrap());
        assert!((a - b).abs() < 1e-12, "incremental {a} vs rebuilt {b}");
        // Equality selectivity on the MCV stays exact after the update.
        let clause = FilterExpr::pred(Predicate::eq("x", 7));
        let est = h.selectivity(&clause);
        let exact = exact_sel(&appended, &clause);
        assert!((est - exact).abs() < 0.01, "est {est} vs exact {exact}");
        // Probability mass stays normalized (≤ 1 with slack for rounding).
        let mass: f64 = h.null_frac()
            + h.mcv.iter().map(|&(_, f)| f).sum::<f64>()
            + h.bucket_frac.iter().sum::<f64>();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn insert_into_all_mcv_histogram_keeps_new_value_mass() {
        // Built from ≤ NUM_MCV distinct values, the histogram has no
        // buckets; inserted MCV-missed values must still carry their mass
        // (a catch-all bucket opens) instead of vanishing.
        let values: Vec<Option<i64>> = (0..10).map(Some).collect();
        let mut h = ColumnHistogram::build(&int_col(&values));
        assert!(h.bucket_frac.is_empty(), "all values fit the MCV list");
        let mut appended = values.clone();
        // 30 brand-new values: far past the MCV list, above the old max.
        appended.extend((100..130).map(Some));
        h.insert(&int_col(&appended), values.len());
        let mass: f64 = h.null_frac()
            + h.mcv.iter().map(|&(_, f)| f).sum::<f64>()
            + h.bucket_frac.iter().sum::<f64>();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass} lost on insert");
        // The new values' range is selectable, not invisible.
        let clause = FilterExpr::pred(Predicate::cmp("x", CmpOp::Gt, 50));
        let est = h.selectivity(&clause);
        let exact = exact_sel(&appended, &clause);
        assert!(
            est >= exact * 0.5,
            "range over inserted values estimated {est} vs exact {exact}"
        );
    }

    #[test]
    fn equality_on_mcv_is_exact() {
        let mut values: Vec<Option<i64>> = vec![Some(7); 500];
        values.extend((0..500).map(Some));
        let h = ColumnHistogram::build(&int_col(&values));
        let clause = FilterExpr::pred(Predicate::eq("x", 7));
        let est = h.selectivity(&clause);
        let exact = exact_sel(&values, &clause);
        assert!((est - exact).abs() < 0.01, "est {est} vs exact {exact}");
    }

    #[test]
    fn range_estimates_are_close_on_uniform_data() {
        let values: Vec<Option<i64>> = (0..2000).map(Some).collect();
        let h = ColumnHistogram::build(&int_col(&values));
        for cut in [100, 500, 1500, 1900] {
            let clause = FilterExpr::pred(Predicate::cmp("x", CmpOp::Lt, cut));
            let est = h.selectivity(&clause);
            let exact = exact_sel(&values, &clause);
            assert!(
                (est - exact).abs() < 0.08,
                "cut {cut}: est {est:.3} vs exact {exact:.3}"
            );
        }
    }

    #[test]
    fn null_fraction_and_is_null() {
        let values: Vec<Option<i64>> = (0..100)
            .map(|i| if i % 4 == 0 { None } else { Some(i) })
            .collect();
        let h = ColumnHistogram::build(&int_col(&values));
        assert!((h.null_frac() - 0.25).abs() < 1e-9);
        let isnull = FilterExpr::pred(Predicate::IsNull {
            column: "x".into(),
            negated: false,
        });
        assert!((h.selectivity(&isnull) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn selectivities_in_unit_interval() {
        let values: Vec<Option<i64>> = (0..500).map(|i| Some(i % 37)).collect();
        let h = ColumnHistogram::build(&int_col(&values));
        let clauses = [
            FilterExpr::pred(Predicate::eq("x", 5)),
            FilterExpr::pred(Predicate::cmp("x", CmpOp::Neq, 5)),
            FilterExpr::pred(Predicate::between("x", 3, 30)),
            FilterExpr::pred(Predicate::in_list(
                "x",
                vec![Value::Int(1), Value::Int(2), Value::Int(99)],
            )),
            FilterExpr::Not(Box::new(FilterExpr::pred(Predicate::eq("x", 0)))),
            FilterExpr::or(vec![
                FilterExpr::pred(Predicate::eq("x", 1)),
                FilterExpr::pred(Predicate::eq("x", 2)),
            ]),
        ];
        for c in &clauses {
            let s = h.selectivity(c);
            assert!((0.0..=1.0).contains(&s), "{c} → {s}");
        }
    }

    #[test]
    fn like_uses_mcvs_plus_default() {
        let schema = TableSchema::new(vec![ColumnDef::new("s", DataType::Str)]);
        let mut rows: Vec<Vec<Value>> = vec![vec![Value::Str("the hit".into())]; 400];
        rows.extend((0..600).map(|i| vec![Value::Str(format!("tail {i}"))]));
        let t = Table::from_rows("t", schema, &rows).unwrap();
        let h = ColumnHistogram::build(t.column(0));
        let sel = h.selectivity(&FilterExpr::pred(Predicate::like("s", "%hit%")));
        // MCV "the hit" carries 0.4; the tail contributes only the default.
        assert!(sel > 0.39 && sel < 0.45, "sel {sel}");
        let sel_rare = h.selectivity(&FilterExpr::pred(Predicate::like("s", "%zzz%")));
        assert!(sel_rare < 0.01, "rare pattern sel {sel_rare}");
    }

    #[test]
    fn between_combines_bounds() {
        let values: Vec<Option<i64>> = (0..1000).map(Some).collect();
        let h = ColumnHistogram::build(&int_col(&values));
        let clause = FilterExpr::pred(Predicate::between("x", 250, 750));
        let est = h.selectivity(&clause);
        assert!((est - 0.5).abs() < 0.1, "est {est}");
    }

    #[test]
    fn ndv_counts_distinct() {
        let values: Vec<Option<i64>> = (0..300).map(|i| Some(i % 10)).collect();
        let h = ColumnHistogram::build(&int_col(&values));
        assert_eq!(h.ndv(), 10.0);
    }

    #[test]
    fn selectivity_monotone_under_widening_ranges() {
        // Skewed data with NULLs: as a range predicate widens, the estimate
        // must never decrease (and the mirror-image predicate never
        // increases).
        let values: Vec<Option<i64>> = (0..1500)
            .map(|i| {
                if i % 11 == 0 {
                    None
                } else if i % 3 == 0 {
                    Some(42) // heavy hitter lands in the MCV list
                } else {
                    Some(i % 400)
                }
            })
            .collect();
        let h = ColumnHistogram::build(&int_col(&values));
        let mut prev_lt = 0.0f64;
        let mut prev_gt = 1.0f64;
        for cut in (0..=440).step_by(20) {
            let lt = h.selectivity(&FilterExpr::pred(Predicate::cmp("x", CmpOp::Lt, cut)));
            let gt = h.selectivity(&FilterExpr::pred(Predicate::cmp("x", CmpOp::Gt, cut)));
            assert!(
                lt >= prev_lt - 1e-9,
                "x < {cut}: widening dropped the estimate {prev_lt} → {lt}"
            );
            assert!(
                gt <= prev_gt + 1e-9,
                "x > {cut}: narrowing raised the estimate {prev_gt} → {gt}"
            );
            prev_lt = lt;
            prev_gt = gt;
        }
        // BETWEEN widening around a fixed center is monotone too.
        let mut prev = 0.0f64;
        for half in (0..=200).step_by(25) {
            let s = h.selectivity(&FilterExpr::pred(Predicate::between(
                "x",
                200 - half,
                200 + half,
            )));
            assert!((0.0..=1.0).contains(&s), "between ±{half} → {s}");
            assert!(s >= prev - 1e-9, "between widened ±{half}: {prev} → {s}");
            prev = s;
        }
    }

    #[test]
    fn selectivity_bounded_on_adversarial_columns() {
        // Constant, near-empty, all-NULL, and two-point columns: every
        // predicate shape stays within [0, 1].
        let columns: Vec<Vec<Option<i64>>> = vec![
            vec![Some(5); 64], // constant
            vec![Some(1)],     // single row
            vec![None; 32],    // all NULL
            (0..64)
                .map(|i| {
                    Some(if i % 2 == 0 {
                        i64::MIN / 2
                    } else {
                        i64::MAX / 2
                    })
                })
                .collect(),
        ];
        for values in &columns {
            let h = ColumnHistogram::build(&int_col(values));
            let clauses = [
                FilterExpr::pred(Predicate::eq("x", 5)),
                FilterExpr::pred(Predicate::eq("x", 123456)),
                FilterExpr::pred(Predicate::cmp("x", CmpOp::Lt, 0)),
                FilterExpr::pred(Predicate::cmp("x", CmpOp::Ge, 5)),
                FilterExpr::pred(Predicate::cmp("x", CmpOp::Neq, 5)),
                FilterExpr::pred(Predicate::between("x", -10, 10)),
                FilterExpr::pred(Predicate::IsNull {
                    column: "x".into(),
                    negated: true,
                }),
                FilterExpr::Not(Box::new(FilterExpr::pred(Predicate::eq("x", 5)))),
                FilterExpr::and(vec![
                    FilterExpr::pred(Predicate::cmp("x", CmpOp::Ge, 0)),
                    FilterExpr::pred(Predicate::cmp("x", CmpOp::Le, 100)),
                ]),
                FilterExpr::or(vec![
                    FilterExpr::pred(Predicate::eq("x", 1)),
                    FilterExpr::pred(Predicate::eq("x", 5)),
                ]),
            ];
            for c in &clauses {
                let s = h.selectivity(c);
                assert!(
                    (0.0..=1.0).contains(&s),
                    "{c} on {} rows → {s}",
                    values.len()
                );
            }
        }
    }
}
