//! Column discretization for the Bayesian-network estimator.
//!
//! Every modeled column is mapped to a small discrete code domain:
//!
//! * **join keys** → their FactorJoin bin index (the BN then directly
//!   provides the binned conditional key distributions the factor graph
//!   needs, paper §5.1);
//! * **low-cardinality integers** → one code per distinct value;
//! * **high-cardinality integers** → equi-depth buckets with per-bucket
//!   min/max/ndv for fractional range coverage;
//! * **strings** → one code per dictionary entry (small dictionaries) or
//!   hashed buckets with per-code row counts (large ones), so `LIKE`
//!   clauses become approximate code weights;
//! * **NULL** → a dedicated trailing code, making `IS NULL` ordinary
//!   evidence.

use crate::binmap::KeyBinMap;
use fj_query::{FilterExpr, Predicate};
use fj_storage::{Column, DataType, Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// How a column's values map to codes.
#[derive(Debug, Clone)]
enum Encoding {
    /// FactorJoin key bins (shared with the model and its other
    /// estimators; frozen after bin selection).
    KeyBins(Arc<KeyBinMap>),
    /// One code per distinct integer (sorted).
    IntCategorical { values: Vec<i64> },
    /// Equi-depth integer buckets: `uppers[i]` is the inclusive upper bound
    /// of bucket `i`; `mins`/`maxs`/`ndv` describe the bucket contents.
    IntBuckets {
        uppers: Vec<i64>,
        mins: Vec<i64>,
        maxs: Vec<i64>,
        ndv: Vec<u32>,
    },
    /// One code per dictionary string.
    StrSmall {
        dict: Vec<String>,
        intern: HashMap<String, u32>,
    },
    /// Hashed string buckets: code = hash(string) % n; `dict`/`dict_rows`
    /// retained to evaluate pattern clauses as per-bucket row fractions.
    StrHashed {
        n: usize,
        dict: Vec<String>,
        dict_rows: Vec<u32>,
        bucket_rows: Vec<f64>,
    },
}

/// A discretized column: codes `0..n_codes()`, NULL mapped to the last code.
#[derive(Debug, Clone)]
pub struct DiscreteColumn {
    /// Column name in the table schema.
    pub name: String,
    encoding: Encoding,
    non_null_codes: usize,
}

/// Builder turning table columns into [`DiscreteColumn`]s.
pub struct Discretizer {
    /// Maximum non-null codes for attribute columns.
    pub max_codes: usize,
}

impl Default for Discretizer {
    fn default() -> Self {
        Discretizer { max_codes: 64 }
    }
}

impl Discretizer {
    /// Discretizes column `ci` of `table`; `key_bins` is present when the
    /// column is a binned join key.
    pub fn build(
        &self,
        table: &Table,
        ci: usize,
        key_bins: Option<&Arc<KeyBinMap>>,
    ) -> Option<DiscreteColumn> {
        let def = table.schema().column(ci);
        let col = table.column(ci);
        if let Some(map) = key_bins {
            return Some(DiscreteColumn {
                name: def.name.clone(),
                non_null_codes: map.k(),
                encoding: Encoding::KeyBins(Arc::clone(map)),
            });
        }
        match def.dtype {
            DataType::Float => None, // not modeled; clauses on floats are ignored
            DataType::Int => Some(self.build_int(&def.name, col)),
            DataType::Str => Some(self.build_str(&def.name, col)),
        }
    }

    fn build_int(&self, name: &str, col: &Column) -> DiscreteColumn {
        let mut values: Vec<i64> = (0..col.len())
            .filter(|&i| !col.is_null(i))
            .map(|i| col.ints()[i])
            .collect();
        values.sort_unstable();
        let mut distinct = values.clone();
        distinct.dedup();
        if distinct.len() <= self.max_codes {
            return DiscreteColumn {
                name: name.to_string(),
                non_null_codes: distinct.len().max(1),
                encoding: Encoding::IntCategorical { values: distinct },
            };
        }
        // Equi-depth buckets over the sorted multiset, cut at distinct-value
        // boundaries so a value belongs to exactly one bucket.
        let n = self.max_codes;
        let per = values.len().div_ceil(n);
        let mut uppers = Vec::with_capacity(n);
        let mut mins = Vec::with_capacity(n);
        let mut maxs = Vec::with_capacity(n);
        let mut ndv = Vec::with_capacity(n);
        let mut start = 0usize;
        while start < values.len() {
            let mut end = (start + per).min(values.len());
            // Extend to the end of the run of equal values.
            while end < values.len() && values[end] == values[end - 1] {
                end += 1;
            }
            let slice = &values[start..end];
            let mut d = 1u32;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    d += 1;
                }
            }
            mins.push(slice[0]);
            maxs.push(slice[slice.len() - 1]);
            uppers.push(slice[slice.len() - 1]);
            ndv.push(d);
            start = end;
        }
        DiscreteColumn {
            name: name.to_string(),
            non_null_codes: uppers.len(),
            encoding: Encoding::IntBuckets {
                uppers,
                mins,
                maxs,
                ndv,
            },
        }
    }

    fn build_str(&self, name: &str, col: &Column) -> DiscreteColumn {
        let dict = col.dict().to_vec();
        if dict.len() <= self.max_codes {
            let intern = dict
                .iter()
                .enumerate()
                .map(|(i, s)| (s.clone(), i as u32))
                .collect();
            return DiscreteColumn {
                name: name.to_string(),
                non_null_codes: dict.len().max(1),
                encoding: Encoding::StrSmall { dict, intern },
            };
        }
        let n = self.max_codes;
        let mut dict_rows = vec![0u32; dict.len()];
        for i in 0..col.len() {
            if !col.is_null(i) {
                dict_rows[col.codes()[i] as usize] += 1;
            }
        }
        let mut bucket_rows = vec![0f64; n];
        for (code, s) in dict.iter().enumerate() {
            bucket_rows[str_bucket(s, n)] += dict_rows[code] as f64;
        }
        DiscreteColumn {
            name: name.to_string(),
            non_null_codes: n,
            encoding: Encoding::StrHashed {
                n,
                dict,
                dict_rows,
                bucket_rows,
            },
        }
    }
}

fn str_bucket(s: &str, n: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % n as u64) as usize
}

impl DiscreteColumn {
    /// Total number of codes including the trailing NULL code.
    pub fn n_codes(&self) -> usize {
        self.non_null_codes + 1
    }

    /// The NULL code (always the last).
    pub fn null_code(&self) -> usize {
        self.non_null_codes
    }

    /// Encodes one value. Unseen values map to a deterministic code rather
    /// than erroring, so incremental inserts keep working (paper §4.3).
    pub fn encode(&self, v: &Value) -> usize {
        if v.is_null() {
            return self.null_code();
        }
        match &self.encoding {
            Encoding::KeyBins(map) => match v.as_int() {
                Some(x) => map.bin_of(x),
                None => self.null_code(),
            },
            Encoding::IntCategorical { values } => match v.as_int() {
                Some(x) => match values.binary_search(&x) {
                    Ok(i) => i,
                    // Unseen value: clamp to the nearest existing code.
                    Err(i) => i.min(values.len().saturating_sub(1)),
                },
                None => self.null_code(),
            },
            Encoding::IntBuckets { uppers, .. } => match v.as_int() {
                Some(x) => match uppers.binary_search(&x) {
                    Ok(i) => i,
                    Err(i) => i.min(uppers.len() - 1),
                },
                None => self.null_code(),
            },
            Encoding::StrSmall { intern, dict, .. } => match v.as_str() {
                Some(s) => match intern.get(s) {
                    Some(&c) => c as usize,
                    None => str_bucket(s, dict.len().max(1)),
                },
                None => self.null_code(),
            },
            Encoding::StrHashed { n, .. } => match v.as_str() {
                Some(s) => str_bucket(s, *n),
                None => self.null_code(),
            },
        }
    }

    /// Fast-path encoding of row `r` of the column this was built from.
    pub fn encode_row(&self, col: &Column, r: usize) -> usize {
        if col.is_null(r) {
            return self.null_code();
        }
        match &self.encoding {
            Encoding::KeyBins(map) => map.bin_of(col.key_at(r).expect("non-null checked")),
            Encoding::IntCategorical { values } => {
                let x = col.ints()[r];
                match values.binary_search(&x) {
                    Ok(i) => i,
                    Err(i) => i.min(values.len().saturating_sub(1)),
                }
            }
            Encoding::IntBuckets { uppers, .. } => {
                let x = col.ints()[r];
                match uppers.binary_search(&x) {
                    Ok(i) => i,
                    Err(i) => i.min(uppers.len() - 1),
                }
            }
            Encoding::StrSmall { .. } => col.codes()[r] as usize,
            Encoding::StrHashed { n, dict, .. } => {
                str_bucket(&dict[col.codes()[r] as usize % dict.len()], *n)
            }
        }
    }

    /// Evaluates a single-column clause, returning a weight per code in
    /// `[0, 1]`: the (estimated) fraction of that code's rows satisfying
    /// the clause. Exact for categorical/string codes; fractional coverage
    /// under within-bucket uniformity for bucketized numerics (combined
    /// with product/complement fuzzy logic across boolean connectives).
    pub fn clause_weights(&self, clause: &FilterExpr) -> Vec<f64> {
        let n = self.n_codes();
        let mut w = vec![0.0; n];
        match &self.encoding {
            Encoding::KeyBins(_) => {
                // Value predicates on binned keys are not representable at
                // bin granularity; treat as non-selective (weight 1) except
                // for NULL tests, which the code structure does capture.
                for (c, slot) in w.iter_mut().enumerate() {
                    let v = if c == self.null_code() {
                        Value::Null
                    } else {
                        Value::Int(c as i64)
                    };
                    *slot = match only_null_tests(clause) {
                        Some(expr) => eval01(&expr, &v),
                        None => {
                            if c == self.null_code() {
                                0.0
                            } else {
                                1.0
                            }
                        }
                    };
                }
            }
            Encoding::IntCategorical { values } => {
                for (i, &x) in values.iter().enumerate() {
                    w[i] = eval01(clause, &Value::Int(x));
                }
                w[self.null_code()] = eval01(clause, &Value::Null);
            }
            Encoding::IntBuckets {
                mins, maxs, ndv, ..
            } => {
                for i in 0..self.non_null_codes {
                    w[i] = bucket_coverage(clause, mins[i], maxs[i], ndv[i]);
                }
                w[self.null_code()] = eval01(clause, &Value::Null);
            }
            Encoding::StrSmall { dict, .. } => {
                for (i, s) in dict.iter().enumerate() {
                    w[i] = eval01(clause, &Value::Str(s.clone()));
                }
                w[self.null_code()] = eval01(clause, &Value::Null);
            }
            Encoding::StrHashed {
                n,
                dict,
                dict_rows,
                bucket_rows,
            } => {
                let mut matched = vec![0f64; *n];
                for (code, s) in dict.iter().enumerate() {
                    if eval01(clause, &Value::Str(s.clone())) > 0.5 {
                        matched[str_bucket(s, *n)] += dict_rows[code] as f64;
                    }
                }
                for i in 0..*n {
                    w[i] = if bucket_rows[i] > 0.0 {
                        matched[i] / bucket_rows[i]
                    } else {
                        0.0
                    };
                }
                w[self.null_code()] = eval01(clause, &Value::Null);
            }
        }
        w
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        match &self.encoding {
            Encoding::KeyBins(m) => m.heap_bytes(),
            Encoding::IntCategorical { values } => values.len() * 8,
            Encoding::IntBuckets { uppers, .. } => uppers.len() * 8 * 3 + uppers.len() * 4,
            Encoding::StrSmall { dict, .. } => dict.iter().map(|s| 2 * s.len() + 48).sum(),
            Encoding::StrHashed { dict, .. } => {
                dict.iter().map(|s| s.len() + 28).sum::<usize>() + dict.len() * 4
            }
        }
    }
}

/// Extracts the clause if it consists only of NULL tests (else `None`).
fn only_null_tests(clause: &FilterExpr) -> Option<FilterExpr> {
    let all_null = clause
        .predicates()
        .iter()
        .all(|p| matches!(p, Predicate::IsNull { .. }));
    all_null.then(|| clause.clone())
}

/// Evaluates a clause on a concrete value → {0.0, 1.0}.
fn eval01(clause: &FilterExpr, v: &Value) -> f64 {
    if clause.eval(&|_c: &str| v.clone()) {
        1.0
    } else {
        0.0
    }
}

/// Fractional coverage of an integer bucket `[min, max]` (with `ndv`
/// distinct values) under a boolean clause, assuming within-bucket
/// uniformity; boolean connectives combine with fuzzy logic.
fn bucket_coverage(clause: &FilterExpr, min: i64, max: i64, ndv: u32) -> f64 {
    match clause {
        FilterExpr::True => 1.0,
        FilterExpr::Pred(p) => pred_coverage(p, min, max, ndv),
        FilterExpr::And(parts) => parts
            .iter()
            .map(|c| bucket_coverage(c, min, max, ndv))
            .product(),
        FilterExpr::Or(parts) => {
            1.0 - parts
                .iter()
                .map(|c| 1.0 - bucket_coverage(c, min, max, ndv))
                .product::<f64>()
        }
        FilterExpr::Not(inner) => 1.0 - bucket_coverage(inner, min, max, ndv),
    }
}

fn pred_coverage(p: &Predicate, min: i64, max: i64, ndv: u32) -> f64 {
    let width = (max - min + 1) as f64;
    let clampf = |x: f64| x.clamp(0.0, 1.0);
    match p {
        Predicate::Cmp { op, value, .. } => {
            let Some(v) = value.as_float() else {
                return 0.0;
            };
            let (lo, hi) = (min as f64, max as f64);
            match op {
                fj_query::CmpOp::Eq => {
                    if v >= lo && v <= hi {
                        1.0 / ndv.max(1) as f64
                    } else {
                        0.0
                    }
                }
                fj_query::CmpOp::Neq => {
                    if v >= lo && v <= hi {
                        1.0 - 1.0 / ndv.max(1) as f64
                    } else {
                        1.0
                    }
                }
                fj_query::CmpOp::Lt => clampf((v - lo) / width),
                fj_query::CmpOp::Le => clampf((v - lo + 1.0) / width),
                fj_query::CmpOp::Gt => clampf((hi - v) / width),
                fj_query::CmpOp::Ge => clampf((hi - v + 1.0) / width),
            }
        }
        Predicate::Between { lo, hi, .. } => {
            let (Some(a), Some(b)) = (lo.as_float(), hi.as_float()) else {
                return 0.0;
            };
            let inter = (b.min(max as f64) - a.max(min as f64) + 1.0).max(0.0);
            clampf(inter / width)
        }
        Predicate::InList { values, .. } => {
            let hits = values
                .iter()
                .filter_map(Value::as_int)
                .filter(|&v| v >= min && v <= max)
                .count();
            clampf(hits as f64 / ndv.max(1) as f64)
        }
        Predicate::Like { .. } => 0.0, // LIKE on an integer bucket: no match
        Predicate::IsNull { negated, .. } => {
            // Bucket codes are non-null by construction.
            if *negated {
                1.0
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_query::CmpOp;
    use fj_storage::{ColumnDef, TableSchema};

    fn int_table(values: &[Option<i64>]) -> Table {
        let schema = TableSchema::new(vec![ColumnDef::new("x", DataType::Int)]);
        let rows: Vec<Vec<Value>> = values
            .iter()
            .map(|v| vec![v.map(Value::Int).unwrap_or(Value::Null)])
            .collect();
        Table::from_rows("t", schema, &rows).unwrap()
    }

    #[test]
    fn categorical_int_roundtrip() {
        let t = int_table(&[Some(5), Some(1), Some(5), None, Some(9)]);
        let d = Discretizer::default().build(&t, 0, None).unwrap();
        assert_eq!(d.n_codes(), 4); // {1,5,9} + null
        assert_eq!(d.encode(&Value::Int(1)), 0);
        assert_eq!(d.encode(&Value::Int(5)), 1);
        assert_eq!(d.encode(&Value::Int(9)), 2);
        assert_eq!(d.encode(&Value::Null), 3);
        // Row-level encoding agrees with value-level.
        let col = t.column(0);
        for r in 0..t.nrows() {
            assert_eq!(d.encode_row(col, r), d.encode(&col.get(r)));
        }
    }

    #[test]
    fn categorical_clause_weights_exact() {
        let t = int_table(&[Some(1), Some(5), Some(9)]);
        let d = Discretizer::default().build(&t, 0, None).unwrap();
        let w = d.clause_weights(&FilterExpr::pred(Predicate::cmp("x", CmpOp::Ge, 5)));
        assert_eq!(w, vec![0.0, 1.0, 1.0, 0.0]);
        let w = d.clause_weights(&FilterExpr::or(vec![
            FilterExpr::pred(Predicate::eq("x", 1)),
            FilterExpr::pred(Predicate::eq("x", 9)),
        ]));
        assert_eq!(w, vec![1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn bucketized_int_coverage() {
        let values: Vec<Option<i64>> = (0..1000).map(Some).collect();
        let t = int_table(&values);
        let d = Discretizer { max_codes: 10 }.build(&t, 0, None).unwrap();
        assert_eq!(d.n_codes(), 11);
        // x < 500 should give total weighted coverage ≈ 5 of 10 buckets.
        let w = d.clause_weights(&FilterExpr::pred(Predicate::cmp("x", CmpOp::Lt, 500)));
        let total: f64 = w[..10].iter().sum();
        assert!((total - 5.0).abs() < 0.2, "coverage {total}");
        // Every bucket's weight within [0,1].
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn null_code_handling() {
        let t = int_table(&[Some(1), None, Some(2)]);
        let d = Discretizer::default().build(&t, 0, None).unwrap();
        let w = d.clause_weights(&FilterExpr::pred(Predicate::IsNull {
            column: "x".into(),
            negated: false,
        }));
        assert_eq!(w[d.null_code()], 1.0);
        assert_eq!(w[0], 0.0);
        let w = d.clause_weights(&FilterExpr::pred(Predicate::IsNull {
            column: "x".into(),
            negated: true,
        }));
        assert_eq!(w[d.null_code()], 0.0);
        assert_eq!(w[0], 1.0);
    }

    #[test]
    fn string_small_dict_like_weights() {
        let schema = TableSchema::new(vec![ColumnDef::new("s", DataType::Str)]);
        let rows: Vec<Vec<Value>> = ["apple", "banana", "apricot"]
            .iter()
            .map(|s| vec![Value::Str(s.to_string())])
            .collect();
        let t = Table::from_rows("t", schema, &rows).unwrap();
        let d = Discretizer::default().build(&t, 0, None).unwrap();
        let w = d.clause_weights(&FilterExpr::pred(Predicate::like("s", "ap%")));
        assert_eq!(&w[..3], &[1.0, 0.0, 1.0]);
    }

    #[test]
    fn string_hashed_buckets_fractional() {
        let schema = TableSchema::new(vec![ColumnDef::new("s", DataType::Str)]);
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| vec![Value::Str(format!("title {i} the"))])
            .collect();
        let t = Table::from_rows("t", schema, &rows).unwrap();
        let d = Discretizer { max_codes: 16 }.build(&t, 0, None).unwrap();
        assert_eq!(d.n_codes(), 17);
        let w = d.clause_weights(&FilterExpr::pred(Predicate::like("s", "%the%")));
        // Every title contains "the": all buckets fully covered.
        assert!(w[..16].iter().all(|&x| x == 1.0), "{w:?}");
        let w = d.clause_weights(&FilterExpr::pred(Predicate::like("s", "%42 %")));
        let total: f64 = w[..16].iter().sum();
        assert!(total > 0.0 && total < 4.0, "selective pattern: {total}");
    }

    #[test]
    fn key_bins_pass_through() {
        let t = int_table(&[Some(10), Some(20), Some(30)]);
        let map: HashMap<i64, u32> = [(10, 0), (20, 1), (30, 1)].into_iter().collect();
        let bins = Arc::new(KeyBinMap::new(2, map));
        let d = Discretizer::default().build(&t, 0, Some(&bins)).unwrap();
        assert_eq!(d.n_codes(), 3);
        assert_eq!(d.encode(&Value::Int(10)), 0);
        assert_eq!(d.encode(&Value::Int(30)), 1);
        // Value predicates on binned keys: weight 1 on non-null codes.
        let w = d.clause_weights(&FilterExpr::pred(Predicate::cmp("k", CmpOp::Gt, 15)));
        assert_eq!(w, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn float_columns_not_modeled() {
        let schema = TableSchema::new(vec![ColumnDef::new("f", DataType::Float)]);
        let t = Table::from_rows("t", schema, &[vec![Value::Float(1.0)]]).unwrap();
        assert!(Discretizer::default().build(&t, 0, None).is_none());
    }

    #[test]
    fn unseen_values_encode_deterministically() {
        let t = int_table(&[Some(1), Some(5)]);
        let d = Discretizer::default().build(&t, 0, None).unwrap();
        let c = d.encode(&Value::Int(1000));
        assert!(c < d.n_codes());
        assert_eq!(c, d.encode(&Value::Int(1000)));
    }
}
