//! # fj-stats — single-table cardinality estimators
//!
//! FactorJoin decomposes join estimation into single-table estimates of
//! (a) filter selectivities and (b) join-key distributions over a *binned*
//! key domain, conditioned on the filter (paper §3.3: "In principle, any
//! single-table CardEst method that is able to provide conditional
//! distributions can be adapted into FactorJoin"). This crate provides the
//! three estimators the paper evaluates (Table 7):
//!
//! * [`BayesNetEstimator`] — a BayesCard-style Chow-Liu-tree Bayesian
//!   network over discretized attributes with exact tree inference;
//! * [`SamplingEstimator`] — a uniform row sample, supporting arbitrary
//!   filter shapes (disjunctions, `LIKE`, …);
//! * [`ExactEstimator`] — "TrueScan": scans and filters the live table at
//!   estimation time (exact, but high latency — paper Table 7).
//!
//! It also provides the per-column [`histogram`] machinery (equi-depth
//! buckets + most-common values + distinct counts) used by the traditional
//! baselines in `fj-baselines`.
//!
//! All estimators implement [`BaseTableEstimator`] and are constructed
//! against a [`TableBins`] — the value→bin maps for the table's join keys,
//! produced by the binning layer in the `factorjoin` crate.

pub mod bayesnet;
pub mod binmap;
pub mod chowliu;
pub mod discretize;
pub mod evidence;
pub mod exact;
pub mod histogram;
pub mod sampler;
pub mod traits;

pub use bayesnet::{BayesNetEstimator, BnConfig};
pub use binmap::{KeyBinMap, TableBins};
pub use chowliu::chow_liu_tree;
pub use discretize::{DiscreteColumn, Discretizer};
pub use evidence::{clause_weights, split_per_column};
pub use exact::ExactEstimator;
pub use histogram::ColumnHistogram;
pub use sampler::SamplingEstimator;
pub use traits::{BaseTableEstimator, TableProfile};
