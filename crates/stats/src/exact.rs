//! "TrueScan" estimator: exact filtering at estimation time.
//!
//! Paper Table 7 evaluates FactorJoin with a `TrueScan` base estimator that
//! "scans and filters the tables during query time and calculates the true
//! cardinalities". It produces exact single-table statistics — and
//! therefore an exact per-bin bound — at the cost of per-query scan
//! latency, which is why its end-to-end time loses to the Bayesian network
//! despite better plans.

use crate::binmap::TableBins;
use crate::traits::{BaseTableEstimator, TableProfile};
use fj_query::{compile_filter, FilterExpr};
use fj_storage::Table;

/// Exact scanning estimator holding its own snapshot of the table.
#[derive(Clone)]
pub struct ExactEstimator {
    table: Table,
    bins: TableBins,
}

impl ExactEstimator {
    /// Snapshots `table` for exact scanning.
    pub fn build(table: &Table, bins: &TableBins) -> Self {
        ExactEstimator {
            table: table.clone(),
            bins: bins.clone(),
        }
    }
}

impl BaseTableEstimator for ExactEstimator {
    fn name(&self) -> &'static str {
        "truescan"
    }

    fn estimate_filter(&self, filter: &FilterExpr) -> f64 {
        fj_query::filtered_count(&self.table, filter) as f64
    }

    fn key_distribution(&self, key_col: &str, filter: &FilterExpr) -> Vec<f64> {
        self.profile(filter, &[key_col])
            .key_dists
            .pop()
            .expect("one key requested")
    }

    fn key_bins(&self, key_col: &str) -> usize {
        self.bins.get(key_col).map(|m| m.k()).unwrap_or(1)
    }

    fn profile(&self, filter: &FilterExpr, key_cols: &[&str]) -> TableProfile {
        let compiled = compile_filter(&self.table, filter);
        let cols: Vec<Option<(usize, &crate::binmap::KeyBinMap)>> = key_cols
            .iter()
            .map(|k| {
                self.table
                    .schema()
                    .index_of(k)
                    .and_then(|ci| self.bins.get(k).map(|m| (ci, m)))
            })
            .collect();
        let mut dists: Vec<Vec<f64>> = key_cols
            .iter()
            .map(|k| vec![0.0; self.key_bins(k)])
            .collect();
        let mut rows = 0f64;
        for r in 0..self.table.nrows() {
            if !compiled.eval(&self.table, r) {
                continue;
            }
            rows += 1.0;
            for (d, info) in dists.iter_mut().zip(&cols) {
                if let Some((ci, map)) = info {
                    if let Some(v) = self.table.column(*ci).key_at(r) {
                        d[map.bin_of(v)] += 1.0;
                    }
                }
            }
        }
        TableProfile {
            rows,
            key_dists: dists,
        }
    }

    fn clone_box(&self) -> Box<dyn BaseTableEstimator> {
        Box::new(self.clone())
    }

    fn insert(&mut self, table: &Table, _first_new_row: usize) {
        // Exact scanning just re-snapshots the live table.
        self.table = table.clone();
    }

    fn model_bytes(&self) -> usize {
        // The "model" is the data itself; report only the bin maps so the
        // size comparison against learned models stays meaningful.
        self.bins.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binmap::KeyBinMap;
    use fj_query::{CmpOp, Predicate};
    use fj_storage::{ColumnDef, DataType, TableSchema, Value};
    use std::collections::HashMap;

    fn table() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::key("id"),
            ColumnDef::new("x", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..200i64)
            .map(|i| {
                let id = if i % 7 == 6 {
                    Value::Null
                } else {
                    Value::Int(i % 20)
                };
                vec![id, Value::Int(i)]
            })
            .collect();
        Table::from_rows("t", schema, &rows).unwrap()
    }

    fn bins() -> TableBins {
        let mut tb = TableBins::new();
        let map: HashMap<i64, u32> = (0..20).map(|v| (v, (v % 4) as u32)).collect();
        tb.insert("id", KeyBinMap::new(4, map));
        tb
    }

    #[test]
    fn counts_are_exact() {
        let t = table();
        let e = ExactEstimator::build(&t, &bins());
        let f = FilterExpr::pred(Predicate::cmp("x", CmpOp::Lt, 100));
        assert_eq!(e.estimate_filter(&f), 100.0);
        assert_eq!(e.estimate_filter(&FilterExpr::True), 200.0);
    }

    #[test]
    fn distribution_is_exact_and_excludes_nulls() {
        let t = table();
        let e = ExactEstimator::build(&t, &bins());
        let d = e.key_distribution("id", &FilterExpr::True);
        let nulls = t.column_by_name("id").unwrap().nulls().null_count() as f64;
        let sum: f64 = d.iter().sum();
        assert_eq!(sum, 200.0 - nulls);
    }

    #[test]
    fn insert_resnapshots() {
        let mut t = table();
        let mut e = ExactEstimator::build(&t, &bins());
        t.append_rows(&[vec![Value::Int(1), Value::Int(999)]])
            .unwrap();
        e.insert(&t, 200);
        assert_eq!(e.estimate_filter(&FilterExpr::True), 201.0);
    }

    #[test]
    fn name_and_size() {
        let t = table();
        let e = ExactEstimator::build(&t, &bins());
        assert_eq!(e.name(), "truescan");
        assert!(e.model_bytes() < t.heap_bytes());
    }
}
