//! Tree-structured Bayesian-network estimator (BayesCard stand-in).
//!
//! Build phase (paper §5.1): discretize every modeled column (join keys at
//! bin granularity, attributes into ≤ `max_codes` codes, NULL as a code),
//! learn a Chow-Liu tree from pairwise mutual information, and store CPTs
//! as smoothed counts. Query phase: a filter becomes per-node *evidence
//! weights* (fraction of each code satisfying the clause) and exact
//! two-pass belief propagation yields, in one sweep, the evidence
//! probability (filter selectivity) and every node's conditional marginal
//! — in particular `P(key bin | filter)`, which is exactly what the factor
//! graph needs.

use crate::binmap::TableBins;
use crate::chowliu::chow_liu_tree_threads;
use crate::discretize::{DiscreteColumn, Discretizer};
use crate::evidence::split_per_column;
use crate::traits::{BaseTableEstimator, TableProfile};
use fj_query::FilterExpr;
use fj_storage::Table;
use std::collections::HashMap;
use std::sync::Mutex;

/// Bayesian-network build configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BnConfig {
    /// Maximum non-null codes per attribute column.
    pub max_codes: usize,
    /// Rows used for mutual-information estimation (strided sample).
    pub mi_sample_rows: usize,
    /// Laplace smoothing added to every count cell.
    pub alpha: f64,
    /// Selectivity factor applied per filter conjunct the network cannot
    /// express as evidence (cross-column disjunctions). A crude constant,
    /// mirroring how real systems punt on unsupported predicates.
    pub fallback_selectivity: f64,
    /// Worker threads for the pairwise mutual-information sweep of
    /// structure learning (1 = serial; the learned tree is identical for
    /// every thread count). Model training already fans out one task per
    /// *table*, so per-network parallelism stays off by default — raise it
    /// when building a single wide-table network on its own.
    pub threads: usize,
}

impl Default for BnConfig {
    fn default() -> Self {
        BnConfig {
            max_codes: 64,
            mi_sample_rows: 20_000,
            alpha: 0.1,
            fallback_selectivity: 0.25,
            threads: 1,
        }
    }
}

/// Dense dot product with four independent accumulators, so the reduction
/// carries no loop-carried dependency and autovectorizes. Used by the
/// downward belief-propagation pass, whose rows are `max_codes`-wide.
#[inline]
fn dot_chunked(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    let tail: f64 = ca
        .remainder()
        .iter()
        .zip(cb.remainder())
        .map(|(&x, &y)| x * y)
        .sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Reusable belief-propagation buffers. Sizes track the network shape, so
/// after the first query on a table no per-propagation allocation remains.
#[derive(Debug, Default)]
struct PropScratch {
    /// Upward messages `λ` per node (filled only where evidence exists).
    lambda: Vec<Vec<f64>>,
    /// Message to parent per node (filled only where evidence exists).
    msg: Vec<Vec<f64>>,
    /// Beliefs per node (filled only for requested targets + ancestors).
    belief: Vec<Vec<f64>>,
    /// π of the parent with the child's message divided out.
    pi_ex: Vec<f64>,
    /// Whether node i's subtree carries evidence.
    has_ev: Vec<bool>,
    /// Whether node i's belief is needed (target or ancestor of one).
    need_belief: Vec<bool>,
    /// Connected-component id per node.
    comp_of: Vec<usize>,
    /// Evidence probability per component.
    comp_p: Vec<f64>,
}

/// A Bayesian-network estimator bound to one table.
pub struct BayesNetEstimator {
    cols: Vec<DiscreteColumn>,
    col_index: HashMap<String, usize>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// Marginal counts per node (unsmoothed).
    marginal: Vec<Vec<f64>>,
    /// For non-root node i: joint counts `[code_i * k_parent + code_parent]`.
    joint: Vec<Option<Vec<f64>>>,
    /// For non-root node i: per-parent-code column sums of `joint[i]`
    /// (cached CPT normalizers — recomputing them per cell is O(k³)).
    joint_parent_total: Vec<Option<Vec<f64>>>,
    /// For non-root node i: the smoothed CPT `P(c | p)` flattened as
    /// `[c * k_parent + p]` — precomputed at build/insert time so belief
    /// propagation multiplies instead of re-deriving each cell.
    cpt_flat: Vec<Vec<f64>>,
    /// For root node i: the smoothed marginal `P(c)`.
    root_dist: Vec<Vec<f64>>,
    /// Topological order, parents before children.
    topo: Vec<usize>,
    nrows: f64,
    cfg: BnConfig,
    /// Propagation buffers, reused across queries. Concurrent queries on
    /// the same table fall back to fresh local buffers (`try_lock`), so
    /// the estimator stays `Sync` without serializing readers.
    scratch: Mutex<PropScratch>,
}

impl Clone for BayesNetEstimator {
    /// Deep copy of the trained network. The propagation scratch is
    /// per-instance transient state (buffers sized lazily on first query),
    /// so the clone starts with a fresh empty one.
    fn clone(&self) -> Self {
        BayesNetEstimator {
            cols: self.cols.clone(),
            col_index: self.col_index.clone(),
            parent: self.parent.clone(),
            children: self.children.clone(),
            marginal: self.marginal.clone(),
            joint: self.joint.clone(),
            joint_parent_total: self.joint_parent_total.clone(),
            cpt_flat: self.cpt_flat.clone(),
            root_dist: self.root_dist.clone(),
            topo: self.topo.clone(),
            nrows: self.nrows,
            cfg: self.cfg,
            scratch: Mutex::new(PropScratch::default()),
        }
    }
}

impl BayesNetEstimator {
    /// Builds the network over the modeled columns of `table`.
    pub fn build(table: &Table, bins: &TableBins, cfg: BnConfig) -> Self {
        let disc = Discretizer {
            max_codes: cfg.max_codes,
        };
        let mut cols = Vec::new();
        let mut src_cols = Vec::new();
        for (ci, def) in table.schema().columns().iter().enumerate() {
            if let Some(dc) = disc.build(table, ci, bins.get_shared(&def.name)) {
                cols.push(dc);
                src_cols.push(ci);
            }
        }
        let m = cols.len();
        let n = table.nrows();

        // Encode all rows, column-major.
        let codes: Vec<Vec<u32>> = cols
            .iter()
            .zip(&src_cols)
            .map(|(dc, &ci)| {
                let col = table.column(ci);
                (0..n).map(|r| dc.encode_row(col, r) as u32).collect()
            })
            .collect();

        // Structure learning on a strided sample.
        let stride = (n / cfg.mi_sample_rows.max(1)).max(1);
        let sampled: Vec<Vec<u32>> = codes
            .iter()
            .map(|c| c.iter().step_by(stride).copied().collect())
            .collect();
        let domains: Vec<usize> = cols.iter().map(DiscreteColumn::n_codes).collect();
        let parent = chow_liu_tree_threads(&sampled, &domains, cfg.threads);

        let mut children: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(i);
            }
        }
        // Topological order: BFS from roots.
        let mut topo = Vec::with_capacity(m);
        let mut queue: std::collections::VecDeque<usize> =
            (0..m).filter(|&i| parent[i].is_none()).collect();
        while let Some(v) = queue.pop_front() {
            topo.push(v);
            queue.extend(children[v].iter().copied());
        }

        // Count marginals and child-parent joints over all rows.
        let mut marginal: Vec<Vec<f64>> = domains.iter().map(|&k| vec![0.0; k]).collect();
        let mut joint: Vec<Option<Vec<f64>>> = parent
            .iter()
            .enumerate()
            .map(|(i, p)| p.map(|p| vec![0.0; domains[i] * domains[p]]))
            .collect();
        for r in 0..n {
            for i in 0..m {
                let c = codes[i][r] as usize;
                marginal[i][c] += 1.0;
                if let (Some(p), Some(j)) = (parent[i], joint[i].as_mut()) {
                    j[c * domains[p] + codes[p][r] as usize] += 1.0;
                }
            }
        }

        let col_index = cols
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
        let mut bn = BayesNetEstimator {
            cols,
            col_index,
            parent,
            children,
            marginal,
            joint,
            joint_parent_total: Vec::new(),
            cpt_flat: Vec::new(),
            root_dist: Vec::new(),
            topo,
            nrows: n as f64,
            cfg,
            scratch: Mutex::new(PropScratch::default()),
        };
        bn.recompute_parent_totals();
        bn.recompute_cpts();
        bn
    }

    fn recompute_parent_totals(&mut self) {
        self.joint_parent_total = self
            .parent
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.map(|p| {
                    let (kc, kp) = (self.cols[i].n_codes(), self.cols[p].n_codes());
                    let j = self.joint[i].as_ref().expect("non-root has joint counts");
                    let mut totals = vec![0.0; kp];
                    for c in 0..kc {
                        for (pc, t) in totals.iter_mut().enumerate() {
                            *t += j[c * kp + pc];
                        }
                    }
                    totals
                })
            })
            .collect();
    }

    /// Refreshes the precomputed smoothed CPTs / root marginals from the
    /// current counts (after build and after each `insert` batch).
    fn recompute_cpts(&mut self) {
        let m = self.cols.len();
        self.cpt_flat = (0..m)
            .map(|i| match self.parent[i] {
                None => Vec::new(),
                Some(_) => {
                    let kp = self.k(self.parent[i].expect("non-root"));
                    let kc = self.k(i);
                    (0..kc * kp)
                        .map(|idx| self.cpt(i, idx / kp, idx % kp))
                        .collect()
                }
            })
            .collect();
        self.root_dist = (0..m)
            .map(|i| match self.parent[i] {
                Some(_) => Vec::new(),
                None => (0..self.k(i)).map(|c| self.root_prob(i, c)).collect(),
            })
            .collect();
    }

    /// Number of network nodes.
    pub fn num_nodes(&self) -> usize {
        self.cols.len()
    }

    /// Parent array (diagnostic / tests).
    pub fn structure(&self) -> &[Option<usize>] {
        &self.parent
    }

    fn k(&self, i: usize) -> usize {
        self.cols[i].n_codes()
    }

    /// Smoothed CPT entry `P(node_i = c | parent = p)`.
    fn cpt(&self, i: usize, c: usize, p: usize) -> f64 {
        let kp = self.k(self.parent[i].expect("cpt only for non-roots"));
        let kc = self.k(i);
        let j = self.joint[i].as_ref().expect("non-root has joint counts");
        let parent_total = self.joint_parent_total[i]
            .as_ref()
            .expect("cached totals for non-roots")[p];
        (j[c * kp + p] + self.cfg.alpha) / (parent_total + self.cfg.alpha * kc as f64)
    }

    /// Smoothed root marginal `P(node_i = c)`.
    fn root_prob(&self, i: usize, c: usize) -> f64 {
        (self.marginal[i][c] + self.cfg.alpha) / (self.nrows + self.cfg.alpha * self.k(i) as f64)
    }

    /// Converts a filter into per-node evidence weights plus a fallback
    /// multiplier for non-decomposable / unmodeled parts.
    fn evidence(&self, filter: &FilterExpr) -> (Vec<Option<Vec<f64>>>, f64) {
        let mut ev: Vec<Option<Vec<f64>>> = vec![None; self.cols.len()];
        let mut fallback = 1.0;
        match split_per_column(filter) {
            Some(clauses) => {
                for (col, clause) in clauses {
                    match self.col_index.get(&col) {
                        Some(&i) => {
                            let w = self.cols[i].clause_weights(&clause);
                            ev[i] = Some(match ev[i].take() {
                                None => w,
                                Some(old) => old.iter().zip(&w).map(|(a, b)| a * b).collect(),
                            });
                        }
                        None => fallback *= self.cfg.fallback_selectivity,
                    }
                }
            }
            None => {
                // Decompose what we can from the top-level conjunction and
                // charge the constant for the rest.
                if let FilterExpr::And(parts) = filter {
                    for part in parts {
                        let (sub_ev, sub_fb) = self.evidence(part);
                        if sub_fb == 1.0 && split_per_column(part).is_some() {
                            for (slot, w) in ev.iter_mut().zip(sub_ev) {
                                if let Some(w) = w {
                                    *slot = Some(match slot.take() {
                                        None => w,
                                        Some(old) => {
                                            old.iter().zip(&w).map(|(a, b)| a * b).collect()
                                        }
                                    });
                                }
                            }
                        } else {
                            fallback *= self.cfg.fallback_selectivity;
                        }
                    }
                } else {
                    fallback *= self.cfg.fallback_selectivity;
                }
            }
        }
        (ev, fallback)
    }

    /// Runs `f` with the shared propagation scratch, falling back to fresh
    /// local buffers when another thread holds it (keeps `profile` lock-free
    /// for concurrent readers of one table model).
    fn with_scratch<R>(&self, f: impl FnOnce(&Self, &mut PropScratch) -> R) -> R {
        match self.scratch.try_lock() {
            Ok(mut guard) => f(self, &mut guard),
            Err(_) => f(self, &mut PropScratch::default()),
        }
    }

    /// Two-pass belief propagation with evidence-subtree pruning and a
    /// targeted downward pass.
    ///
    /// Writes `belief[t][c] = P(node_t = c, evidence)` into `scratch` for
    /// every `t ∈ targets` and returns the evidence probability. Work is
    /// proportional to the evidence-carrying subtrees (upward) and the
    /// root→target paths (downward): a subtree without evidence sends the
    /// exactly-unit message (the CPT is normalized), so its O(k²) message
    /// computation is skipped entirely, and beliefs of nodes nobody asked
    /// about are never formed. Buffers live in `scratch`, so a warm call
    /// allocates nothing.
    fn propagate_targets(
        &self,
        ev: &[Option<Vec<f64>>],
        targets: &[usize],
        scratch: &mut PropScratch,
    ) -> f64 {
        let m = self.cols.len();
        let s = scratch;
        s.lambda.resize_with(m, Vec::new);
        s.msg.resize_with(m, Vec::new);
        s.belief.resize_with(m, Vec::new);
        s.has_ev.clear();
        s.has_ev.resize(m, false);
        s.need_belief.clear();
        s.need_belief.resize(m, false);
        s.comp_of.clear();
        s.comp_of.resize(m, 0);
        s.comp_p.clear();

        // Which subtrees carry evidence (children precede parents in
        // reverse topological order).
        for &i in self.topo.iter().rev() {
            let mut h = ev[i].is_some();
            for &ch in &self.children[i] {
                h |= s.has_ev[ch];
            }
            s.has_ev[i] = h;
        }
        // Whose beliefs we need: targets and all their ancestors.
        for &t in targets {
            let mut i = t;
            loop {
                if s.need_belief[i] {
                    break;
                }
                s.need_belief[i] = true;
                match self.parent[i] {
                    Some(p) => i = p,
                    None => break,
                }
            }
        }

        // Upward: λ_i(c) = w_i(c) · Π_{child} msg_child(c);
        // msg_i(p) = Σ_c P(c|p) λ_i(c). Evidence-free subtrees send the
        // unit message and are skipped.
        for &i in self.topo.iter().rev() {
            if !s.has_ev[i] {
                continue;
            }
            let k = self.k(i);
            {
                let lambda_i = &mut s.lambda[i];
                lambda_i.clear();
                match ev[i].as_ref() {
                    Some(w) => lambda_i.extend_from_slice(w),
                    None => lambda_i.resize(k, 1.0),
                }
            }
            for &ch in &self.children[i] {
                if !s.has_ev[ch] {
                    continue;
                }
                // `lambda` and `msg` are disjoint buffers.
                let msg = std::mem::take(&mut s.msg[ch]);
                for (l, &mv) in s.lambda[i].iter_mut().zip(&msg) {
                    *l *= mv;
                }
                s.msg[ch] = msg;
            }
            if let Some(p) = self.parent[i] {
                let kp = self.k(p);
                let cpt = &self.cpt_flat[i];
                let msg = &mut s.msg[i];
                msg.clear();
                msg.resize(kp, 0.0);
                for (c, &l) in s.lambda[i].iter().enumerate() {
                    if l <= 0.0 {
                        continue;
                    }
                    let row = &cpt[c * kp..(c + 1) * kp];
                    for (slot, &p_cp) in msg.iter_mut().zip(row) {
                        *slot += p_cp * l;
                    }
                }
            }
        }

        // Per-component evidence probability (forest ⇒ product); a
        // component without evidence contributes exactly 1.
        for &i in &self.topo {
            match self.parent[i] {
                None => {
                    let p = if s.has_ev[i] {
                        self.root_dist[i]
                            .iter()
                            .zip(&s.lambda[i])
                            .map(|(&r, &l)| r * l)
                            .sum()
                    } else {
                        1.0
                    };
                    s.comp_of[i] = s.comp_p.len();
                    s.comp_p.push(p);
                }
                Some(p) => s.comp_of[i] = s.comp_of[p],
            }
        }
        let p_evidence: f64 = s.comp_p.iter().product();

        // Downward, only along root→target paths: belief_i(c) = π_i(c) ·
        // λ_i(c), where for the root π = prior and for children π comes
        // from the parent's belief with this child's message divided out.
        for &i in &self.topo {
            if !s.need_belief[i] {
                continue;
            }
            let k = self.k(i);
            match self.parent[i] {
                None => {
                    let belief_i = &mut s.belief[i];
                    belief_i.clear();
                    belief_i.extend_from_slice(&self.root_dist[i]);
                    if s.has_ev[i] {
                        for (b, &l) in belief_i.iter_mut().zip(&s.lambda[i]) {
                            *b *= l;
                        }
                    }
                }
                Some(p) => {
                    let kp = self.k(p);
                    // π_parent excluding child i (unit message ⇒ π = belief).
                    s.pi_ex.clear();
                    if s.has_ev[i] {
                        for (pc, &b) in s.belief[p].iter().enumerate() {
                            let mv = s.msg[i][pc];
                            s.pi_ex.push(if mv > 0.0 { b / mv } else { 0.0 });
                        }
                    } else {
                        s.pi_ex.extend_from_slice(&s.belief[p]);
                    }
                    let cpt = &self.cpt_flat[i];
                    let belief_i = &mut s.belief[i];
                    belief_i.clear();
                    belief_i.resize(k, 0.0);
                    // Branch-free per-code dot product: a zero π entry
                    // contributes an exact 0.0, so the former `pe > 0.0`
                    // test only blocked vectorization.
                    for (c, slot) in belief_i.iter_mut().enumerate() {
                        *slot = dot_chunked(&s.pi_ex, &cpt[c * kp..(c + 1) * kp]);
                    }
                    if s.has_ev[i] {
                        for (b, &l) in s.belief[i].iter_mut().zip(&s.lambda[i]) {
                            *b *= l;
                        }
                    }
                }
            }
        }
        // Scale each computed belief by the other components' evidence
        // probability so belief sums equal the global p_evidence. Iterate
        // the need_belief marks (not `targets`) so a duplicated target is
        // scaled exactly once.
        if s.comp_p.len() > 1 {
            for i in 0..m {
                if !s.need_belief[i] {
                    continue;
                }
                let own = s.comp_p[s.comp_of[i]];
                let others = if own > 0.0 { p_evidence / own } else { 0.0 };
                if others != 1.0 {
                    for b in &mut s.belief[i] {
                        *b *= others;
                    }
                }
            }
        }
        p_evidence
    }
}

impl BaseTableEstimator for BayesNetEstimator {
    fn name(&self) -> &'static str {
        "bayesnet"
    }

    fn estimate_filter(&self, filter: &FilterExpr) -> f64 {
        let (ev, fallback) = self.evidence(filter);
        let p = self.with_scratch(|bn, scratch| bn.propagate_targets(&ev, &[], scratch));
        p * fallback * self.nrows
    }

    fn key_distribution(&self, key_col: &str, filter: &FilterExpr) -> Vec<f64> {
        let mut out = TableProfile::default();
        self.profile_into(filter, &[key_col], &mut out);
        out.key_dists.pop().expect("one key requested")
    }

    fn key_bins(&self, key_col: &str) -> usize {
        match self.col_index.get(key_col) {
            Some(&i) => self.k(i) - 1, // exclude the NULL code
            None => 1,
        }
    }

    fn profile(&self, filter: &FilterExpr, key_cols: &[&str]) -> TableProfile {
        let mut out = TableProfile::default();
        self.profile_into(filter, key_cols, &mut out);
        out
    }

    fn profile_into(&self, filter: &FilterExpr, key_cols: &[&str], out: &mut TableProfile) {
        let (ev, fallback) = self.evidence(filter);
        // Belief targets: the requested keys the network models (≤ a few
        // per alias — a stack array avoids allocating per profile; the
        // spill path covers pathological key counts).
        let mut targets_buf = [0usize; 16];
        let mut spill: Vec<usize> = Vec::new();
        let mut nt = 0usize;
        for kc in key_cols {
            if let Some(&i) = self.col_index.get(*kc) {
                if nt < targets_buf.len() {
                    targets_buf[nt] = i;
                    nt += 1;
                } else {
                    if spill.is_empty() {
                        spill.extend_from_slice(&targets_buf);
                    }
                    spill.push(i);
                }
            }
        }
        let targets: &[usize] = if spill.is_empty() {
            &targets_buf[..nt]
        } else {
            &spill
        };
        out.reset(key_cols.len());
        self.with_scratch(|bn, scratch| {
            let p = bn.propagate_targets(&ev, targets, scratch);
            out.rows = p * fallback * bn.nrows;
            for (d, kc) in out.key_dists.iter_mut().zip(key_cols) {
                match bn.col_index.get(*kc) {
                    Some(&i) => {
                        let nk = bn.k(i) - 1; // drop NULL code
                        d.extend(
                            scratch.belief[i][..nk]
                                .iter()
                                .map(|&b| b * fallback * bn.nrows),
                        );
                    }
                    None => d.push(out.rows),
                }
            }
        });
    }

    fn clone_box(&self) -> Box<dyn BaseTableEstimator> {
        Box::new(self.clone())
    }

    fn insert(&mut self, table: &Table, first_new_row: usize) {
        let n = table.nrows();
        let m = self.cols.len();
        // Map node → source column index by name (schema may have floats
        // that were skipped at build time).
        let src: Vec<usize> = self
            .cols
            .iter()
            .map(|c| table.schema().index_of(&c.name).expect("schema unchanged"))
            .collect();
        // Encode the delta column-major like the build path: one column
        // borrow and one encoding dispatch per column, sequential reads —
        // the per-(row, column) re-dispatch of a row-major loop costs ~2×
        // on wide tables.
        let delta_rows = n - first_new_row;
        let codes: Vec<Vec<u32>> = self
            .cols
            .iter()
            .zip(&src)
            .map(|(dc, &ci)| {
                let col = table.column(ci);
                (first_new_row..n)
                    .map(|r| dc.encode_row(col, r) as u32)
                    .collect()
            })
            .collect();
        for i in 0..m {
            let ci = &codes[i];
            let marginal = &mut self.marginal[i];
            if let (Some(p), Some(j)) = (self.parent[i], self.joint[i].as_mut()) {
                let kp = self.cols[p].n_codes();
                let cp = &codes[p];
                let totals = self.joint_parent_total[i].as_mut();
                for r in 0..delta_rows {
                    marginal[ci[r] as usize] += 1.0;
                    j[ci[r] as usize * kp + cp[r] as usize] += 1.0;
                }
                if let Some(t) = totals {
                    for r in 0..delta_rows {
                        t[cp[r] as usize] += 1.0;
                    }
                }
            } else {
                for r in 0..delta_rows {
                    marginal[ci[r] as usize] += 1.0;
                }
            }
        }
        self.nrows += (n - first_new_row) as f64;
        // Counts changed → refresh the precomputed CPTs / root marginals
        // once per batch (they are derived state).
        self.recompute_cpts();
    }

    fn model_bytes(&self) -> usize {
        let counts: usize = self
            .marginal
            .iter()
            .map(|v| v.len() * 8)
            .chain(self.joint.iter().flatten().map(|v| v.len() * 8))
            .sum();
        let cols: usize = self.cols.iter().map(DiscreteColumn::heap_bytes).sum();
        counts + cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binmap::KeyBinMap;
    use fj_query::{CmpOp, Predicate};
    use fj_storage::{ColumnDef, DataType, TableSchema, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Table with a strong key↔attribute correlation: attr = key % 4.
    fn correlated_table(n: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(5);
        let schema = TableSchema::new(vec![
            ColumnDef::key("id"),
            ColumnDef::new("attr", DataType::Int),
            ColumnDef::new("noise", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                let key = rng.gen_range(0..40i64);
                vec![
                    Value::Int(key),
                    Value::Int(key % 4),
                    Value::Int(rng.gen_range(0..1000)),
                ]
            })
            .collect();
        Table::from_rows("t", schema, &rows).unwrap()
    }

    fn bins_mod(k: usize) -> TableBins {
        let mut tb = TableBins::new();
        let map: HashMap<i64, u32> = (0..40).map(|v| (v, (v % k as i64) as u32)).collect();
        tb.insert("id", KeyBinMap::new(k, map));
        tb
    }

    fn exact_count(t: &Table, f: &FilterExpr) -> f64 {
        fj_query::filtered_count(t, f) as f64
    }

    #[test]
    fn unfiltered_profile_matches_row_count() {
        let t = correlated_table(4000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let est = bn.estimate_filter(&FilterExpr::True);
        assert!((est - 4000.0).abs() < 1.0, "est {est}");
        let d = bn.key_distribution("id", &FilterExpr::True);
        assert_eq!(d.len(), 8);
        let sum: f64 = d.iter().sum();
        assert!((sum - 4000.0).abs() / 4000.0 < 0.02, "sum {sum}");
    }

    #[test]
    fn equality_filter_estimates_close() {
        let t = correlated_table(4000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let f = FilterExpr::pred(Predicate::eq("attr", 2));
        let est = bn.estimate_filter(&f);
        let exact = exact_count(&t, &f);
        assert!(
            (est - exact).abs() / exact < 0.1,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn captures_key_attribute_correlation() {
        // attr = key % 4, so filtering attr = 0 keeps only keys ≡ 0 (mod 4).
        // An independence-assuming model would spread mass over all bins.
        let t = correlated_table(8000);
        let k = 8;
        // Bin i holds keys with key % 8 == i, so attr=0 ⇒ bins {0, 4} only.
        let bn = BayesNetEstimator::build(&t, &bins_mod(k), BnConfig::default());
        let f = FilterExpr::pred(Predicate::eq("attr", 0));
        let d = bn.key_distribution("id", &f);
        let total: f64 = d.iter().sum();
        let in_04 = d[0] + d[4];
        assert!(in_04 / total > 0.9, "correlation not captured: {d:?}");
    }

    #[test]
    fn conditional_distribution_matches_truth() {
        let t = correlated_table(8000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(4), BnConfig::default());
        let f = FilterExpr::pred(Predicate::eq("attr", 1));
        let d = bn.key_distribution("id", &f);
        // Ground truth per bin.
        let id = t.column_by_name("id").unwrap().ints();
        let attr = t.column_by_name("attr").unwrap().ints();
        let mut truth = [0.0; 4];
        for i in 0..t.nrows() {
            if attr[i] == 1 {
                truth[(id[i] % 4) as usize] += 1.0;
            }
        }
        for b in 0..4 {
            assert!(
                (d[b] - truth[b]).abs() <= truth[b].max(20.0) * 0.25,
                "bin {b}: est {} vs truth {}",
                d[b],
                truth[b]
            );
        }
    }

    #[test]
    fn range_and_in_filters() {
        let t = correlated_table(4000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        for f in [
            FilterExpr::pred(Predicate::cmp("attr", CmpOp::Ge, 2)),
            FilterExpr::pred(Predicate::in_list(
                "attr",
                vec![Value::Int(0), Value::Int(3)],
            )),
            FilterExpr::and(vec![
                FilterExpr::pred(Predicate::cmp("attr", CmpOp::Ge, 1)),
                FilterExpr::pred(Predicate::cmp("noise", CmpOp::Lt, 500)),
            ]),
        ] {
            let est = bn.estimate_filter(&f);
            let exact = exact_count(&t, &f);
            let q = (est.max(1.0) / exact.max(1.0)).max(exact.max(1.0) / est.max(1.0));
            assert!(q < 1.5, "{f}: est {est} vs exact {exact} (q={q:.2})");
        }
    }

    #[test]
    fn same_column_disjunction_is_evidence() {
        let t = correlated_table(4000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let f = FilterExpr::or(vec![
            FilterExpr::pred(Predicate::eq("attr", 0)),
            FilterExpr::pred(Predicate::eq("attr", 1)),
        ]);
        let est = bn.estimate_filter(&f);
        let exact = exact_count(&t, &f);
        assert!(
            (est - exact).abs() / exact < 0.1,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn cross_column_disjunction_falls_back() {
        let t = correlated_table(1000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let f = FilterExpr::or(vec![
            FilterExpr::pred(Predicate::eq("attr", 0)),
            FilterExpr::pred(Predicate::eq("noise", 7)),
        ]);
        // Fallback returns the constant-selectivity guess; it must be a
        // sane positive number, not a crash.
        let est = bn.estimate_filter(&f);
        assert!(est > 0.0 && est <= 1000.0);
    }

    #[test]
    fn insert_updates_counts() {
        let mut t = correlated_table(2000);
        let mut bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let before = bn.estimate_filter(&FilterExpr::True);
        let f7_filter = FilterExpr::pred(Predicate::eq("noise", 7));
        let f7_before = bn.estimate_filter(&f7_filter);
        let new_rows: Vec<Vec<Value>> = (0..1000)
            .map(|i| vec![Value::Int(i % 40), Value::Int((i % 40) % 4), Value::Int(7)])
            .collect();
        t.append_rows(&new_rows).unwrap();
        bn.insert(&t, 2000);
        let after = bn.estimate_filter(&FilterExpr::True);
        assert!((after - before - 1000.0).abs() < 1.0, "after {after}");
        // The noise=7 spike grows the containing bucket's mass. Per-bucket
        // NDV metadata is frozen at build time (the paper's §4.3 "bins are
        // optimized on the previous data" caveat), so the estimate rises by
        // roughly the bucket-mass factor, not to the exact new count.
        let f7_after = bn.estimate_filter(&f7_filter);
        assert!(
            f7_after > 10.0 * f7_before.max(1.0),
            "noise=7 estimate {f7_after} (before {f7_before})"
        );
    }

    #[test]
    fn null_aware_distribution() {
        let schema = TableSchema::new(vec![
            ColumnDef::key("id"),
            ColumnDef::new("a", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                let id = if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 10)
                };
                vec![id, Value::Int(i % 2)]
            })
            .collect();
        let t = Table::from_rows("t", schema, &rows).unwrap();
        let mut tb = TableBins::new();
        let map: HashMap<i64, u32> = (0..10).map(|v| (v, (v % 2) as u32)).collect();
        tb.insert("id", KeyBinMap::new(2, map));
        let bn = BayesNetEstimator::build(&t, &tb, BnConfig::default());
        let d = bn.key_distribution("id", &FilterExpr::True);
        // 20 NULL ids excluded: distribution sums to ≈ 80.
        let sum: f64 = d.iter().sum();
        assert!((sum - 80.0).abs() < 3.0, "sum {sum}");
    }

    #[test]
    fn duplicate_key_columns_profile_identically() {
        // Requesting the same key twice must return two identical
        // distributions, each equal to the single-request one (guards the
        // belief-scaling pass against double-applying per-target factors).
        let t = correlated_table(3000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let f = FilterExpr::pred(Predicate::eq("attr", 1));
        let p1 = bn.profile(&f, &["id"]);
        let p2 = bn.profile(&f, &["id", "id"]);
        assert_eq!(p2.key_dists[0], p1.key_dists[0]);
        assert_eq!(p2.key_dists[1], p1.key_dists[0]);
    }

    #[test]
    fn model_bytes_nonzero_and_bounded() {
        let t = correlated_table(2000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let b = bn.model_bytes();
        assert!(b > 100, "too small: {b}");
        assert!(b < 4_000_000, "unexpectedly large: {b}");
    }

    #[test]
    fn profile_consistent_with_parts() {
        let t = correlated_table(3000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let f = FilterExpr::pred(Predicate::eq("attr", 3));
        let p = bn.profile(&f, &["id"]);
        assert!((p.rows - bn.estimate_filter(&f)).abs() < 1e-9);
        let d = bn.key_distribution("id", &f);
        for (a, b) in p.key_dists[0].iter().zip(&d) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
