//! Tree-structured Bayesian-network estimator (BayesCard stand-in).
//!
//! Build phase (paper §5.1): discretize every modeled column (join keys at
//! bin granularity, attributes into ≤ `max_codes` codes, NULL as a code),
//! learn a Chow-Liu tree from pairwise mutual information, and store CPTs
//! as smoothed counts. Query phase: a filter becomes per-node *evidence
//! weights* (fraction of each code satisfying the clause) and exact
//! two-pass belief propagation yields, in one sweep, the evidence
//! probability (filter selectivity) and every node's conditional marginal
//! — in particular `P(key bin | filter)`, which is exactly what the factor
//! graph needs.

use crate::binmap::TableBins;
use crate::chowliu::chow_liu_tree;
use crate::discretize::{DiscreteColumn, Discretizer};
use crate::evidence::split_per_column;
use crate::traits::{BaseTableEstimator, TableProfile};
use fj_query::FilterExpr;
use fj_storage::Table;
use std::collections::HashMap;

/// Bayesian-network build configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BnConfig {
    /// Maximum non-null codes per attribute column.
    pub max_codes: usize,
    /// Rows used for mutual-information estimation (strided sample).
    pub mi_sample_rows: usize,
    /// Laplace smoothing added to every count cell.
    pub alpha: f64,
    /// Selectivity factor applied per filter conjunct the network cannot
    /// express as evidence (cross-column disjunctions). A crude constant,
    /// mirroring how real systems punt on unsupported predicates.
    pub fallback_selectivity: f64,
}

impl Default for BnConfig {
    fn default() -> Self {
        BnConfig {
            max_codes: 64,
            mi_sample_rows: 20_000,
            alpha: 0.1,
            fallback_selectivity: 0.25,
        }
    }
}

/// A Bayesian-network estimator bound to one table.
pub struct BayesNetEstimator {
    cols: Vec<DiscreteColumn>,
    col_index: HashMap<String, usize>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// Marginal counts per node (unsmoothed).
    marginal: Vec<Vec<f64>>,
    /// For non-root node i: joint counts `[code_i * k_parent + code_parent]`.
    joint: Vec<Option<Vec<f64>>>,
    /// For non-root node i: per-parent-code column sums of `joint[i]`
    /// (cached CPT normalizers — recomputing them per cell is O(k³)).
    joint_parent_total: Vec<Option<Vec<f64>>>,
    /// Topological order, parents before children.
    topo: Vec<usize>,
    nrows: f64,
    cfg: BnConfig,
}

impl BayesNetEstimator {
    /// Builds the network over the modeled columns of `table`.
    pub fn build(table: &Table, bins: &TableBins, cfg: BnConfig) -> Self {
        let disc = Discretizer {
            max_codes: cfg.max_codes,
        };
        let mut cols = Vec::new();
        let mut src_cols = Vec::new();
        for (ci, def) in table.schema().columns().iter().enumerate() {
            if let Some(dc) = disc.build(table, ci, bins.get(&def.name)) {
                cols.push(dc);
                src_cols.push(ci);
            }
        }
        let m = cols.len();
        let n = table.nrows();

        // Encode all rows, column-major.
        let codes: Vec<Vec<u32>> = cols
            .iter()
            .zip(&src_cols)
            .map(|(dc, &ci)| {
                let col = table.column(ci);
                (0..n).map(|r| dc.encode_row(col, r) as u32).collect()
            })
            .collect();

        // Structure learning on a strided sample.
        let stride = (n / cfg.mi_sample_rows.max(1)).max(1);
        let sampled: Vec<Vec<u32>> = codes
            .iter()
            .map(|c| c.iter().step_by(stride).copied().collect())
            .collect();
        let domains: Vec<usize> = cols.iter().map(DiscreteColumn::n_codes).collect();
        let parent = chow_liu_tree(&sampled, &domains);

        let mut children: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(i);
            }
        }
        // Topological order: BFS from roots.
        let mut topo = Vec::with_capacity(m);
        let mut queue: std::collections::VecDeque<usize> =
            (0..m).filter(|&i| parent[i].is_none()).collect();
        while let Some(v) = queue.pop_front() {
            topo.push(v);
            queue.extend(children[v].iter().copied());
        }

        // Count marginals and child-parent joints over all rows.
        let mut marginal: Vec<Vec<f64>> = domains.iter().map(|&k| vec![0.0; k]).collect();
        let mut joint: Vec<Option<Vec<f64>>> = parent
            .iter()
            .enumerate()
            .map(|(i, p)| p.map(|p| vec![0.0; domains[i] * domains[p]]))
            .collect();
        for r in 0..n {
            for i in 0..m {
                let c = codes[i][r] as usize;
                marginal[i][c] += 1.0;
                if let (Some(p), Some(j)) = (parent[i], joint[i].as_mut()) {
                    j[c * domains[p] + codes[p][r] as usize] += 1.0;
                }
            }
        }

        let col_index = cols
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
        let mut bn = BayesNetEstimator {
            cols,
            col_index,
            parent,
            children,
            marginal,
            joint,
            joint_parent_total: Vec::new(),
            topo,
            nrows: n as f64,
            cfg,
        };
        bn.recompute_parent_totals();
        bn
    }

    fn recompute_parent_totals(&mut self) {
        self.joint_parent_total = self
            .parent
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.map(|p| {
                    let (kc, kp) = (self.cols[i].n_codes(), self.cols[p].n_codes());
                    let j = self.joint[i].as_ref().expect("non-root has joint counts");
                    let mut totals = vec![0.0; kp];
                    for c in 0..kc {
                        for (pc, t) in totals.iter_mut().enumerate() {
                            *t += j[c * kp + pc];
                        }
                    }
                    totals
                })
            })
            .collect();
    }

    /// Number of network nodes.
    pub fn num_nodes(&self) -> usize {
        self.cols.len()
    }

    /// Parent array (diagnostic / tests).
    pub fn structure(&self) -> &[Option<usize>] {
        &self.parent
    }

    fn k(&self, i: usize) -> usize {
        self.cols[i].n_codes()
    }

    /// Smoothed CPT entry `P(node_i = c | parent = p)`.
    fn cpt(&self, i: usize, c: usize, p: usize) -> f64 {
        let kp = self.k(self.parent[i].expect("cpt only for non-roots"));
        let kc = self.k(i);
        let j = self.joint[i].as_ref().expect("non-root has joint counts");
        let parent_total = self.joint_parent_total[i]
            .as_ref()
            .expect("cached totals for non-roots")[p];
        (j[c * kp + p] + self.cfg.alpha) / (parent_total + self.cfg.alpha * kc as f64)
    }

    /// Smoothed root marginal `P(node_i = c)`.
    fn root_prob(&self, i: usize, c: usize) -> f64 {
        (self.marginal[i][c] + self.cfg.alpha) / (self.nrows + self.cfg.alpha * self.k(i) as f64)
    }

    /// Converts a filter into per-node evidence weights plus a fallback
    /// multiplier for non-decomposable / unmodeled parts.
    fn evidence(&self, filter: &FilterExpr) -> (Vec<Option<Vec<f64>>>, f64) {
        let mut ev: Vec<Option<Vec<f64>>> = vec![None; self.cols.len()];
        let mut fallback = 1.0;
        match split_per_column(filter) {
            Some(clauses) => {
                for (col, clause) in clauses {
                    match self.col_index.get(&col) {
                        Some(&i) => {
                            let w = self.cols[i].clause_weights(&clause);
                            ev[i] = Some(match ev[i].take() {
                                None => w,
                                Some(old) => old.iter().zip(&w).map(|(a, b)| a * b).collect(),
                            });
                        }
                        None => fallback *= self.cfg.fallback_selectivity,
                    }
                }
            }
            None => {
                // Decompose what we can from the top-level conjunction and
                // charge the constant for the rest.
                if let FilterExpr::And(parts) = filter {
                    for part in parts {
                        let (sub_ev, sub_fb) = self.evidence(part);
                        if sub_fb == 1.0 && split_per_column(part).is_some() {
                            for (slot, w) in ev.iter_mut().zip(sub_ev) {
                                if let Some(w) = w {
                                    *slot = Some(match slot.take() {
                                        None => w,
                                        Some(old) => {
                                            old.iter().zip(&w).map(|(a, b)| a * b).collect()
                                        }
                                    });
                                }
                            }
                        } else {
                            fallback *= self.cfg.fallback_selectivity;
                        }
                    }
                } else {
                    fallback *= self.cfg.fallback_selectivity;
                }
            }
        }
        (ev, fallback)
    }

    /// Two-pass belief propagation. Returns `(p_evidence, beliefs)` where
    /// `beliefs[i][c] = P(node_i = c, evidence)` (unnormalized by nrows).
    fn propagate(&self, ev: &[Option<Vec<f64>>]) -> (f64, Vec<Vec<f64>>) {
        let m = self.cols.len();
        let w = |i: usize, c: usize| ev[i].as_ref().map_or(1.0, |v| v[c]);

        // Upward: lambda[i][c] = w_i(c) · Π_{child k} msg_k(c);
        // msg_i(p) = Σ_c P(c|p) λ_i(c).
        let mut lambda: Vec<Vec<f64>> = (0..m).map(|i| vec![0.0; self.k(i)]).collect();
        let mut msg_to_parent: Vec<Vec<f64>> = vec![Vec::new(); m];
        for &i in self.topo.iter().rev() {
            for c in 0..self.k(i) {
                let mut l = w(i, c);
                for &ch in &self.children[i] {
                    l *= msg_to_parent[ch][c];
                }
                lambda[i][c] = l;
            }
            if let Some(p) = self.parent[i] {
                let kp = self.k(p);
                let mut msg = vec![0.0; kp];
                for (pc, slot) in msg.iter_mut().enumerate() {
                    let mut s = 0.0;
                    for c in 0..self.k(i) {
                        if lambda[i][c] > 0.0 {
                            s += self.cpt(i, c, pc) * lambda[i][c];
                        }
                    }
                    *slot = s;
                }
                msg_to_parent[i] = msg;
            }
        }

        // Per-component evidence probability (forest ⇒ product).
        let mut comp_p: Vec<f64> = Vec::new();
        let mut comp_of: Vec<usize> = vec![0; m];
        for &i in &self.topo {
            if self.parent[i].is_none() {
                let p: f64 = (0..self.k(i))
                    .map(|c| self.root_prob(i, c) * lambda[i][c])
                    .sum();
                comp_of[i] = comp_p.len();
                comp_p.push(p);
            } else {
                comp_of[i] = comp_of[self.parent[i].expect("non-root")];
            }
        }
        let p_evidence: f64 = comp_p.iter().product();

        // Downward: belief_i(c) = π_i(c) · λ_i(c), where for the root
        // π = prior and for children π comes from the parent's belief with
        // this child's message divided out.
        let mut belief: Vec<Vec<f64>> = (0..m).map(|i| vec![0.0; self.k(i)]).collect();
        for &i in &self.topo {
            match self.parent[i] {
                None => {
                    for c in 0..self.k(i) {
                        belief[i][c] = self.root_prob(i, c) * lambda[i][c];
                    }
                }
                Some(p) => {
                    let kp = self.k(p);
                    // π_parent excluding child i.
                    let mut pi_ex = vec![0.0; kp];
                    for (pc, slot) in pi_ex.iter_mut().enumerate() {
                        let msg = msg_to_parent[i][pc];
                        *slot = if msg > 0.0 { belief[p][pc] / msg } else { 0.0 };
                    }
                    for c in 0..self.k(i) {
                        let mut s = 0.0;
                        for (pc, &pe) in pi_ex.iter().enumerate() {
                            if pe > 0.0 {
                                s += self.cpt(i, c, pc) * pe;
                            }
                        }
                        belief[i][c] = s * lambda[i][c];
                    }
                }
            }
        }
        // Scale each component's beliefs by the other components' evidence
        // probability so that belief sums equal the global p_evidence.
        if comp_p.len() > 1 {
            for i in 0..m {
                let own = comp_p[comp_of[i]];
                let others = if own > 0.0 { p_evidence / own } else { 0.0 };
                for b in &mut belief[i] {
                    *b *= others;
                }
            }
        }
        (p_evidence, belief)
    }
}

impl BaseTableEstimator for BayesNetEstimator {
    fn name(&self) -> &'static str {
        "bayesnet"
    }

    fn estimate_filter(&self, filter: &FilterExpr) -> f64 {
        let (ev, fallback) = self.evidence(filter);
        let (p, _) = self.propagate(&ev);
        p * fallback * self.nrows
    }

    fn key_distribution(&self, key_col: &str, filter: &FilterExpr) -> Vec<f64> {
        self.profile(filter, &[key_col])
            .key_dists
            .pop()
            .expect("one key requested")
    }

    fn key_bins(&self, key_col: &str) -> usize {
        match self.col_index.get(key_col) {
            Some(&i) => self.k(i) - 1, // exclude the NULL code
            None => 1,
        }
    }

    fn profile(&self, filter: &FilterExpr, key_cols: &[&str]) -> TableProfile {
        let (ev, fallback) = self.evidence(filter);
        let (p, beliefs) = self.propagate(&ev);
        let rows = p * fallback * self.nrows;
        let key_dists = key_cols
            .iter()
            .map(|kc| match self.col_index.get(*kc) {
                Some(&i) => {
                    let nk = self.k(i) - 1; // drop NULL code
                    beliefs[i][..nk]
                        .iter()
                        .map(|&b| b * fallback * self.nrows)
                        .collect()
                }
                None => vec![rows],
            })
            .collect();
        TableProfile { rows, key_dists }
    }

    fn insert(&mut self, table: &Table, first_new_row: usize) {
        let n = table.nrows();
        let m = self.cols.len();
        // Map node → source column index by name (schema may have floats
        // that were skipped at build time).
        let src: Vec<usize> = self
            .cols
            .iter()
            .map(|c| table.schema().index_of(&c.name).expect("schema unchanged"))
            .collect();
        for r in first_new_row..n {
            let codes: Vec<usize> = (0..m)
                .map(|i| self.cols[i].encode_row(table.column(src[i]), r))
                .collect();
            for i in 0..m {
                self.marginal[i][codes[i]] += 1.0;
                if let (Some(p), Some(j)) = (self.parent[i], self.joint[i].as_mut()) {
                    let kp = self.cols[p].n_codes();
                    j[codes[i] * kp + codes[p]] += 1.0;
                    if let Some(t) = self.joint_parent_total[i].as_mut() {
                        t[codes[p]] += 1.0;
                    }
                }
            }
        }
        self.nrows += (n - first_new_row) as f64;
    }

    fn model_bytes(&self) -> usize {
        let counts: usize = self
            .marginal
            .iter()
            .map(|v| v.len() * 8)
            .chain(self.joint.iter().flatten().map(|v| v.len() * 8))
            .sum();
        let cols: usize = self.cols.iter().map(DiscreteColumn::heap_bytes).sum();
        counts + cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binmap::KeyBinMap;
    use fj_query::{CmpOp, Predicate};
    use fj_storage::{ColumnDef, DataType, TableSchema, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Table with a strong key↔attribute correlation: attr = key % 4.
    fn correlated_table(n: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(5);
        let schema = TableSchema::new(vec![
            ColumnDef::key("id"),
            ColumnDef::new("attr", DataType::Int),
            ColumnDef::new("noise", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                let key = rng.gen_range(0..40i64);
                vec![
                    Value::Int(key),
                    Value::Int(key % 4),
                    Value::Int(rng.gen_range(0..1000)),
                ]
            })
            .collect();
        Table::from_rows("t", schema, &rows).unwrap()
    }

    fn bins_mod(k: usize) -> TableBins {
        let mut tb = TableBins::new();
        let map: HashMap<i64, u32> = (0..40).map(|v| (v, (v % k as i64) as u32)).collect();
        tb.insert("id", KeyBinMap::new(k, map));
        tb
    }

    fn exact_count(t: &Table, f: &FilterExpr) -> f64 {
        fj_query::filtered_count(t, f) as f64
    }

    #[test]
    fn unfiltered_profile_matches_row_count() {
        let t = correlated_table(4000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let est = bn.estimate_filter(&FilterExpr::True);
        assert!((est - 4000.0).abs() < 1.0, "est {est}");
        let d = bn.key_distribution("id", &FilterExpr::True);
        assert_eq!(d.len(), 8);
        let sum: f64 = d.iter().sum();
        assert!((sum - 4000.0).abs() / 4000.0 < 0.02, "sum {sum}");
    }

    #[test]
    fn equality_filter_estimates_close() {
        let t = correlated_table(4000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let f = FilterExpr::pred(Predicate::eq("attr", 2));
        let est = bn.estimate_filter(&f);
        let exact = exact_count(&t, &f);
        assert!(
            (est - exact).abs() / exact < 0.1,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn captures_key_attribute_correlation() {
        // attr = key % 4, so filtering attr = 0 keeps only keys ≡ 0 (mod 4).
        // An independence-assuming model would spread mass over all bins.
        let t = correlated_table(8000);
        let k = 8;
        // Bin i holds keys with key % 8 == i, so attr=0 ⇒ bins {0, 4} only.
        let bn = BayesNetEstimator::build(&t, &bins_mod(k), BnConfig::default());
        let f = FilterExpr::pred(Predicate::eq("attr", 0));
        let d = bn.key_distribution("id", &f);
        let total: f64 = d.iter().sum();
        let in_04 = d[0] + d[4];
        assert!(in_04 / total > 0.9, "correlation not captured: {d:?}");
    }

    #[test]
    fn conditional_distribution_matches_truth() {
        let t = correlated_table(8000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(4), BnConfig::default());
        let f = FilterExpr::pred(Predicate::eq("attr", 1));
        let d = bn.key_distribution("id", &f);
        // Ground truth per bin.
        let id = t.column_by_name("id").unwrap().ints();
        let attr = t.column_by_name("attr").unwrap().ints();
        let mut truth = [0.0; 4];
        for i in 0..t.nrows() {
            if attr[i] == 1 {
                truth[(id[i] % 4) as usize] += 1.0;
            }
        }
        for b in 0..4 {
            assert!(
                (d[b] - truth[b]).abs() <= truth[b].max(20.0) * 0.25,
                "bin {b}: est {} vs truth {}",
                d[b],
                truth[b]
            );
        }
    }

    #[test]
    fn range_and_in_filters() {
        let t = correlated_table(4000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        for f in [
            FilterExpr::pred(Predicate::cmp("attr", CmpOp::Ge, 2)),
            FilterExpr::pred(Predicate::in_list(
                "attr",
                vec![Value::Int(0), Value::Int(3)],
            )),
            FilterExpr::and(vec![
                FilterExpr::pred(Predicate::cmp("attr", CmpOp::Ge, 1)),
                FilterExpr::pred(Predicate::cmp("noise", CmpOp::Lt, 500)),
            ]),
        ] {
            let est = bn.estimate_filter(&f);
            let exact = exact_count(&t, &f);
            let q = (est.max(1.0) / exact.max(1.0)).max(exact.max(1.0) / est.max(1.0));
            assert!(q < 1.5, "{f}: est {est} vs exact {exact} (q={q:.2})");
        }
    }

    #[test]
    fn same_column_disjunction_is_evidence() {
        let t = correlated_table(4000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let f = FilterExpr::or(vec![
            FilterExpr::pred(Predicate::eq("attr", 0)),
            FilterExpr::pred(Predicate::eq("attr", 1)),
        ]);
        let est = bn.estimate_filter(&f);
        let exact = exact_count(&t, &f);
        assert!(
            (est - exact).abs() / exact < 0.1,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn cross_column_disjunction_falls_back() {
        let t = correlated_table(1000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let f = FilterExpr::or(vec![
            FilterExpr::pred(Predicate::eq("attr", 0)),
            FilterExpr::pred(Predicate::eq("noise", 7)),
        ]);
        // Fallback returns the constant-selectivity guess; it must be a
        // sane positive number, not a crash.
        let est = bn.estimate_filter(&f);
        assert!(est > 0.0 && est <= 1000.0);
    }

    #[test]
    fn insert_updates_counts() {
        let mut t = correlated_table(2000);
        let mut bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let before = bn.estimate_filter(&FilterExpr::True);
        let f7_filter = FilterExpr::pred(Predicate::eq("noise", 7));
        let f7_before = bn.estimate_filter(&f7_filter);
        let new_rows: Vec<Vec<Value>> = (0..1000)
            .map(|i| vec![Value::Int(i % 40), Value::Int((i % 40) % 4), Value::Int(7)])
            .collect();
        t.append_rows(&new_rows).unwrap();
        bn.insert(&t, 2000);
        let after = bn.estimate_filter(&FilterExpr::True);
        assert!((after - before - 1000.0).abs() < 1.0, "after {after}");
        // The noise=7 spike grows the containing bucket's mass. Per-bucket
        // NDV metadata is frozen at build time (the paper's §4.3 "bins are
        // optimized on the previous data" caveat), so the estimate rises by
        // roughly the bucket-mass factor, not to the exact new count.
        let f7_after = bn.estimate_filter(&f7_filter);
        assert!(
            f7_after > 10.0 * f7_before.max(1.0),
            "noise=7 estimate {f7_after} (before {f7_before})"
        );
    }

    #[test]
    fn null_aware_distribution() {
        let schema = TableSchema::new(vec![
            ColumnDef::key("id"),
            ColumnDef::new("a", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                let id = if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 10)
                };
                vec![id, Value::Int(i % 2)]
            })
            .collect();
        let t = Table::from_rows("t", schema, &rows).unwrap();
        let mut tb = TableBins::new();
        let map: HashMap<i64, u32> = (0..10).map(|v| (v, (v % 2) as u32)).collect();
        tb.insert("id", KeyBinMap::new(2, map));
        let bn = BayesNetEstimator::build(&t, &tb, BnConfig::default());
        let d = bn.key_distribution("id", &FilterExpr::True);
        // 20 NULL ids excluded: distribution sums to ≈ 80.
        let sum: f64 = d.iter().sum();
        assert!((sum - 80.0).abs() < 3.0, "sum {sum}");
    }

    #[test]
    fn model_bytes_nonzero_and_bounded() {
        let t = correlated_table(2000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let b = bn.model_bytes();
        assert!(b > 100, "too small: {b}");
        assert!(b < 4_000_000, "unexpectedly large: {b}");
    }

    #[test]
    fn profile_consistent_with_parts() {
        let t = correlated_table(3000);
        let bn = BayesNetEstimator::build(&t, &bins_mod(8), BnConfig::default());
        let f = FilterExpr::pred(Predicate::eq("attr", 3));
        let p = bn.profile(&f, &["id"]);
        assert!((p.rows - bn.estimate_filter(&f)).abs() < 1e-9);
        let d = bn.key_distribution("id", &f);
        for (a, b) in p.key_dists[0].iter().zip(&d) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
