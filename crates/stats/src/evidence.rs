//! Filter decomposition into per-column clauses ("evidence").
//!
//! The Bayesian-network estimator treats a filter as *evidence* on the
//! network's nodes: a per-column weight vector over that column's discrete
//! codes. This is possible exactly when the filter is a conjunction of
//! clauses that each reference a single column (disjunctions/negations
//! *inside* a clause are fine — they still induce a code-weight vector).
//! [`split_per_column`] performs the decomposition; [`clause_weights`]
//! evaluates a clause against a discretized column.

use crate::discretize::DiscreteColumn;
use fj_query::FilterExpr;

/// Splits `filter` into per-column clauses if it is a conjunction of
/// single-column sub-expressions; returns `None` for cross-column
/// disjunctions (which the BN estimator cannot express as evidence).
pub fn split_per_column(filter: &FilterExpr) -> Option<Vec<(String, FilterExpr)>> {
    let mut clauses: Vec<(String, FilterExpr)> = Vec::new();
    collect(filter, &mut clauses)?;
    Some(clauses)
}

fn collect(expr: &FilterExpr, out: &mut Vec<(String, FilterExpr)>) -> Option<()> {
    match expr {
        FilterExpr::True => Some(()),
        FilterExpr::And(parts) => {
            for p in parts {
                collect(p, out)?;
            }
            Some(())
        }
        other => {
            let cols = other.columns();
            match cols.len() {
                0 => Some(()),
                1 => {
                    let col = cols.into_iter().next().expect("len checked");
                    // Merge multiple clauses on the same column with AND.
                    if let Some(entry) = out.iter_mut().find(|(c, _)| *c == col) {
                        entry.1 = FilterExpr::and(vec![entry.1.clone(), other.clone()]);
                    } else {
                        out.push((col, other.clone()));
                    }
                    Some(())
                }
                _ => None,
            }
        }
    }
}

/// Evaluates a single-column clause against a discretized column, returning
/// the expected satisfaction weight of each code in `[0, 1]`.
///
/// For exact codes (categorical values, key bins of size 1, dictionary
/// strings) the weight is 0 or 1; for range-bucketized numerics boundary
/// buckets get fractional coverage estimated under within-bucket uniformity.
pub fn clause_weights(col: &DiscreteColumn, clause: &FilterExpr) -> Vec<f64> {
    col.clause_weights(clause)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_query::{CmpOp, Predicate};

    fn pred(col: &str, v: i64) -> FilterExpr {
        FilterExpr::pred(Predicate::eq(col, v))
    }

    #[test]
    fn conjunction_splits_by_column() {
        let f = FilterExpr::and(vec![
            pred("a", 1),
            pred("b", 2),
            FilterExpr::pred(Predicate::cmp("a", CmpOp::Lt, 10)),
        ]);
        let clauses = split_per_column(&f).unwrap();
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[0].0, "a");
        assert_eq!(
            clauses[0].1.num_predicates(),
            2,
            "same-column clauses merged"
        );
        assert_eq!(clauses[1].0, "b");
    }

    #[test]
    fn same_column_disjunction_is_supported() {
        let f = FilterExpr::or(vec![pred("a", 1), pred("a", 2)]);
        let clauses = split_per_column(&f).unwrap();
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].0, "a");
    }

    #[test]
    fn cross_column_disjunction_is_rejected() {
        let f = FilterExpr::or(vec![pred("a", 1), pred("b", 2)]);
        assert!(split_per_column(&f).is_none());
    }

    #[test]
    fn trivial_filter_yields_no_clauses() {
        assert_eq!(split_per_column(&FilterExpr::True).unwrap().len(), 0);
    }

    #[test]
    fn nested_not_single_column_ok() {
        let f = FilterExpr::Not(Box::new(pred("a", 3)));
        let clauses = split_per_column(&f).unwrap();
        assert_eq!(clauses.len(), 1);
    }
}
