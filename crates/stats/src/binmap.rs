//! Value→bin maps for join-key columns.
//!
//! Bins in FactorJoin partition a key group's *value set*, not its value
//! range: GBSA (paper §4.2) groups values by frequency, so a bin is an
//! arbitrary subset of the domain. [`KeyBinMap`] materializes the mapping
//! as a hash map plus a deterministic fallback for values never seen during
//! binning (which appear after incremental inserts, paper §4.3).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Mapping from join-key values to bin indices `0..k`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeyBinMap {
    k: usize,
    map: HashMap<i64, u32>,
}

impl KeyBinMap {
    /// Creates a map with `k` bins from explicit assignments.
    pub fn new(k: usize, map: HashMap<i64, u32>) -> Self {
        assert!(k > 0, "at least one bin required");
        debug_assert!(
            map.values().all(|&b| (b as usize) < k),
            "bin index out of range"
        );
        KeyBinMap { k, map }
    }

    /// Single-bin map (the k=1 ablation of paper Figure 9).
    pub fn single_bin() -> Self {
        KeyBinMap {
            k: 1,
            map: HashMap::new(),
        }
    }

    /// Number of bins.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of explicitly assigned values.
    pub fn assigned(&self) -> usize {
        self.map.len()
    }

    /// Bin of `value`. Unseen values hash deterministically into a bin so
    /// that inserted data lands in a stable place without re-binning.
    #[inline]
    pub fn bin_of(&self, value: i64) -> usize {
        match self.map.get(&value) {
            Some(&b) => b as usize,
            None => (fxhash(value) % self.k as u64) as usize,
        }
    }

    /// Registers a newly-seen value into its fallback bin (used by
    /// incremental updates to make the assignment explicit).
    pub fn adopt(&mut self, value: i64) -> usize {
        let b = self.bin_of(value);
        self.map.insert(value, b as u32);
        b
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.map.len() * (8 + 4 + 8) // key + value + bucket overhead
    }

    /// Iterates over the explicit (value, bin) assignments (persistence).
    pub fn entries(&self) -> impl Iterator<Item = (i64, u32)> + '_ {
        self.map.iter().map(|(&v, &b)| (v, b))
    }
}

#[inline]
fn fxhash(v: i64) -> u64 {
    (v as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
}

/// The bin maps for every join-key column of one table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TableBins {
    per_key: HashMap<String, KeyBinMap>,
}

impl TableBins {
    /// Empty set of bins (table with no join keys).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the bin map for `column`.
    pub fn insert(&mut self, column: &str, map: KeyBinMap) {
        self.per_key.insert(column.to_string(), map);
    }

    /// Bin map of `column`, if it is a binned join key.
    pub fn get(&self, column: &str) -> Option<&KeyBinMap> {
        self.per_key.get(column)
    }

    /// Mutable bin map of `column`.
    pub fn get_mut(&mut self, column: &str) -> Option<&mut KeyBinMap> {
        self.per_key.get_mut(column)
    }

    /// Iterates over (column, map) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &KeyBinMap)> {
        self.per_key.iter()
    }

    /// Number of binned key columns.
    pub fn len(&self) -> usize {
        self.per_key.len()
    }

    /// True when no key columns are binned.
    pub fn is_empty(&self) -> bool {
        self.per_key.is_empty()
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.per_key.values().map(KeyBinMap::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_assignments_resolve() {
        let map: HashMap<i64, u32> = [(10, 0), (20, 1), (30, 1)].into_iter().collect();
        let b = KeyBinMap::new(3, map);
        assert_eq!(b.bin_of(10), 0);
        assert_eq!(b.bin_of(20), 1);
        assert_eq!(b.bin_of(30), 1);
        assert_eq!(b.k(), 3);
        assert_eq!(b.assigned(), 3);
    }

    #[test]
    fn unseen_values_fall_back_deterministically() {
        let b = KeyBinMap::new(7, HashMap::new());
        let x = b.bin_of(999);
        assert_eq!(x, b.bin_of(999));
        assert!(x < 7);
        // Different values spread across bins.
        let bins: std::collections::HashSet<usize> = (0..100).map(|v| b.bin_of(v)).collect();
        assert!(bins.len() > 3, "fallback should spread: {bins:?}");
    }

    #[test]
    fn adopt_pins_the_fallback() {
        let mut b = KeyBinMap::new(4, HashMap::new());
        let bin = b.adopt(55);
        assert_eq!(b.bin_of(55), bin);
        assert_eq!(b.assigned(), 1);
    }

    #[test]
    fn single_bin_maps_everything_to_zero() {
        let b = KeyBinMap::single_bin();
        assert_eq!(b.bin_of(i64::MAX), 0);
        assert_eq!(b.bin_of(-5), 0);
        assert_eq!(b.k(), 1);
    }

    #[test]
    fn table_bins_lookup() {
        let mut tb = TableBins::new();
        tb.insert("id", KeyBinMap::single_bin());
        assert!(tb.get("id").is_some());
        assert!(tb.get("other").is_none());
        assert_eq!(tb.len(), 1);
        assert!(!tb.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        KeyBinMap::new(0, HashMap::new());
    }
}
