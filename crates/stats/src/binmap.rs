//! Value→bin maps for join-key columns.
//!
//! Bins in FactorJoin partition a key group's *value set*, not its value
//! range: GBSA (paper §4.2) groups values by frequency, so a bin is an
//! arbitrary subset of the domain. [`KeyBinMap`] materializes the mapping
//! as a hash map plus a deterministic fallback for values never seen during
//! binning (which appear after incremental inserts, paper §4.3).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Mapping from join-key values to bin indices `0..k`.
///
/// Stored as a flat open-addressing table (two parallel slabs, linear
/// probing, multiply-rotate hash) rather than a std `HashMap`: `bin_of`
/// sits on every hot path in the system — per row in exact/sampled
/// profiling, per inserted row in incremental updates — and the flat
/// layout answers it with one mix and a short probe instead of SipHash
/// plus bucket indirection. `u32::MAX` marks an empty slot (bin indices
/// are always `< k`, and `k` is far below that). `factorjoin::KeyFreq` is
/// the sibling slab for i64→count profiling (zero-count sentinel, low
/// hash bits) — a probe/grow fix here likely applies there too.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeyBinMap {
    k: usize,
    /// Slot keys; meaningful only where `bins` is not the empty sentinel.
    keys: Vec<i64>,
    /// Slot bin indices; `u32::MAX` = empty slot.
    bins: Vec<u32>,
    len: usize,
}

const EMPTY: u32 = u32::MAX;

impl KeyBinMap {
    /// Creates a map with `k` bins from explicit assignments.
    pub fn new(k: usize, map: HashMap<i64, u32>) -> Self {
        assert!(k > 0, "at least one bin required");
        let mut out = KeyBinMap {
            k,
            keys: Vec::new(),
            bins: Vec::new(),
            len: 0,
        };
        out.grow_to((map.len() * 8 / 7 + 1).next_power_of_two().max(8));
        for (v, b) in map {
            debug_assert!((b as usize) < k, "bin index out of range");
            out.set(v, b);
        }
        out
    }

    /// Single-bin map (the k=1 ablation of paper Figure 9).
    pub fn single_bin() -> Self {
        KeyBinMap {
            k: 1,
            keys: Vec::new(),
            bins: Vec::new(),
            len: 0,
        }
    }

    /// Number of bins.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of explicitly assigned values.
    pub fn assigned(&self) -> usize {
        self.len
    }

    /// Bin of `value`. Unseen values hash deterministically into a bin so
    /// that inserted data lands in a stable place without re-binning.
    #[inline]
    pub fn bin_of(&self, value: i64) -> usize {
        if !self.keys.is_empty() {
            let mask = self.keys.len() - 1;
            let mut slot = (fxhash(value) >> 32) as usize & mask;
            loop {
                let b = self.bins[slot];
                if b == EMPTY {
                    break;
                }
                if self.keys[slot] == value {
                    return b as usize;
                }
                slot = (slot + 1) & mask;
            }
        }
        (fxhash(value) % self.k as u64) as usize
    }

    /// Registers a newly-seen value into its fallback bin (used by
    /// incremental updates to make the assignment explicit).
    pub fn adopt(&mut self, value: i64) -> usize {
        let b = self.bin_of(value);
        self.set(value, b as u32);
        b
    }

    /// Inserts or overwrites one assignment.
    fn set(&mut self, value: i64, bin: u32) {
        if self.keys.is_empty() || self.len * 8 >= self.keys.len() * 7 {
            self.grow_to((self.keys.len() * 2).max(8));
        }
        let mask = self.keys.len() - 1;
        let mut slot = (fxhash(value) >> 32) as usize & mask;
        loop {
            if self.bins[slot] == EMPTY {
                self.keys[slot] = value;
                self.bins[slot] = bin;
                self.len += 1;
                return;
            }
            if self.keys[slot] == value {
                self.bins[slot] = bin;
                return;
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow_to(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two());
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_bins = std::mem::replace(&mut self.bins, vec![EMPTY; cap]);
        let mask = cap - 1;
        for (v, b) in old_keys.into_iter().zip(old_bins) {
            if b == EMPTY {
                continue;
            }
            let mut slot = (fxhash(v) >> 32) as usize & mask;
            while self.bins[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = v;
            self.bins[slot] = b;
        }
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.keys.len() * 8 + self.bins.len() * 4
    }

    /// The raw open-addressing slabs as `(k, keys, bins, len)` — the
    /// binary persistence format writes these verbatim so load is a bulk
    /// copy, not a per-entry re-insertion.
    pub fn raw_parts(&self) -> (usize, &[i64], &[u32], usize) {
        (self.k, &self.keys, &self.bins, self.len)
    }

    /// Rebuilds a map from raw slabs (the inverse of [`Self::raw_parts`]),
    /// validating every invariant the probing code relies on so a hostile
    /// or corrupt file can never produce a map that panics, loops forever,
    /// or indexes out of bounds:
    ///
    /// * `k > 0` and both slabs the same (zero or power-of-two) length;
    /// * `len` equals the number of occupied (non-sentinel) slots;
    /// * occupancy within the `7/8` growth bound, so probe loops always
    ///   find an empty slot and terminate;
    /// * every stored bin index is `< k`.
    ///
    /// Slot *placement* is not re-derived: a CRC-valid file stores slots
    /// exactly where the writer's identical hash function put them.
    pub fn from_raw_parts(
        k: usize,
        keys: Vec<i64>,
        bins: Vec<u32>,
        len: usize,
    ) -> Result<Self, String> {
        if k == 0 {
            return Err("at least one bin required".into());
        }
        if keys.len() != bins.len() {
            return Err(format!(
                "slab length mismatch: {} keys vs {} bins",
                keys.len(),
                bins.len()
            ));
        }
        let cap = keys.len();
        if cap != 0 && !cap.is_power_of_two() {
            return Err(format!("slab capacity {cap} is not a power of two"));
        }
        let occupied = bins.iter().filter(|&&b| b != EMPTY).count();
        if occupied != len {
            return Err(format!("{occupied} occupied slots but len says {len}"));
        }
        if cap != 0 && len * 8 > cap * 7 {
            return Err(format!(
                "over-full table: {len} entries in {cap} slots breaks probe termination"
            ));
        }
        if let Some(bad) = bins.iter().find(|&&b| b != EMPTY && b as usize >= k) {
            return Err(format!("bin index {bad} out of range for k={k}"));
        }
        Ok(KeyBinMap { k, keys, bins, len })
    }

    /// Iterates over the explicit (value, bin) assignments (persistence).
    pub fn entries(&self) -> impl Iterator<Item = (i64, u32)> + '_ {
        self.keys
            .iter()
            .zip(&self.bins)
            .filter(|&(_, &b)| b != EMPTY)
            .map(|(&v, &b)| (v, b))
    }
}

/// Multiply-rotate mix. The *fallback bin* (`hash % k`) uses the low bits
/// and the *slot index* uses the high bits, so explicit assignments and
/// fallback assignments stay decorrelated.
#[inline]
fn fxhash(v: i64) -> u64 {
    (v as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
}

/// The bin maps for every join-key column of one table.
///
/// Maps are held behind `Arc`s: a key group's bin map is **frozen** once
/// selected (incremental inserts only pin fallback assignments on the
/// model's own mutable copy, never re-bin), so every table and every
/// single-table estimator that references the same group shares one
/// allocation. That makes both cold builds and the hot-swap model clone
/// O(refcount) per map instead of O(assigned values).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TableBins {
    per_key: HashMap<String, Arc<KeyBinMap>>,
}

impl TableBins {
    /// Empty set of bins (table with no join keys).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the bin map for `column`.
    pub fn insert(&mut self, column: &str, map: KeyBinMap) {
        self.insert_shared(column, Arc::new(map));
    }

    /// Adds an already-shared bin map for `column` (training shares one
    /// `Arc` per key group across all referencing tables).
    pub fn insert_shared(&mut self, column: &str, map: Arc<KeyBinMap>) {
        self.per_key.insert(column.to_string(), map);
    }

    /// Bin map of `column`, if it is a binned join key.
    pub fn get(&self, column: &str) -> Option<&KeyBinMap> {
        self.per_key.get(column).map(Arc::as_ref)
    }

    /// Shared handle to `column`'s bin map (estimators keep the `Arc`).
    pub fn get_shared(&self, column: &str) -> Option<&Arc<KeyBinMap>> {
        self.per_key.get(column)
    }

    /// Iterates over (column, map) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &KeyBinMap)> {
        self.per_key.iter().map(|(k, v)| (k, v.as_ref()))
    }

    /// Number of binned key columns.
    pub fn len(&self) -> usize {
        self.per_key.len()
    }

    /// True when no key columns are binned.
    pub fn is_empty(&self) -> bool {
        self.per_key.is_empty()
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.per_key.values().map(|m| m.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_assignments_resolve() {
        let map: HashMap<i64, u32> = [(10, 0), (20, 1), (30, 1)].into_iter().collect();
        let b = KeyBinMap::new(3, map);
        assert_eq!(b.bin_of(10), 0);
        assert_eq!(b.bin_of(20), 1);
        assert_eq!(b.bin_of(30), 1);
        assert_eq!(b.k(), 3);
        assert_eq!(b.assigned(), 3);
    }

    #[test]
    fn unseen_values_fall_back_deterministically() {
        let b = KeyBinMap::new(7, HashMap::new());
        let x = b.bin_of(999);
        assert_eq!(x, b.bin_of(999));
        assert!(x < 7);
        // Different values spread across bins.
        let bins: std::collections::HashSet<usize> = (0..100).map(|v| b.bin_of(v)).collect();
        assert!(bins.len() > 3, "fallback should spread: {bins:?}");
    }

    #[test]
    fn adopt_pins_the_fallback() {
        let mut b = KeyBinMap::new(4, HashMap::new());
        let bin = b.adopt(55);
        assert_eq!(b.bin_of(55), bin);
        assert_eq!(b.assigned(), 1);
    }

    #[test]
    fn single_bin_maps_everything_to_zero() {
        let b = KeyBinMap::single_bin();
        assert_eq!(b.bin_of(i64::MAX), 0);
        assert_eq!(b.bin_of(-5), 0);
        assert_eq!(b.k(), 1);
    }

    #[test]
    fn table_bins_lookup() {
        let mut tb = TableBins::new();
        tb.insert("id", KeyBinMap::single_bin());
        assert!(tb.get("id").is_some());
        assert!(tb.get("other").is_none());
        assert_eq!(tb.len(), 1);
        assert!(!tb.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        KeyBinMap::new(0, HashMap::new());
    }

    #[test]
    fn raw_parts_roundtrip_preserves_lookups() {
        let map: HashMap<i64, u32> = (0..500).map(|v| (v * 13, (v % 9) as u32)).collect();
        let b = KeyBinMap::new(9, map);
        let (k, keys, bins, len) = b.raw_parts();
        let back = KeyBinMap::from_raw_parts(k, keys.to_vec(), bins.to_vec(), len).unwrap();
        assert_eq!(back.k(), b.k());
        assert_eq!(back.assigned(), b.assigned());
        for v in -1000..1000 {
            assert_eq!(back.bin_of(v), b.bin_of(v), "value {v}");
        }
        // Raw parts of the rebuilt map are identical — byte-stable persistence.
        let (k2, keys2, bins2, len2) = back.raw_parts();
        assert_eq!((k2, len2), (k, len));
        assert_eq!(keys2, keys);
        assert_eq!(bins2, bins);
    }

    #[test]
    fn from_raw_parts_rejects_invalid_slabs() {
        // k = 0.
        assert!(KeyBinMap::from_raw_parts(0, vec![], vec![], 0).is_err());
        // Mismatched slab lengths.
        assert!(KeyBinMap::from_raw_parts(2, vec![0; 8], vec![EMPTY; 4], 0).is_err());
        // Non-power-of-two capacity.
        assert!(KeyBinMap::from_raw_parts(2, vec![0; 6], vec![EMPTY; 6], 0).is_err());
        // len disagrees with occupancy.
        assert!(KeyBinMap::from_raw_parts(2, vec![0; 8], vec![EMPTY; 8], 3).is_err());
        // Over-full table (no empty slot → probe loops would never end).
        assert!(KeyBinMap::from_raw_parts(2, vec![0; 8], vec![1; 8], 8).is_err());
        // Bin index out of range.
        let mut bins = vec![EMPTY; 8];
        bins[0] = 5;
        assert!(KeyBinMap::from_raw_parts(2, vec![0; 8], bins, 1).is_err());
        // Empty map is fine.
        let empty = KeyBinMap::from_raw_parts(3, vec![], vec![], 0).unwrap();
        assert_eq!(empty.assigned(), 0);
        assert!(empty.bin_of(7) < 3);
    }
}
