//! Uniform-sampling single-table estimator.
//!
//! The paper uses "traditional random sampling" as one of the two base
//! estimators (§3.3) — it is the one used for IMDB-JOB because it supports
//! arbitrary filter shapes: disjunctions, `LIKE`, NULL tests, anything the
//! row-level evaluator can decide. The estimator materializes a uniform
//! sample as its own small [`Table`], compiles each query's filter against
//! the sample once, and scales counts by the inverse sampling fraction.

use crate::binmap::TableBins;
use crate::traits::{BaseTableEstimator, TableProfile};
use fj_query::{compile_filter, FilterExpr};
use fj_storage::Table;
use std::collections::HashMap;

/// Sampling-based estimator for one table.
#[derive(Clone)]
pub struct SamplingEstimator {
    sample: Table,
    /// Per sampled row, per key column: the bin index (or `None` for NULL).
    key_bins_per_row: HashMap<String, Vec<Option<u32>>>,
    bins: TableBins,
    base_rows: f64,
    rate: f64,
    seed: u64,
}

impl SamplingEstimator {
    /// Minimum sample size: small (dimension) tables are kept whole, as
    /// real systems do — a 1% sample of a 7-row table would zero out most
    /// of the key domain and poison every bound that joins through it.
    pub const MIN_SAMPLE_ROWS: usize = 100;

    /// Builds a sampler over `table` with sampling fraction `rate`,
    /// deterministic in `seed`. The sample is systematic (seeded offset +
    /// stride), which is unbiased for our purposes and reproducible.
    pub fn build(table: &Table, bins: &TableBins, rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        let n = table.nrows();
        let rate = if n > 0 {
            rate.max((Self::MIN_SAMPLE_ROWS as f64 / n as f64).min(1.0))
        } else {
            rate
        };
        let stride = (1.0 / rate).max(1.0);
        let offset = (seed % stride.ceil() as u64) as f64;
        let mut rows = Vec::with_capacity((n as f64 * rate) as usize + 1);
        let mut pos = offset;
        while (pos as usize) < n {
            rows.push(pos as usize);
            pos += stride;
        }
        if rows.is_empty() && n > 0 {
            rows.push(0);
        }
        let sample = table.select_rows(table.name(), &rows);
        let mut est = SamplingEstimator {
            sample,
            key_bins_per_row: HashMap::new(),
            bins: bins.clone(),
            base_rows: n as f64,
            rate,
            seed,
        };
        est.rebin();
        est
    }

    /// (Re)computes per-row bin ids for each binned key column.
    fn rebin(&mut self) {
        self.key_bins_per_row.clear();
        for (col_name, map) in self.bins.iter() {
            let Some(ci) = self.sample.schema().index_of(col_name) else {
                continue;
            };
            let col = self.sample.column(ci);
            let per_row: Vec<Option<u32>> = (0..self.sample.nrows())
                .map(|r| col.key_at(r).map(|v| map.bin_of(v) as u32))
                .collect();
            self.key_bins_per_row.insert(col_name.clone(), per_row);
        }
    }

    /// Scale factor from sample counts to table counts.
    fn scale(&self) -> f64 {
        if self.sample.nrows() == 0 {
            0.0
        } else {
            self.base_rows / self.sample.nrows() as f64
        }
    }

    /// Number of sampled rows (diagnostic).
    pub fn sample_rows(&self) -> usize {
        self.sample.nrows()
    }
}

impl BaseTableEstimator for SamplingEstimator {
    fn name(&self) -> &'static str {
        "sampling"
    }

    fn estimate_filter(&self, filter: &FilterExpr) -> f64 {
        let compiled = compile_filter(&self.sample, filter);
        let mut hits = 0u64;
        for i in 0..self.sample.nrows() {
            if compiled.eval(&self.sample, i) {
                hits += 1;
            }
        }
        hits as f64 * self.scale()
    }

    fn key_distribution(&self, key_col: &str, filter: &FilterExpr) -> Vec<f64> {
        self.profile(filter, &[key_col])
            .key_dists
            .pop()
            .expect("one key requested")
    }

    fn key_bins(&self, key_col: &str) -> usize {
        self.bins.get(key_col).map(|m| m.k()).unwrap_or(1)
    }

    fn profile(&self, filter: &FilterExpr, key_cols: &[&str]) -> TableProfile {
        let compiled = compile_filter(&self.sample, filter);
        let mut dists: Vec<Vec<f64>> = key_cols
            .iter()
            .map(|k| vec![0.0; self.key_bins(k)])
            .collect();
        let bin_rows: Vec<Option<&Vec<Option<u32>>>> = key_cols
            .iter()
            .map(|k| self.key_bins_per_row.get(*k))
            .collect();
        let mut hits = 0u64;
        for i in 0..self.sample.nrows() {
            if !compiled.eval(&self.sample, i) {
                continue;
            }
            hits += 1;
            for (d, br) in dists.iter_mut().zip(&bin_rows) {
                if let Some(rows) = br {
                    if let Some(b) = rows[i] {
                        d[b as usize] += 1.0;
                    }
                }
            }
        }
        let s = self.scale();
        for d in &mut dists {
            for x in d.iter_mut() {
                *x *= s;
            }
        }
        TableProfile {
            rows: hits as f64 * s,
            key_dists: dists,
        }
    }

    fn clone_box(&self) -> Box<dyn BaseTableEstimator> {
        Box::new(self.clone())
    }

    fn insert(&mut self, table: &Table, first_new_row: usize) {
        // Extend the sample systematically over the inserted suffix, then
        // recompute bin ids (new values may hash into fallback bins).
        let n = table.nrows();
        let stride = (1.0 / self.rate).max(1.0);
        let offset = (self.seed % stride.ceil() as u64) as f64;
        let mut new_rows = Vec::new();
        let mut pos = first_new_row as f64 + offset;
        while (pos as usize) < n {
            new_rows.push(table.row(pos as usize));
            pos += stride;
        }
        if !new_rows.is_empty() {
            self.sample
                .append_rows(&new_rows)
                .expect("schema-compatible rows");
        }
        self.base_rows = n as f64;
        self.rebin();
    }

    fn model_bytes(&self) -> usize {
        self.sample.heap_bytes()
            + self
                .key_bins_per_row
                .values()
                .map(|v| v.len() * 5)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binmap::KeyBinMap;
    use fj_query::{CmpOp, Predicate};
    use fj_storage::{ColumnDef, DataType, TableSchema, Value};

    fn table(n: usize) -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::key("id"),
            ColumnDef::new("x", DataType::Int),
        ]);
        let rows: Vec<Vec<Value>> = (0..n as i64)
            .map(|i| {
                let id = if i % 10 == 9 {
                    Value::Null
                } else {
                    Value::Int(i % 50)
                };
                vec![id, Value::Int(i % 100)]
            })
            .collect();
        Table::from_rows("t", schema, &rows).unwrap()
    }

    fn bins_for(k: usize) -> TableBins {
        let mut tb = TableBins::new();
        let map: HashMap<i64, u32> = (0..50).map(|v| (v, (v % k as i64) as u32)).collect();
        tb.insert("id", KeyBinMap::new(k, map));
        tb
    }

    #[test]
    fn full_rate_sampling_is_exact() {
        let t = table(1000);
        let est = SamplingEstimator::build(&t, &bins_for(5), 1.0, 7);
        assert_eq!(est.sample_rows(), 1000);
        let f = FilterExpr::pred(Predicate::cmp("x", CmpOp::Lt, 50));
        assert_eq!(est.estimate_filter(&f), 500.0);
    }

    #[test]
    fn subsample_estimates_within_tolerance() {
        let t = table(5000);
        let est = SamplingEstimator::build(&t, &bins_for(5), 0.2, 3);
        let f = FilterExpr::pred(Predicate::cmp("x", CmpOp::Lt, 30));
        let exact = 5000.0 * 0.3;
        let got = est.estimate_filter(&f);
        assert!(
            (got - exact).abs() / exact < 0.15,
            "estimate {got} vs exact {exact}"
        );
    }

    #[test]
    fn key_distribution_sums_to_non_null_rows() {
        let t = table(1000);
        let est = SamplingEstimator::build(&t, &bins_for(5), 1.0, 7);
        let d = est.key_distribution("id", &FilterExpr::True);
        assert_eq!(d.len(), 5);
        let sum: f64 = d.iter().sum();
        // 10% of ids are NULL.
        assert_eq!(sum, 900.0);
    }

    #[test]
    fn profile_matches_individual_calls() {
        let t = table(2000);
        let est = SamplingEstimator::build(&t, &bins_for(4), 0.5, 1);
        let f = FilterExpr::pred(Predicate::cmp("x", CmpOp::Ge, 40));
        let p = est.profile(&f, &["id"]);
        assert_eq!(p.rows, est.estimate_filter(&f));
        assert_eq!(p.key_dists[0], est.key_distribution("id", &f));
    }

    #[test]
    fn supports_disjunctions_and_like_shapes() {
        // The sampler must handle shapes the BN cannot.
        let schema = TableSchema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("s", DataType::Str),
        ]);
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::Int(i % 10),
                    Value::Str(if i % 2 == 0 {
                        "even x".into()
                    } else {
                        "odd y".into()
                    }),
                ]
            })
            .collect();
        let t = Table::from_rows("t", schema, &rows).unwrap();
        let est = SamplingEstimator::build(&t, &TableBins::new(), 1.0, 0);
        let f = FilterExpr::or(vec![
            FilterExpr::pred(Predicate::eq("a", 3)),
            FilterExpr::pred(Predicate::like("s", "%even%")),
        ]);
        // 50 evens + 10 rows with a=3 (i%10==3, all odd) = 60.
        assert_eq!(est.estimate_filter(&f), 60.0);
    }

    #[test]
    fn insert_extends_sample_and_scale() {
        let mut t = table(1000);
        let mut est = SamplingEstimator::build(&t, &bins_for(5), 0.5, 3);
        let before = est.estimate_filter(&FilterExpr::True);
        assert!((before - 1000.0).abs() < 3.0);
        let new_rows: Vec<Vec<Value>> = (0..500)
            .map(|i| vec![Value::Int(i % 50), Value::Int(5)])
            .collect();
        t.append_rows(&new_rows).unwrap();
        est.insert(&t, 1000);
        let after = est.estimate_filter(&FilterExpr::True);
        assert!((after - 1500.0).abs() < 5.0, "after insert {after}");
        // The x=5 mass grew substantially.
        let f5 = est.estimate_filter(&FilterExpr::pred(Predicate::eq("x", 5)));
        assert!(f5 > 400.0, "x=5 estimate {f5}");
    }

    #[test]
    fn model_bytes_scales_with_rate() {
        let t = table(4000);
        let small = SamplingEstimator::build(&t, &bins_for(5), 0.05, 3);
        let large = SamplingEstimator::build(&t, &bins_for(5), 0.5, 3);
        assert!(large.model_bytes() > 4 * small.model_bytes());
    }

    #[test]
    fn deterministic_given_seed() {
        let t = table(3000);
        let a = SamplingEstimator::build(&t, &bins_for(5), 0.1, 11);
        let b = SamplingEstimator::build(&t, &bins_for(5), 0.1, 11);
        let f = FilterExpr::pred(Predicate::cmp("x", CmpOp::Lt, 37));
        assert_eq!(a.estimate_filter(&f), b.estimate_filter(&f));
    }
}
