//! The estimator interface FactorJoin plugs into.

use fj_query::FilterExpr;
use fj_storage::Table;

/// Everything FactorJoin needs from a table for one query: the estimated
/// filtered row count and the conditional binned distribution of each
/// requested join key (paper Eq. 1: `P(key = v | Q(A)) · |Q(A)|`).
///
/// Profiles are reusable output buffers: [`BaseTableEstimator::profile_into`]
/// refills an existing profile in place so the sub-plan estimation hot path
/// does not allocate fresh distributions per query.
#[derive(Debug, Clone, Default)]
pub struct TableProfile {
    /// Estimated `|Q(A)|` — rows satisfying the filter.
    pub rows: f64,
    /// For each requested key column: estimated rows per bin (unnormalized
    /// distribution over the key's binned domain, NULL keys excluded).
    pub key_dists: Vec<Vec<f64>>,
}

impl TableProfile {
    /// Prepares the profile to receive `n` key distributions, reusing the
    /// existing vector capacities.
    pub fn reset(&mut self, n: usize) {
        self.rows = 0.0;
        self.key_dists.resize_with(n, Vec::new);
        for d in &mut self.key_dists {
            d.clear();
        }
    }
}

/// A single-table cardinality estimator bound to one table.
///
/// Implementations must be self-contained (no borrowed table data) so that
/// models can be sized, serialized, and updated independently of the live
/// catalog — except [`crate::ExactEstimator`], which by design scans a
/// snapshot it owns.
pub trait BaseTableEstimator: Send + Sync {
    /// Short method name ("bayesnet", "sampling", "truescan").
    fn name(&self) -> &'static str;

    /// Estimated number of rows satisfying `filter`.
    fn estimate_filter(&self, filter: &FilterExpr) -> f64;

    /// Estimated rows per bin of join key `key_col`, conditioned on
    /// `filter`. Length equals the key's bin count; NULL keys excluded.
    fn key_distribution(&self, key_col: &str, filter: &FilterExpr) -> Vec<f64>;

    /// Number of bins of `key_col` (the length `key_distribution` returns).
    fn key_bins(&self, key_col: &str) -> usize;

    /// Filtered row count *and* several key distributions in one pass —
    /// the hot path of sub-plan estimation. The default calls the two
    /// methods above; implementations override to share work.
    fn profile(&self, filter: &FilterExpr, key_cols: &[&str]) -> TableProfile {
        TableProfile {
            rows: self.estimate_filter(filter),
            key_dists: key_cols
                .iter()
                .map(|k| self.key_distribution(k, filter))
                .collect(),
        }
    }

    /// [`Self::profile`] into a caller-owned buffer, reusing its
    /// allocations where possible. The default replaces the buffer with a
    /// fresh [`Self::profile`]; allocation-conscious implementations
    /// override this to refill `out` in place.
    fn profile_into(&self, filter: &FilterExpr, key_cols: &[&str], out: &mut TableProfile) {
        *out = self.profile(filter, key_cols);
    }

    /// Incorporates rows `first_new_row..` of the (already updated) table —
    /// the incremental-update hook of paper §4.3.
    fn insert(&mut self, table: &Table, first_new_row: usize);

    /// Deep copy behind a fresh box. The incremental-update hot-swap path
    /// clones the served (immutable, `Arc`-shared) model, applies a delta
    /// to the copy, and publishes it — which needs boxed estimators to be
    /// copyable without knowing their concrete type.
    fn clone_box(&self) -> Box<dyn BaseTableEstimator>;

    /// Approximate model size in bytes (paper Figure 6 reports model sizes).
    fn model_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial estimator to exercise the default `profile` impl.
    struct Fixed;

    impl BaseTableEstimator for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn estimate_filter(&self, _f: &FilterExpr) -> f64 {
            10.0
        }
        fn key_distribution(&self, _k: &str, _f: &FilterExpr) -> Vec<f64> {
            vec![4.0, 6.0]
        }
        fn key_bins(&self, _k: &str) -> usize {
            2
        }
        fn insert(&mut self, _t: &Table, _i: usize) {}
        fn clone_box(&self) -> Box<dyn BaseTableEstimator> {
            Box::new(Fixed)
        }
        fn model_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn default_profile_combines_calls() {
        let e = Fixed;
        let p = e.profile(&FilterExpr::True, &["a", "b"]);
        assert_eq!(p.rows, 10.0);
        assert_eq!(p.key_dists.len(), 2);
        assert_eq!(p.key_dists[0], vec![4.0, 6.0]);
    }
}
