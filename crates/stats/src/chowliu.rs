//! Chow-Liu structure learning (paper §5.1).
//!
//! The joint distribution of a table's attributes is approximated by a
//! tree-structured Bayesian network: edges are weighted by pairwise mutual
//! information and a maximum spanning tree keeps the most informative
//! dependencies (Chow & Liu, 1968 — reference 6 of the paper). The tree
//! factorizes the `max(|JK|)`-dimensional joint into ≤2-dimensional
//! conditionals, reducing FactorJoin's inference complexity to `O(N·k²)`.

/// Computes the pairwise mutual information between two code vectors with
/// the given domain sizes, in nats. Inputs must be equal length.
pub fn mutual_information(xs: &[u32], ys: &[u32], kx: usize, ky: usize) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mut joint = vec![0f64; kx * ky];
    let mut px = vec![0f64; kx];
    let mut py = vec![0f64; ky];
    for (&x, &y) in xs.iter().zip(ys) {
        joint[x as usize * ky + y as usize] += 1.0;
        px[x as usize] += 1.0;
        py[y as usize] += 1.0;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for x in 0..kx {
        if px[x] == 0.0 {
            continue;
        }
        for y in 0..ky {
            let j = joint[x * ky + y];
            if j == 0.0 {
                continue;
            }
            let pxy = j / nf;
            mi += pxy * (pxy / ((px[x] / nf) * (py[y] / nf))).ln();
        }
    }
    mi.max(0.0)
}

/// Learns a Chow-Liu tree over `columns` (code vectors, all equal length)
/// with the given domain sizes. Returns `parent[i]` (`None` for the root,
/// node 0's component root). Disconnected/zero-MI pairs still yield a tree
/// (ties broken toward lower indices), so every node has a defined parent
/// relationship.
pub fn chow_liu_tree(columns: &[Vec<u32>], domains: &[usize]) -> Vec<Option<usize>> {
    chow_liu_tree_threads(columns, domains, 1)
}

/// [`chow_liu_tree`] with the `O(m²)` pairwise mutual-information sweep —
/// the structure-learning hot loop — fanned across `threads` workers
/// (0 = all available cores, matching `fj_par::WorkerPool::new`).
/// Edge weights are computed independently per pair and assembled in
/// canonical `(i, j)` order, so the learned tree is identical for every
/// thread count.
pub fn chow_liu_tree_threads(
    columns: &[Vec<u32>],
    domains: &[usize],
    threads: usize,
) -> Vec<Option<usize>> {
    let m = columns.len();
    assert_eq!(m, domains.len());
    if m == 0 {
        return Vec::new();
    }
    // All pairwise MI weights, in canonical (i, j) order.
    let pairs: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| (i + 1..m).map(move |j| (i, j)))
        .collect();
    let weights = fj_par::WorkerPool::new(threads).run_indexed(pairs.len(), |p| {
        let (i, j) = pairs[p];
        mutual_information(&columns[i], &columns[j], domains[i], domains[j])
    });
    let mut edges: Vec<(f64, usize, usize)> = pairs
        .into_iter()
        .zip(weights)
        .map(|((i, j), mi)| (mi, i, j))
        .collect();
    // Maximum spanning tree (Kruskal): sort by MI descending.
    edges.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("MI is finite")
            .then(a.1.cmp(&b.1))
    });
    let mut uf = fj_storage::UnionFind::new(m);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (_, i, j) in edges {
        if uf.find(i) != uf.find(j) {
            uf.union(i, j);
            adj[i].push(j);
            adj[j].push(i);
        }
    }
    // Root at node 0; BFS assigns parents.
    let mut parent = vec![None; m];
    let mut seen = vec![false; m];
    for root in 0..m {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    parent[w] = Some(v);
                    queue.push_back(w);
                }
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mi_of_identical_columns_is_entropy() {
        let xs: Vec<u32> = (0..1000).map(|i| (i % 4) as u32).collect();
        let mi = mutual_information(&xs, &xs, 4, 4);
        // H(X) for uniform over 4 = ln 4.
        assert!((mi - 4f64.ln()).abs() < 1e-9, "mi {mi}");
    }

    #[test]
    fn mi_of_independent_columns_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<u32> = (0..20_000).map(|_| rng.gen_range(0..8)).collect();
        let ys: Vec<u32> = (0..20_000).map(|_| rng.gen_range(0..8)).collect();
        let mi = mutual_information(&xs, &ys, 8, 8);
        assert!(mi < 0.01, "mi {mi}");
    }

    #[test]
    fn mi_is_symmetric_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<u32> = (0..5000).map(|_| rng.gen_range(0..5)).collect();
        let ys: Vec<u32> = xs.iter().map(|&x| (x + rng.gen_range(0..2)) % 5).collect();
        let a = mutual_information(&xs, &ys, 5, 5);
        let b = mutual_information(&ys, &xs, 5, 5);
        assert!((a - b).abs() < 1e-12);
        assert!(a >= 0.0);
    }

    #[test]
    fn tree_prefers_strong_dependencies() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        // x0 random; x1 = f(x0); x2 = f(x1); x3 independent.
        let x0: Vec<u32> = (0..n).map(|_| rng.gen_range(0..6)).collect();
        let x1: Vec<u32> = x0
            .iter()
            .map(|&v| (v * 2 + rng.gen_range(0..2)) % 6)
            .collect();
        let x2: Vec<u32> = x1.iter().map(|&v| (v + rng.gen_range(0..2)) % 6).collect();
        let x3: Vec<u32> = (0..n).map(|_| rng.gen_range(0..6)).collect();
        let cols = vec![x0, x1, x2, x3];
        let parent = chow_liu_tree(&cols, &[6, 6, 6, 6]);
        // Exactly one root, tree shape.
        assert_eq!(parent.iter().filter(|p| p.is_none()).count(), 1);
        // The chain 0–1–2 must be connected: node 2's path to root passes 1.
        let path_to_root = |mut v: usize| {
            let mut path = vec![v];
            while let Some(p) = parent[v] {
                path.push(p);
                v = p;
            }
            path
        };
        assert!(
            path_to_root(2).contains(&1),
            "x2 should attach through x1: {parent:?}"
        );
    }

    #[test]
    fn tree_has_no_cycles() {
        let mut rng = StdRng::seed_from_u64(4);
        let cols: Vec<Vec<u32>> = (0..6)
            .map(|_| (0..2000).map(|_| rng.gen_range(0..4)).collect())
            .collect();
        let parent = chow_liu_tree(&cols, &[4; 6]);
        assert_eq!(parent.len(), 6);
        // Following parents always terminates (acyclic).
        for start in 0..6 {
            let mut v = start;
            let mut steps = 0;
            while let Some(p) = parent[v] {
                v = p;
                steps += 1;
                assert!(steps <= 6, "cycle detected");
            }
        }
    }

    #[test]
    fn single_and_empty_inputs() {
        assert_eq!(chow_liu_tree(&[], &[]), Vec::<Option<usize>>::new());
        let one = chow_liu_tree(&[vec![0, 1, 0]], &[2]);
        assert_eq!(one, vec![None]);
    }
}
