//! Filter compilation and evaluation against columnar tables.
//!
//! A [`crate::FilterExpr`] is compiled once per (table, filter) pair:
//! column names resolve to indices, string predicates pre-evaluate against
//! the column dictionary (so `LIKE` costs one dictionary scan, not one
//! pattern match per row), and literals are coerced to the column type.
//! Evaluation is then a tight per-row loop over typed vectors.

use crate::expr::FilterExpr;
use crate::like::like_match;
use crate::predicate::{CmpOp, Predicate};
use fj_storage::{Column, DataType, Table, Value};
use std::collections::HashSet;

/// A compiled atomic predicate.
enum CompiledPred {
    /// Integer comparison against an integer literal.
    IntCmp { col: usize, op: CmpOp, v: i64 },
    /// Integer column compared against a float literal.
    IntCmpF { col: usize, op: CmpOp, v: f64 },
    /// Float column comparison.
    FloatCmp { col: usize, op: CmpOp, v: f64 },
    /// Integer range (inclusive).
    IntBetween { col: usize, lo: i64, hi: i64 },
    /// Float range (inclusive).
    FloatBetween { col: usize, lo: f64, hi: f64 },
    /// Integer set membership.
    IntIn { col: usize, set: HashSet<i64> },
    /// String predicate pre-evaluated per dictionary code.
    StrCodes { col: usize, codes: Vec<bool> },
    /// NULL test.
    IsNull { col: usize, negated: bool },
    /// Statically false (e.g. type-mismatched literal).
    Never,
}

/// A compiled boolean filter for one specific table.
pub struct CompiledFilter {
    root: CompiledNode,
}

enum CompiledNode {
    True,
    Pred(CompiledPred),
    And(Vec<CompiledNode>),
    Or(Vec<CompiledNode>),
    Not(Box<CompiledNode>),
}

/// Compiles `expr` for `table`. Panics on unknown columns — queries are
/// validated at bind time, so reaching here with a bad column is a bug.
pub fn compile_filter(table: &Table, expr: &FilterExpr) -> CompiledFilter {
    CompiledFilter {
        root: compile_node(table, expr),
    }
}

fn compile_node(table: &Table, expr: &FilterExpr) -> CompiledNode {
    match expr {
        FilterExpr::True => CompiledNode::True,
        FilterExpr::Pred(p) => CompiledNode::Pred(compile_pred(table, p)),
        FilterExpr::And(parts) => {
            CompiledNode::And(parts.iter().map(|p| compile_node(table, p)).collect())
        }
        FilterExpr::Or(parts) => {
            CompiledNode::Or(parts.iter().map(|p| compile_node(table, p)).collect())
        }
        FilterExpr::Not(inner) => CompiledNode::Not(Box::new(compile_node(table, inner))),
    }
}

/// Pre-evaluates a string predicate against every dictionary entry.
fn str_codes(column: &Column, pred: impl Fn(&str) -> bool) -> Vec<bool> {
    column.dict().iter().map(|s| pred(s)).collect()
}

fn compile_pred(table: &Table, p: &Predicate) -> CompiledPred {
    let col = table
        .schema()
        .index_of(p.column())
        .unwrap_or_else(|| panic!("unbound column {} in compiled filter", p.column()));
    let column = table.column(col);
    let dtype = column.dtype();
    match p {
        Predicate::Cmp { op, value, .. } => match (dtype, value) {
            (DataType::Int, Value::Int(v)) => CompiledPred::IntCmp {
                col,
                op: *op,
                v: *v,
            },
            (DataType::Int, Value::Float(v)) => CompiledPred::IntCmpF {
                col,
                op: *op,
                v: *v,
            },
            (DataType::Float, v) => match v.as_float() {
                Some(f) => CompiledPred::FloatCmp { col, op: *op, v: f },
                None => CompiledPred::Never,
            },
            (DataType::Str, Value::Str(s)) => {
                let op = *op;
                let s = s.clone();
                CompiledPred::StrCodes {
                    col,
                    codes: str_codes(column, |d| op.eval(d.cmp(s.as_str()))),
                }
            }
            _ => CompiledPred::Never,
        },
        Predicate::Between { lo, hi, .. } => match dtype {
            DataType::Int => match (lo, hi) {
                (Value::Int(a), Value::Int(b)) => CompiledPred::IntBetween {
                    col,
                    lo: *a,
                    hi: *b,
                },
                _ => match (lo.as_float(), hi.as_float()) {
                    (Some(a), Some(b)) => {
                        // Integer column, float bounds: tighten to ints.
                        CompiledPred::IntBetween {
                            col,
                            lo: a.ceil() as i64,
                            hi: b.floor() as i64,
                        }
                    }
                    _ => CompiledPred::Never,
                },
            },
            DataType::Float => match (lo.as_float(), hi.as_float()) {
                (Some(a), Some(b)) => CompiledPred::FloatBetween { col, lo: a, hi: b },
                _ => CompiledPred::Never,
            },
            DataType::Str => match (lo, hi) {
                (Value::Str(a), Value::Str(b)) => {
                    let (a, b) = (a.clone(), b.clone());
                    CompiledPred::StrCodes {
                        col,
                        codes: str_codes(column, |d| d >= a.as_str() && d <= b.as_str()),
                    }
                }
                _ => CompiledPred::Never,
            },
        },
        Predicate::InList { values, .. } => match dtype {
            DataType::Int => {
                let set: HashSet<i64> = values.iter().filter_map(Value::as_int).collect();
                CompiledPred::IntIn { col, set }
            }
            DataType::Str => {
                let wanted: HashSet<&str> = values.iter().filter_map(Value::as_str).collect();
                CompiledPred::StrCodes {
                    col,
                    codes: str_codes(column, |d| wanted.contains(d)),
                }
            }
            DataType::Float => CompiledPred::Never,
        },
        Predicate::Like {
            pattern, negated, ..
        } => match dtype {
            DataType::Str => {
                let (pat, neg) = (pattern.clone(), *negated);
                CompiledPred::StrCodes {
                    col,
                    codes: str_codes(column, |d| like_match(&pat, d) != neg),
                }
            }
            _ => CompiledPred::Never,
        },
        Predicate::IsNull { negated, .. } => CompiledPred::IsNull {
            col,
            negated: *negated,
        },
    }
}

impl CompiledFilter {
    /// Evaluates the filter for row `idx` of the table it was compiled for.
    #[inline]
    pub fn eval(&self, table: &Table, idx: usize) -> bool {
        eval_node(&self.root, table, idx)
    }
}

fn eval_node(node: &CompiledNode, table: &Table, idx: usize) -> bool {
    match node {
        CompiledNode::True => true,
        CompiledNode::Pred(p) => eval_pred(p, table, idx),
        CompiledNode::And(parts) => parts.iter().all(|n| eval_node(n, table, idx)),
        CompiledNode::Or(parts) => parts.iter().any(|n| eval_node(n, table, idx)),
        CompiledNode::Not(inner) => !eval_node(inner, table, idx),
    }
}

#[inline]
fn eval_pred(p: &CompiledPred, table: &Table, idx: usize) -> bool {
    match p {
        CompiledPred::IntCmp { col, op, v } => {
            let c = table.column(*col);
            !c.is_null(idx) && op.eval(c.ints()[idx].cmp(v))
        }
        CompiledPred::IntCmpF { col, op, v } => {
            let c = table.column(*col);
            !c.is_null(idx)
                && (c.ints()[idx] as f64)
                    .partial_cmp(v)
                    .is_some_and(|ord| op.eval(ord))
        }
        CompiledPred::FloatCmp { col, op, v } => {
            let c = table.column(*col);
            !c.is_null(idx)
                && c.floats()[idx]
                    .partial_cmp(v)
                    .is_some_and(|ord| op.eval(ord))
        }
        CompiledPred::IntBetween { col, lo, hi } => {
            let c = table.column(*col);
            !c.is_null(idx) && {
                let v = c.ints()[idx];
                v >= *lo && v <= *hi
            }
        }
        CompiledPred::FloatBetween { col, lo, hi } => {
            let c = table.column(*col);
            !c.is_null(idx) && {
                let v = c.floats()[idx];
                v >= *lo && v <= *hi
            }
        }
        CompiledPred::IntIn { col, set } => {
            let c = table.column(*col);
            !c.is_null(idx) && set.contains(&c.ints()[idx])
        }
        CompiledPred::StrCodes { col, codes } => {
            let c = table.column(*col);
            !c.is_null(idx) && codes[c.codes()[idx] as usize]
        }
        CompiledPred::IsNull { col, negated } => table.column(*col).is_null(idx) != *negated,
        CompiledPred::Never => false,
    }
}

/// Returns the indices of rows matching `expr`.
pub fn filtered_selection(table: &Table, expr: &FilterExpr) -> Vec<u32> {
    let compiled = compile_filter(table, expr);
    let mut out = Vec::new();
    for i in 0..table.nrows() {
        if compiled.eval(table, i) {
            out.push(i as u32);
        }
    }
    out
}

/// Counts rows matching `expr` without materializing the selection.
pub fn filtered_count(table: &Table, expr: &FilterExpr) -> u64 {
    let compiled = compile_filter(table, expr);
    let mut n = 0u64;
    for i in 0..table.nrows() {
        if compiled.eval(table, i) {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_storage::{ColumnDef, TableSchema};

    fn table() -> Table {
        let schema = TableSchema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("f", DataType::Float),
            ColumnDef::new("s", DataType::Str),
        ]);
        let rows = vec![
            vec![
                Value::Int(1),
                Value::Float(0.5),
                Value::Str("apple pie".into()),
            ],
            vec![
                Value::Int(5),
                Value::Float(2.5),
                Value::Str("banana".into()),
            ],
            vec![
                Value::Null,
                Value::Float(-1.0),
                Value::Str("apple tart".into()),
            ],
            vec![Value::Int(10), Value::Null, Value::Null],
            vec![
                Value::Int(5),
                Value::Float(9.0),
                Value::Str("cherry".into()),
            ],
        ];
        Table::from_rows("t", schema, &rows).unwrap()
    }

    /// Cross-check against the reference row-at-a-time evaluator in fj-query.
    fn reference(table: &Table, expr: &FilterExpr) -> Vec<u32> {
        (0..table.nrows())
            .filter(|&i| expr.eval(&|col: &str| table.column_by_name(col).unwrap().get(i)))
            .map(|i| i as u32)
            .collect()
    }

    fn check(expr: FilterExpr) {
        let t = table();
        assert_eq!(
            filtered_selection(&t, &expr),
            reference(&t, &expr),
            "expr {expr}"
        );
    }

    #[test]
    fn int_comparisons_match_reference() {
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            check(FilterExpr::pred(Predicate::cmp("a", op, 5)));
        }
    }

    #[test]
    fn float_and_widened_comparisons() {
        check(FilterExpr::pred(Predicate::cmp("f", CmpOp::Gt, 0)));
        check(FilterExpr::pred(Predicate::cmp("f", CmpOp::Le, 2.5)));
        check(FilterExpr::pred(Predicate::cmp("a", CmpOp::Gt, 4.5)));
    }

    #[test]
    fn between_in_like() {
        check(FilterExpr::pred(Predicate::between("a", 2, 9)));
        check(FilterExpr::pred(Predicate::in_list(
            "a",
            vec![Value::Int(1), Value::Int(10)],
        )));
        check(FilterExpr::pred(Predicate::like("s", "%apple%")));
        check(FilterExpr::pred(Predicate::Like {
            column: "s".into(),
            pattern: "%apple%".into(),
            negated: true,
        }));
    }

    #[test]
    fn null_tests_and_boolean_composition() {
        check(FilterExpr::pred(Predicate::IsNull {
            column: "a".into(),
            negated: false,
        }));
        check(FilterExpr::pred(Predicate::IsNull {
            column: "s".into(),
            negated: true,
        }));
        check(FilterExpr::and(vec![
            FilterExpr::pred(Predicate::cmp("a", CmpOp::Ge, 1)),
            FilterExpr::or(vec![
                FilterExpr::pred(Predicate::like("s", "%an%")),
                FilterExpr::pred(Predicate::cmp("f", CmpOp::Gt, 5)),
            ]),
        ]));
        check(FilterExpr::Not(Box::new(FilterExpr::pred(Predicate::eq(
            "a", 5,
        )))));
    }

    #[test]
    fn string_equality_and_order() {
        check(FilterExpr::pred(Predicate::eq("s", "banana")));
        check(FilterExpr::pred(Predicate::cmp("s", CmpOp::Lt, "banana")));
        // Literal absent from the dictionary still works (matches nothing).
        check(FilterExpr::pred(Predicate::eq("s", "zzz")));
    }

    #[test]
    fn filtered_count_matches_selection_len() {
        let t = table();
        let e = FilterExpr::pred(Predicate::cmp("a", CmpOp::Ge, 1));
        assert_eq!(
            filtered_count(&t, &e),
            filtered_selection(&t, &e).len() as u64
        );
    }

    #[test]
    fn trivial_filter_selects_everything() {
        let t = table();
        assert_eq!(filtered_count(&t, &FilterExpr::True), t.nrows() as u64);
    }

    #[test]
    fn type_mismatch_matches_nothing() {
        // Comparing a string column to an int is statically Never.
        check(FilterExpr::pred(Predicate::eq("s", 5)));
        check(FilterExpr::pred(Predicate::like("a", "%1%")));
    }
}
