//! Connected sub-plan enumeration.
//!
//! A cost-based optimizer asks the cardinality estimator for every
//! *connected* sub-plan of a query (paper §5.2: "hundreds or thousands of
//! sub-plan queries"). We enumerate connected alias subsets as bitmasks,
//! smallest first, using the standard expand-from-seed technique that avoids
//! duplicates by only growing a set from its lowest-index member's
//! "allowed" frontier.

use crate::query::Query;

/// A sub-plan identified by an alias bitmask (bit i ⇔ alias i included).
pub type SubplanMask = u64;

/// Enumerates all connected sub-plans of `query` with ≥ `min_size` aliases,
/// ordered by popcount then numeric mask.
///
/// The enumeration is exponential in the worst case (as is the quantity
/// itself); queries in the benchmarks have ≤ 17 aliases and tree-ish shapes,
/// matching the paper's 1–10⁴ sub-plans per query.
pub fn connected_subplans(query: &Query, min_size: u32) -> Vec<SubplanMask> {
    let mut out = Vec::new();
    connected_subplans_into(query, min_size, &mut out);
    out
}

/// [`connected_subplans`] into a caller-owned buffer (cleared first), so
/// per-query enumeration on hot estimation paths reuses its allocation.
///
/// The adjacency scratch is a fixed 64-entry stack array (queries are
/// validated to at most 64 aliases), so the only heap the enumeration can
/// touch is `out` itself.
pub fn connected_subplans_into(query: &Query, min_size: u32, out: &mut Vec<SubplanMask>) {
    let n = query.num_tables();
    assert!(n <= 64, "query validated to at most 64 aliases");
    let mut adj = [0u64; 64];
    for j in query.joins() {
        adj[j.left.alias] |= 1u64 << j.right.alias;
        adj[j.right.alias] |= 1u64 << j.left.alias;
    }
    out.clear();
    // Standard "EnumerateCsg" (Moerkotte & Neumann): seeds descend so each
    // connected set is produced exactly once.
    for seed in (0..n).rev() {
        let seed_mask = 1u64 << seed;
        // Exclude all aliases with index < seed from expansion.
        let forbidden = seed_mask - 1;
        emit_and_expand(seed_mask, forbidden, &adj[..n], out);
    }
    out.retain(|m| m.count_ones() >= min_size);
    out.sort_by_key(|m| (m.count_ones(), *m));
}

fn neighborhood(set: u64, adj: &[u64]) -> u64 {
    let mut nb = 0u64;
    let mut rest = set;
    while rest != 0 {
        let i = rest.trailing_zeros() as usize;
        nb |= adj[i];
        rest &= rest - 1;
    }
    nb & !set
}

fn emit_and_expand(set: u64, forbidden: u64, adj: &[u64], out: &mut Vec<SubplanMask>) {
    out.push(set);
    let frontier = neighborhood(set, adj) & !forbidden;
    // Enumerate non-empty subsets of the frontier; recurse with the whole
    // frontier forbidden so deeper levels cannot re-add skipped nodes.
    let mut sub = frontier;
    while sub != 0 {
        emit_and_expand(set | sub, forbidden | frontier, adj, out);
        sub = (sub - 1) & frontier;
    }
}

/// Number of connected sub-plans (convenience for workload statistics).
pub fn count_subplans(query: &Query, min_size: u32) -> usize {
    connected_subplans(query, min_size).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::FilterExpr;
    use crate::query::TableRef;
    use fj_storage::{Catalog, ColumnDef, Table, TableSchema, Value};

    fn catalog(n: usize) -> Catalog {
        let mut cat = Catalog::new();
        for i in 0..n {
            let schema = TableSchema::new(vec![ColumnDef::key("id"), ColumnDef::key("fk")]);
            cat.add_table(
                Table::from_rows(
                    &format!("t{i}"),
                    schema,
                    &[vec![Value::Int(0), Value::Int(0)]],
                )
                .unwrap(),
            )
            .unwrap();
        }
        cat
    }

    fn chain_query(cat: &Catalog, n: usize) -> Query {
        let tables: Vec<TableRef> = (0..n)
            .map(|i| TableRef::new(&format!("t{i}"), &format!("t{i}")))
            .collect();
        let joins: Vec<((String, String), (String, String))> = (1..n)
            .map(|i| {
                (
                    (format!("t{}", i - 1), "id".to_string()),
                    (format!("t{i}"), "fk".to_string()),
                )
            })
            .collect();
        Query::new(cat, tables, &joins, vec![FilterExpr::True; n]).unwrap()
    }

    fn star_query(cat: &Catalog, n: usize) -> Query {
        let tables: Vec<TableRef> = (0..n)
            .map(|i| TableRef::new(&format!("t{i}"), &format!("t{i}")))
            .collect();
        let joins: Vec<((String, String), (String, String))> = (1..n)
            .map(|i| {
                (
                    ("t0".to_string(), "id".to_string()),
                    (format!("t{i}"), "fk".to_string()),
                )
            })
            .collect();
        Query::new(cat, tables, &joins, vec![FilterExpr::True; n]).unwrap()
    }

    #[test]
    fn chain_counts_are_triangular() {
        // A chain of n nodes has n·(n+1)/2 connected subsets (contiguous runs).
        for n in 2..=6 {
            let cat = catalog(n);
            let q = chain_query(&cat, n);
            let subs = connected_subplans(&q, 1);
            assert_eq!(subs.len(), n * (n + 1) / 2, "chain n={n}");
        }
    }

    #[test]
    fn star_counts() {
        // A star with hub + (n-1) leaves: connected subsets are any subset
        // containing the hub (2^(n-1)) plus each singleton leaf.
        for n in 2..=6 {
            let cat = catalog(n);
            let q = star_query(&cat, n);
            let subs = connected_subplans(&q, 1);
            assert_eq!(subs.len(), (1 << (n - 1)) + (n - 1), "star n={n}");
        }
    }

    #[test]
    fn no_duplicates_and_all_connected() {
        let cat = catalog(5);
        let q = chain_query(&cat, 5);
        let subs = connected_subplans(&q, 1);
        let mut dedup = subs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), subs.len(), "no duplicate masks");
        for &m in &subs {
            let (sub, _) = q.project(m);
            assert!(sub.is_connected(), "mask {m:b} must be connected");
        }
    }

    #[test]
    fn min_size_filters_singletons() {
        let cat = catalog(4);
        let q = chain_query(&cat, 4);
        let subs = connected_subplans(&q, 2);
        assert!(subs.iter().all(|m| m.count_ones() >= 2));
        // 4·5/2 = 10 total, minus 4 singletons = 6.
        assert_eq!(subs.len(), 6);
    }

    #[test]
    fn ordering_is_by_size() {
        let cat = catalog(4);
        let q = chain_query(&cat, 4);
        let subs = connected_subplans(&q, 1);
        for w in subs.windows(2) {
            assert!(w[0].count_ones() <= w[1].count_ones());
        }
        // The full query is last.
        assert_eq!(*subs.last().unwrap(), 0b1111);
    }

    #[test]
    fn cycle_enumeration() {
        // Triangle: every non-empty subset is connected except none — all
        // 2^3 - 1 = 7 subsets connected (each pair is adjacent).
        let mut cat = Catalog::new();
        for name in ["x", "y", "z"] {
            let schema = TableSchema::new(vec![ColumnDef::key("id"), ColumnDef::key("fk")]);
            cat.add_table(
                Table::from_rows(name, schema, &[vec![Value::Int(0), Value::Int(0)]]).unwrap(),
            )
            .unwrap();
        }
        let q = Query::new(
            &cat,
            vec![
                TableRef::new("x", "x"),
                TableRef::new("y", "y"),
                TableRef::new("z", "z"),
            ],
            &[
                (("x".into(), "id".into()), ("y".into(), "fk".into())),
                (("y".into(), "id".into()), ("z".into(), "fk".into())),
                (("z".into(), "id".into()), ("x".into(), "fk".into())),
            ],
            vec![FilterExpr::True; 3],
        )
        .unwrap();
        assert_eq!(connected_subplans(&q, 1).len(), 7);
    }
}
