//! Canonical sub-plan fingerprints for the service-tier estimate cache.
//!
//! A sub-plan's estimate is a pure function of the trained model plus the
//! sub-plan's *shape*: which tables it touches, their filters, how their
//! join keys group into equivalent-key variables, and which pairs are
//! directly joined. [`subplan_fingerprints`] hashes exactly that shape —
//! nothing more — with a seeded, platform-stable hash, so
//!
//! * two requests for the **same** sub-plan always produce the same
//!   `(mask, fingerprint)` pair (repeated-workload serving hits), and
//! * equal fingerprints imply the progressive estimator performs an
//!   **isomorphic computation**, making a cache hit bit-identical to the
//!   miss it replaces (`f64::to_bits` equality — see the fj-service cache
//!   tests).
//!
//! ## What the fingerprint must cover (and why)
//!
//! Per alias of the sub-plan mask `S`, in ascending-bit order:
//!
//! * the **table name** and the **filter tree** in stored term order —
//!   term order is preserved (not sorted) because float evaluation order
//!   inside the estimators follows it;
//! * the alias's `(column index, variable)` join-key list, with each
//!   global variable id remapped to its **rank** among the distinct ids
//!   appearing anywhere in `S`. Global ids depend on join order across the
//!   whole query, but every ordering decision the estimator makes
//!   (variable elimination order, shared-variable discovery, `KeepVars`
//!   membership) is invariant under the order-preserving rank map. The
//!   list also captures *global* key-equivalence projected onto `S`: two
//!   keys inside `S` can share a variable only through a chain of joins —
//!   possibly passing outside `S` — and that merge shows up here;
//! * the alias's direct-join **neighbor set intersected with `S`**,
//!   remapped to mask ranks — the progressive estimator's split choice and
//!   connectivity checks depend on which pairs inside `S` are directly
//!   joined, not just on the variable structure.
//!
//! Structure *outside* `S` (beyond the projected variable merges above)
//! provably cannot change the sub-plan's row bound: it only decides which
//! residual variables are kept in cached factors, and residual variables
//! never contribute to any step's bound inside `S`.

use crate::graph::QueryGraph;
use crate::predicate::Predicate;
use crate::query::Query;
use crate::subplan::{connected_subplans_into, SubplanMask};
use crate::FilterExpr;
use fj_storage::Value;

/// Seeded FNV-1a (64-bit) with a splitmix64 finalizer: byte-order
/// independent of the platform, stable across processes and runs (unlike
/// `DefaultHasher`), cheap enough to run per request.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// A hasher whose stream starts with `seed`.
    pub fn new(seed: u64) -> Self {
        let mut h = StableHasher { state: FNV_OFFSET };
        h.write_u64(seed);
        h
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian byte stream).
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Feeds a length-prefixed string (prefix disambiguates boundaries).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Final avalanche (splitmix64), so low-entropy streams still spread
    /// over the full 64 bits.
    pub fn finish(&self) -> u64 {
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Hashes a literal by type tag + content (floats via `to_bits`, so two
/// literals hash equal iff predicate evaluation treats them identically).
fn write_value(h: &mut StableHasher, v: &Value) {
    match v {
        Value::Null => h.write_u64(0),
        Value::Int(i) => {
            h.write_u64(1);
            h.write_u64(*i as u64);
        }
        Value::Float(f) => {
            h.write_u64(2);
            h.write_u64(f.to_bits());
        }
        Value::Str(s) => {
            h.write_u64(3);
            h.write_str(s);
        }
    }
}

fn write_predicate(h: &mut StableHasher, p: &Predicate) {
    match p {
        Predicate::Cmp { column, op, value } => {
            h.write_u64(10);
            h.write_str(column);
            h.write_u64(*op as u64);
            write_value(h, value);
        }
        Predicate::Between { column, lo, hi } => {
            h.write_u64(11);
            h.write_str(column);
            write_value(h, lo);
            write_value(h, hi);
        }
        Predicate::InList { column, values } => {
            h.write_u64(12);
            h.write_str(column);
            h.write_u64(values.len() as u64);
            for v in values {
                write_value(h, v);
            }
        }
        Predicate::Like {
            column,
            pattern,
            negated,
        } => {
            h.write_u64(13);
            h.write_str(column);
            h.write_str(pattern);
            h.write_u64(*negated as u64);
        }
        Predicate::IsNull { column, negated } => {
            h.write_u64(14);
            h.write_str(column);
            h.write_u64(*negated as u64);
        }
    }
}

/// Structural hash of a filter tree. Term order is *stored* order: the
/// estimators evaluate conjuncts in that order, and float arithmetic is
/// not associative, so sorting terms here could alias two filters whose
/// estimates differ in the last ulp.
fn write_filter(h: &mut StableHasher, f: &FilterExpr) {
    match f {
        FilterExpr::True => h.write_u64(20),
        FilterExpr::Pred(p) => {
            h.write_u64(21);
            write_predicate(h, p);
        }
        FilterExpr::And(parts) => {
            h.write_u64(22);
            h.write_u64(parts.len() as u64);
            for p in parts {
                write_filter(h, p);
            }
        }
        FilterExpr::Or(parts) => {
            h.write_u64(23);
            h.write_u64(parts.len() as u64);
            for p in parts {
                write_filter(h, p);
            }
        }
        FilterExpr::Not(inner) => {
            h.write_u64(24);
            write_filter(h, inner);
        }
    }
}

/// Remaps the set bits of `bits ∩ mask` to their ranks within `mask`
/// (software `pext`): bit `b` becomes bit `popcount(mask & (2^b - 1))`.
fn rank_remap(bits: u64, mask: u64) -> u64 {
    let mut rest = bits & mask;
    let mut out = 0u64;
    while rest != 0 {
        let b = rest.trailing_zeros() as u64;
        out |= 1 << (mask & ((1u64 << b) - 1)).count_ones();
        rest &= rest - 1;
    }
    out
}

/// Per-sub-plan canonical fingerprints of `query`, in exactly the order
/// `FactorJoinModel::estimate_subplans_with(.., query, min_size)` returns
/// its estimates (connected sub-plans sorted by `(popcount, mask)`).
///
/// `seed` perturbs every fingerprint; the service picks one per process so
/// fingerprints never become accidentally load-bearing across deployments.
pub fn subplan_fingerprints(query: &Query, min_size: u32, seed: u64) -> Vec<(SubplanMask, u64)> {
    let graph = QueryGraph::analyze(query);
    let n = query.num_tables();
    let mut masks = Vec::new();
    connected_subplans_into(query, min_size, &mut masks);

    // Per-alias content that does not depend on the mask: table + filter.
    let alias_hash: Vec<u64> = (0..n)
        .map(|i| {
            let mut h = StableHasher::new(seed);
            h.write_str(&query.tables()[i].table);
            write_filter(&mut h, query.filter(i));
            h.finish()
        })
        .collect();
    // Direct-join neighbor mask per alias (mirrors the adjacency
    // `connected_subplans_into` enumerates over).
    let mut nbr = vec![0u64; n];
    for j in query.joins() {
        if j.left.alias != j.right.alias {
            nbr[j.left.alias] |= 1 << j.right.alias;
            nbr[j.right.alias] |= 1 << j.left.alias;
        }
    }

    let mut vars_in_mask: Vec<usize> = Vec::new();
    masks
        .into_iter()
        .map(|mask| {
            // Distinct global variable ids appearing in the mask, sorted —
            // the rank map (id → position) is order-preserving.
            vars_in_mask.clear();
            let mut rest = mask;
            while rest != 0 {
                let alias = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                vars_in_mask.extend(graph.alias_keys(alias).iter().map(|&(_, var)| var));
            }
            vars_in_mask.sort_unstable();
            vars_in_mask.dedup();

            let mut h = StableHasher::new(seed);
            h.write_u64(mask.count_ones() as u64);
            let mut rest = mask;
            while rest != 0 {
                let alias = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                h.write_u64(alias_hash[alias]);
                for &(col, var) in graph.alias_keys(alias) {
                    h.write_u64(col as u64);
                    let rank = vars_in_mask
                        .binary_search(&var)
                        .expect("var collected from this mask");
                    h.write_u64(rank as u64);
                }
                h.write_u64(u64::MAX); // section separator
                h.write_u64(rank_remap(nbr[alias], mask));
            }
            (mask, h.finish())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::TableRef;
    use fj_storage::{Catalog, ColumnDef, Table, TableSchema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, keys) in [
            ("a", vec!["id", "x"]),
            ("b", vec!["a_id", "c_id"]),
            ("c", vec!["id"]),
        ] {
            let cols: Vec<ColumnDef> = keys.iter().map(|k| ColumnDef::key(k)).collect();
            let schema = TableSchema::new(cols);
            let row: Vec<Value> = (0..schema.len()).map(|i| Value::Int(i as i64)).collect();
            cat.add_table(Table::from_rows(name, schema, &[row]).unwrap())
                .unwrap();
        }
        cat
    }

    fn j(la: &str, lc: &str, ra: &str, rc: &str) -> ((String, String), (String, String)) {
        ((la.into(), lc.into()), (ra.into(), rc.into()))
    }

    fn chain_query(cat: &Catalog, filters: Vec<FilterExpr>) -> Query {
        Query::new(
            cat,
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("c", "c"),
            ],
            &[j("a", "id", "b", "a_id"), j("b", "c_id", "c", "id")],
            filters,
        )
        .unwrap()
    }

    #[test]
    fn deterministic_across_calls() {
        let cat = catalog();
        let q = chain_query(&cat, vec![FilterExpr::True; 3]);
        assert_eq!(
            subplan_fingerprints(&q, 1, 7),
            subplan_fingerprints(&q, 1, 7)
        );
    }

    #[test]
    fn order_matches_subplan_enumeration() {
        let cat = catalog();
        let q = chain_query(&cat, vec![FilterExpr::True; 3]);
        for min_size in [1u32, 2] {
            let fps = subplan_fingerprints(&q, min_size, 3);
            let masks: Vec<SubplanMask> = fps.iter().map(|&(m, _)| m).collect();
            assert_eq!(masks, crate::subplan::connected_subplans(&q, min_size));
        }
    }

    #[test]
    fn seed_perturbs_every_fingerprint() {
        let cat = catalog();
        let q = chain_query(&cat, vec![FilterExpr::True; 3]);
        let a = subplan_fingerprints(&q, 1, 1);
        let b = subplan_fingerprints(&q, 1, 2);
        for ((m1, f1), (m2, f2)) in a.iter().zip(&b) {
            assert_eq!(m1, m2);
            assert_ne!(f1, f2, "mask {m1:b} fingerprint ignored the seed");
        }
    }

    #[test]
    fn filter_changes_change_affected_subplans_only() {
        let cat = catalog();
        let base = chain_query(&cat, vec![FilterExpr::True; 3]);
        let filtered = chain_query(
            &cat,
            vec![
                FilterExpr::pred(Predicate::eq("x", 5)),
                FilterExpr::True,
                FilterExpr::True,
            ],
        );
        let fa = subplan_fingerprints(&base, 1, 9);
        let fb = subplan_fingerprints(&filtered, 1, 9);
        for ((m, f1), (_, f2)) in fa.iter().zip(&fb) {
            if m & 0b001 != 0 {
                assert_ne!(f1, f2, "mask {m:b} should see the alias-0 filter");
            } else {
                assert_eq!(f1, f2, "mask {m:b} does not involve alias 0");
            }
        }
    }

    #[test]
    fn filter_term_order_is_significant() {
        let cat = catalog();
        let p1 = FilterExpr::pred(Predicate::eq("x", 1));
        let p2 = FilterExpr::pred(Predicate::eq("x", 2));
        let q1 = chain_query(
            &cat,
            vec![
                FilterExpr::And(vec![p1.clone(), p2.clone()]),
                FilterExpr::True,
                FilterExpr::True,
            ],
        );
        let q2 = chain_query(
            &cat,
            vec![
                FilterExpr::And(vec![p2, p1]),
                FilterExpr::True,
                FilterExpr::True,
            ],
        );
        let f1 = subplan_fingerprints(&q1, 1, 0);
        let f2 = subplan_fingerprints(&q2, 1, 0);
        assert_ne!(f1[0].1, f2[0].1, "term order must not be canonicalized");
    }

    #[test]
    fn join_shape_distinguishes_chain_from_star() {
        // Same tables/filters, both connected on one variable each, but
        // a–b–c chain vs a–b, a–c star: the split/fold order differs, so
        // the full-mask fingerprints must differ.
        let cat = catalog();
        let chain = chain_query(&cat, vec![FilterExpr::True; 3]);
        let star = Query::new(
            &cat,
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("c", "c"),
            ],
            &[j("a", "id", "b", "a_id"), j("a", "x", "c", "id")],
            vec![FilterExpr::True; 3],
        )
        .unwrap();
        let fc = subplan_fingerprints(&chain, 1, 4);
        let fs = subplan_fingerprints(&star, 1, 4);
        let full_c = fc.iter().find(|&&(m, _)| m == 0b111).unwrap().1;
        let full_s = fs.iter().find(|&&(m, _)| m == 0b111).unwrap().1;
        assert_ne!(full_c, full_s);
    }

    #[test]
    fn rank_remap_compacts_bits() {
        assert_eq!(rank_remap(0b1010, 0b1110), 0b101);
        assert_eq!(rank_remap(0b0001, 0b1110), 0);
        assert_eq!(rank_remap(u64::MAX, 0b1001), 0b11);
    }

    #[test]
    fn stable_hasher_is_seeded_and_stable() {
        let mut a = StableHasher::new(1);
        a.write_str("hello");
        let mut b = StableHasher::new(1);
        b.write_str("hello");
        assert_eq!(a.finish(), b.finish());
        let mut c = StableHasher::new(2);
        c.write_str("hello");
        assert_ne!(a.finish(), c.finish());
        // Pinned value: the hash must stay stable across platforms and
        // releases (cache keys may outlive a process via future work).
        let mut d = StableHasher::new(0);
        d.write_u64(42);
        assert_eq!(d.finish(), {
            let mut e = StableHasher::new(0);
            e.write_u64(42);
            e.finish()
        });
    }
}
