//! Boolean filter expressions: AND/OR/NOT trees over [`Predicate`]s.

use crate::predicate::Predicate;
use fj_storage::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A boolean combination of predicates on a single table alias.
///
/// FactorJoin explicitly supports disjunctive filter clauses (paper §1),
/// which the learned data-driven baselines cannot handle; keeping full
/// AND/OR/NOT trees in the IR lets the sampling-based single-table
/// estimator support them while the Bayesian-network estimator can reject
/// shapes it cannot evaluate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FilterExpr {
    /// No filter — matches every row.
    True,
    /// An atomic predicate.
    Pred(Predicate),
    /// Conjunction; empty conjunction is `True`.
    And(Vec<FilterExpr>),
    /// Disjunction; empty disjunction is `False` (matches nothing).
    Or(Vec<FilterExpr>),
    /// Negation.
    Not(Box<FilterExpr>),
}

impl FilterExpr {
    /// Builds a conjunction, flattening nested ANDs and dropping `True`s.
    pub fn and(parts: Vec<FilterExpr>) -> FilterExpr {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                FilterExpr::True => {}
                FilterExpr::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => FilterExpr::True,
            1 => flat.pop().expect("len checked"),
            _ => FilterExpr::And(flat),
        }
    }

    /// Builds a disjunction, flattening nested ORs.
    pub fn or(parts: Vec<FilterExpr>) -> FilterExpr {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                FilterExpr::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.iter().any(|e| matches!(e, FilterExpr::True)) {
            return FilterExpr::True;
        }
        match flat.len() {
            1 => flat.pop().expect("len checked"),
            _ => FilterExpr::Or(flat),
        }
    }

    /// Wraps a predicate.
    pub fn pred(p: Predicate) -> FilterExpr {
        FilterExpr::Pred(p)
    }

    /// True when the filter matches all rows.
    pub fn is_trivial(&self) -> bool {
        matches!(self, FilterExpr::True)
    }

    /// Evaluates the filter against a row accessor: `get(column) -> Value`.
    ///
    /// Unknown (NULL-involved) atoms evaluate to false before negation, which
    /// matches filter semantics in the executors we compare against closely
    /// enough for cardinality work.
    pub fn eval<F>(&self, get: &F) -> bool
    where
        F: Fn(&str) -> Value,
    {
        match self {
            FilterExpr::True => true,
            FilterExpr::Pred(p) => p.eval(&get(p.column())),
            FilterExpr::And(parts) => parts.iter().all(|e| e.eval(get)),
            FilterExpr::Or(parts) => parts.iter().any(|e| e.eval(get)),
            FilterExpr::Not(inner) => !inner.eval(get),
        }
    }

    /// All column names referenced, deduplicated, in first-reference order.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            FilterExpr::True => {}
            FilterExpr::Pred(p) => {
                if !out.iter().any(|c| c == p.column()) {
                    out.push(p.column().to_string());
                }
            }
            FilterExpr::And(parts) | FilterExpr::Or(parts) => {
                for p in parts {
                    p.collect_columns(out);
                }
            }
            FilterExpr::Not(inner) => inner.collect_columns(out),
        }
    }

    /// All atomic predicates in the tree, in-order.
    pub fn predicates(&self) -> Vec<&Predicate> {
        let mut out = Vec::new();
        self.collect_preds(&mut out);
        out
    }

    fn collect_preds<'a>(&'a self, out: &mut Vec<&'a Predicate>) {
        match self {
            FilterExpr::True => {}
            FilterExpr::Pred(p) => out.push(p),
            FilterExpr::And(parts) | FilterExpr::Or(parts) => {
                for p in parts {
                    p.collect_preds(out);
                }
            }
            FilterExpr::Not(inner) => inner.collect_preds(out),
        }
    }

    /// True when the expression is a pure conjunction of atomic predicates
    /// (no OR/NOT) — the shape the Bayesian-network estimator handles natively.
    pub fn is_conjunctive(&self) -> bool {
        match self {
            FilterExpr::True | FilterExpr::Pred(_) => true,
            FilterExpr::And(parts) => parts.iter().all(FilterExpr::is_conjunctive),
            FilterExpr::Or(_) | FilterExpr::Not(_) => false,
        }
    }

    /// Number of atomic predicates.
    pub fn num_predicates(&self) -> usize {
        self.predicates().len()
    }

    /// Renders the expression as SQL, with `alias.` prefixed to each column.
    pub fn to_sql(&self, alias: &str) -> String {
        match self {
            FilterExpr::True => "TRUE".to_string(),
            FilterExpr::Pred(p) => {
                let s = p.to_string();
                format!("{alias}.{s}")
            }
            FilterExpr::And(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| p.to_sql_paren(alias)).collect();
                inner.join(" AND ")
            }
            FilterExpr::Or(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| p.to_sql_paren(alias)).collect();
                inner.join(" OR ")
            }
            FilterExpr::Not(inner) => format!("NOT {}", inner.to_sql_paren(alias)),
        }
    }

    fn to_sql_paren(&self, alias: &str) -> String {
        match self {
            FilterExpr::And(_) | FilterExpr::Or(_) => format!("({})", self.to_sql(alias)),
            _ => self.to_sql(alias),
        }
    }
}

impl fmt::Display for FilterExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Display without alias prefix (columns as-is). Used in diagnostics.
        match self {
            FilterExpr::True => write!(f, "TRUE"),
            FilterExpr::Pred(p) => write!(f, "{p}"),
            FilterExpr::And(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", inner.join(" AND "))
            }
            FilterExpr::Or(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", inner.join(" OR "))
            }
            FilterExpr::Not(inner) => write!(f, "NOT ({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use std::collections::HashMap;

    fn row(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn getter(m: &HashMap<String, Value>) -> impl Fn(&str) -> Value + '_ {
        move |c: &str| m.get(c).cloned().unwrap_or(Value::Null)
    }

    #[test]
    fn and_or_evaluation() {
        let e = FilterExpr::and(vec![
            FilterExpr::pred(Predicate::cmp("a", CmpOp::Gt, 0)),
            FilterExpr::or(vec![
                FilterExpr::pred(Predicate::eq("b", 1)),
                FilterExpr::pred(Predicate::eq("b", 2)),
            ]),
        ]);
        let r1 = row(&[("a", Value::Int(5)), ("b", Value::Int(2))]);
        let r2 = row(&[("a", Value::Int(5)), ("b", Value::Int(3))]);
        let r3 = row(&[("a", Value::Int(-1)), ("b", Value::Int(1))]);
        assert!(e.eval(&getter(&r1)));
        assert!(!e.eval(&getter(&r2)));
        assert!(!e.eval(&getter(&r3)));
    }

    #[test]
    fn and_flattens_and_drops_true() {
        let e = FilterExpr::and(vec![
            FilterExpr::True,
            FilterExpr::and(vec![
                FilterExpr::pred(Predicate::eq("a", 1)),
                FilterExpr::pred(Predicate::eq("b", 2)),
            ]),
        ]);
        match &e {
            FilterExpr::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected flat And, got {other:?}"),
        }
        assert_eq!(FilterExpr::and(vec![]), FilterExpr::True);
        assert_eq!(FilterExpr::and(vec![FilterExpr::True]), FilterExpr::True);
    }

    #[test]
    fn or_with_true_collapses() {
        let e = FilterExpr::or(vec![
            FilterExpr::True,
            FilterExpr::pred(Predicate::eq("a", 1)),
        ]);
        assert_eq!(e, FilterExpr::True);
        // Empty Or matches nothing.
        let empty = FilterExpr::Or(vec![]);
        let r = row(&[("a", Value::Int(1))]);
        assert!(!empty.eval(&getter(&r)));
    }

    #[test]
    fn not_inverts() {
        let e = FilterExpr::Not(Box::new(FilterExpr::pred(Predicate::eq("a", 1))));
        let hit = row(&[("a", Value::Int(1))]);
        let miss = row(&[("a", Value::Int(2))]);
        assert!(!e.eval(&getter(&hit)));
        assert!(e.eval(&getter(&miss)));
    }

    #[test]
    fn columns_deduplicated() {
        let e = FilterExpr::and(vec![
            FilterExpr::pred(Predicate::cmp("a", CmpOp::Gt, 0)),
            FilterExpr::pred(Predicate::cmp("a", CmpOp::Lt, 10)),
            FilterExpr::pred(Predicate::eq("b", 1)),
        ]);
        assert_eq!(e.columns(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(e.num_predicates(), 3);
    }

    #[test]
    fn conjunctive_detection() {
        let conj = FilterExpr::and(vec![
            FilterExpr::pred(Predicate::eq("a", 1)),
            FilterExpr::pred(Predicate::eq("b", 2)),
        ]);
        assert!(conj.is_conjunctive());
        let disj = FilterExpr::or(vec![
            FilterExpr::pred(Predicate::eq("a", 1)),
            FilterExpr::pred(Predicate::eq("b", 2)),
        ]);
        assert!(!disj.is_conjunctive());
        assert!(FilterExpr::True.is_conjunctive());
    }

    #[test]
    fn to_sql_renders_with_alias() {
        let e = FilterExpr::and(vec![
            FilterExpr::pred(Predicate::cmp("a", CmpOp::Gt, 0)),
            FilterExpr::or(vec![
                FilterExpr::pred(Predicate::eq("b", 1)),
                FilterExpr::pred(Predicate::eq("b", 2)),
            ]),
        ]);
        assert_eq!(e.to_sql("t"), "t.a > 0 AND (t.b = 1 OR t.b = 2)");
        assert_eq!(FilterExpr::True.to_sql("t"), "TRUE");
    }
}
