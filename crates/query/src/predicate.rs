//! Atomic filter predicates over a single column.

use fj_storage::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators for scalar predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Applies the operator to an ordering produced by `sql_cmp`.
    #[inline]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Neq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// An atomic predicate on one column of one table alias.
///
/// Column names are resolved against the alias's table schema at bind time;
/// the predicate itself stores only the column name, keeping the IR
/// independent of any particular catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `col <op> literal`
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `col BETWEEN lo AND hi` (inclusive both ends).
    Between {
        /// Column name.
        column: String,
        /// Lower bound (inclusive).
        lo: Value,
        /// Upper bound (inclusive).
        hi: Value,
    },
    /// `col IN (v1, v2, ...)`.
    InList {
        /// Column name.
        column: String,
        /// Allowed values.
        values: Vec<Value>,
    },
    /// `col [NOT] LIKE 'pattern'`.
    Like {
        /// Column name.
        column: String,
        /// LIKE pattern with `%`/`_` wildcards.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `col IS [NOT] NULL`.
    IsNull {
        /// Column name.
        column: String,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Predicate {
    /// Column the predicate constrains.
    pub fn column(&self) -> &str {
        match self {
            Predicate::Cmp { column, .. }
            | Predicate::Between { column, .. }
            | Predicate::InList { column, .. }
            | Predicate::Like { column, .. }
            | Predicate::IsNull { column, .. } => column,
        }
    }

    /// Evaluates the predicate on a single value (SQL three-valued logic
    /// collapsed to filter semantics: unknown ⇒ false).
    pub fn eval(&self, v: &Value) -> bool {
        match self {
            Predicate::Cmp { op, value, .. } => match v.sql_cmp(value) {
                Some(ord) => op.eval(ord),
                None => false,
            },
            Predicate::Between { lo, hi, .. } => {
                matches!(
                    v.sql_cmp(lo),
                    Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                ) && matches!(
                    v.sql_cmp(hi),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                )
            }
            Predicate::InList { values, .. } => values.iter().any(|x| v.sql_eq(x)),
            Predicate::Like {
                pattern, negated, ..
            } => match v.as_str() {
                Some(s) => crate::like::like_match(pattern, s) != *negated,
                None => false,
            },
            Predicate::IsNull { negated, .. } => v.is_null() != *negated,
        }
    }

    /// Convenience constructor: `col = value`.
    pub fn eq(column: &str, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience constructor: `col <op> value`.
    pub fn cmp(column: &str, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// Convenience constructor: `col BETWEEN lo AND hi`.
    pub fn between(column: &str, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Predicate::Between {
            column: column.into(),
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Convenience constructor: `col LIKE pattern`.
    pub fn like(column: &str, pattern: &str) -> Self {
        Predicate::Like {
            column: column.into(),
            pattern: pattern.into(),
            negated: false,
        }
    }

    /// Convenience constructor: `col IN (values…)`.
    pub fn in_list(column: &str, values: Vec<Value>) -> Self {
        Predicate::InList {
            column: column.into(),
            values,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { column, op, value } => write!(f, "{column} {} {value}", op.sql()),
            Predicate::Between { column, lo, hi } => {
                write!(f, "{column} BETWEEN {lo} AND {hi}")
            }
            Predicate::InList { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Predicate::Like {
                column,
                pattern,
                negated,
            } => {
                let not = if *negated { "NOT " } else { "" };
                write!(f, "{column} {not}LIKE '{}'", pattern.replace('\'', "''"))
            }
            Predicate::IsNull { column, negated } => {
                let not = if *negated { "NOT " } else { "" };
                write!(f, "{column} IS {not}NULL")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_matrix() {
        let five = Value::Int(5);
        assert!(Predicate::cmp("c", CmpOp::Eq, 5).eval(&five));
        assert!(!Predicate::cmp("c", CmpOp::Neq, 5).eval(&five));
        assert!(Predicate::cmp("c", CmpOp::Le, 5).eval(&five));
        assert!(Predicate::cmp("c", CmpOp::Ge, 5).eval(&five));
        assert!(!Predicate::cmp("c", CmpOp::Lt, 5).eval(&five));
        assert!(Predicate::cmp("c", CmpOp::Lt, 6).eval(&five));
        assert!(Predicate::cmp("c", CmpOp::Gt, 4).eval(&five));
    }

    #[test]
    fn null_never_satisfies_comparisons() {
        assert!(!Predicate::eq("c", 5).eval(&Value::Null));
        assert!(!Predicate::cmp("c", CmpOp::Neq, 5).eval(&Value::Null));
        assert!(!Predicate::between("c", 0, 10).eval(&Value::Null));
        assert!(!Predicate::in_list("c", vec![Value::Null]).eval(&Value::Null));
    }

    #[test]
    fn between_inclusive() {
        let p = Predicate::between("c", 2, 4);
        assert!(!p.eval(&Value::Int(1)));
        assert!(p.eval(&Value::Int(2)));
        assert!(p.eval(&Value::Int(3)));
        assert!(p.eval(&Value::Int(4)));
        assert!(!p.eval(&Value::Int(5)));
    }

    #[test]
    fn in_list_membership() {
        let p = Predicate::in_list("c", vec![Value::Int(1), Value::Int(3)]);
        assert!(p.eval(&Value::Int(3)));
        assert!(!p.eval(&Value::Int(2)));
    }

    #[test]
    fn like_and_not_like() {
        let p = Predicate::like("c", "%an%");
        assert!(p.eval(&Value::Str("banana".into())));
        assert!(!p.eval(&Value::Str("pear".into())));
        assert!(!p.eval(&Value::Int(5)), "LIKE on non-string is false");
        let n = Predicate::Like {
            column: "c".into(),
            pattern: "%an%".into(),
            negated: true,
        };
        assert!(!n.eval(&Value::Str("banana".into())));
        assert!(n.eval(&Value::Str("pear".into())));
    }

    #[test]
    fn is_null_tests() {
        let p = Predicate::IsNull {
            column: "c".into(),
            negated: false,
        };
        assert!(p.eval(&Value::Null));
        assert!(!p.eval(&Value::Int(0)));
        let n = Predicate::IsNull {
            column: "c".into(),
            negated: true,
        };
        assert!(!n.eval(&Value::Null));
        assert!(n.eval(&Value::Int(0)));
    }

    #[test]
    fn display_is_sql() {
        assert_eq!(Predicate::eq("a", 5).to_string(), "a = 5");
        assert_eq!(
            Predicate::between("a", 1, 2).to_string(),
            "a BETWEEN 1 AND 2"
        );
        assert_eq!(
            Predicate::in_list("a", vec![Value::Int(1), Value::Int(2)]).to_string(),
            "a IN (1, 2)"
        );
        assert_eq!(Predicate::like("a", "%x%").to_string(), "a LIKE '%x%'");
        assert_eq!(
            Predicate::IsNull {
                column: "a".into(),
                negated: true
            }
            .to_string(),
            "a IS NOT NULL"
        );
    }

    #[test]
    fn numeric_widening_in_predicates() {
        assert!(Predicate::eq("c", 2.0).eval(&Value::Int(2)));
        assert!(Predicate::cmp("c", CmpOp::Gt, 1.5).eval(&Value::Int(2)));
    }
}
