//! Per-query join graph and equivalent key group variables.
//!
//! This is the structure behind paper Figure 3: every join key that appears
//! in the query is a node; equi-join conditions are edges; connected
//! components become *equivalent key group variables* `V₁…Vₙ` — the variable
//! nodes of the factor graph. Each alias (table occurrence) touches a set of
//! variables, and that alias's factor node will hold the distribution of
//! exactly those variables.

use crate::query::{ColRef, Query};
use fj_storage::UnionFind;
use std::collections::BTreeMap;

/// An equivalent key group variable of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyVar {
    /// Variable id, dense `0..n`.
    pub id: usize,
    /// Member join keys (alias, column) — at least two, unless degenerate.
    pub members: Vec<ColRef>,
}

/// The analyzed join structure of a query.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    vars: Vec<KeyVar>,
    /// For each alias, the distinct (column, var) pairs it contributes.
    alias_keys: Vec<Vec<(usize, usize)>>,
    /// Alias-level adjacency derived from shared variables.
    adjacency: Vec<Vec<usize>>,
}

impl QueryGraph {
    /// Analyzes `query` into variables and per-alias key sets.
    pub fn analyze(query: &Query) -> Self {
        // Collect distinct join-key ColRefs in first-appearance order.
        let mut keys: Vec<ColRef> = Vec::new();
        let mut index: BTreeMap<ColRef, usize> = BTreeMap::new();
        for j in query.joins() {
            for cr in [j.left, j.right] {
                index.entry(cr).or_insert_with(|| {
                    keys.push(cr);
                    keys.len() - 1
                });
            }
        }
        let mut uf = UnionFind::new(keys.len());
        for j in query.joins() {
            uf.union(index[&j.left], index[&j.right]);
        }
        let groups = uf.groups();
        let mut vars = Vec::with_capacity(groups.len());
        let mut key_to_var = vec![0usize; keys.len()];
        for (vid, members) in groups.into_iter().enumerate() {
            for &m in &members {
                key_to_var[m] = vid;
            }
            vars.push(KeyVar {
                id: vid,
                members: members.into_iter().map(|m| keys[m]).collect(),
            });
        }

        let n = query.num_tables();
        let mut alias_keys: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (ki, cr) in keys.iter().enumerate() {
            let entry = (cr.column, key_to_var[ki]);
            if !alias_keys[cr.alias].contains(&entry) {
                alias_keys[cr.alias].push(entry);
            }
        }
        for ak in &mut alias_keys {
            ak.sort_unstable();
        }

        let mut adjacency = vec![Vec::new(); n];
        for j in query.joins() {
            let (a, b) = (j.left.alias, j.right.alias);
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
            }
            if !adjacency[b].contains(&a) {
                adjacency[b].push(a);
            }
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }

        QueryGraph {
            vars,
            alias_keys,
            adjacency,
        }
    }

    /// Equivalent key group variables.
    pub fn vars(&self) -> &[KeyVar] {
        &self.vars
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Distinct (column index, variable id) pairs contributed by `alias`.
    pub fn alias_keys(&self, alias: usize) -> &[(usize, usize)] {
        &self.alias_keys[alias]
    }

    /// Variable ids touched by `alias`.
    pub fn alias_vars(&self, alias: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self.alias_keys[alias].iter().map(|&(_, var)| var).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Alias-level neighbors of `alias` in the join graph.
    pub fn neighbors(&self, alias: usize) -> &[usize] {
        &self.adjacency[alias]
    }

    /// Maximum number of distinct join keys in any single alias — the
    /// `max(|JK|)` exponent in the paper's complexity analysis (§3.2).
    pub fn max_keys_per_alias(&self) -> usize {
        self.alias_keys.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The variable id of a given (alias, column) key, if it is a join key
    /// of this query.
    pub fn var_of(&self, alias: usize, column: usize) -> Option<usize> {
        self.alias_keys[alias]
            .iter()
            .find(|&&(c, _)| c == column)
            .map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::FilterExpr;
    use crate::query::TableRef;
    use fj_storage::{Catalog, ColumnDef, Table, TableSchema, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, keys) in [
            ("a", vec!["id", "id2"]),
            ("b", vec!["a_id", "c_id"]),
            ("c", vec!["a_id2", "id"]),
            ("d", vec!["c_id"]),
        ] {
            let cols: Vec<ColumnDef> = keys.iter().map(|k| ColumnDef::key(k)).collect();
            let schema = TableSchema::new(cols);
            let row: Vec<Value> = (0..schema.len()).map(|i| Value::Int(i as i64)).collect();
            cat.add_table(Table::from_rows(name, schema, &[row]).unwrap())
                .unwrap();
        }
        cat
    }

    fn j(la: &str, lc: &str, ra: &str, rc: &str) -> ((String, String), (String, String)) {
        ((la.into(), lc.into()), (ra.into(), rc.into()))
    }

    /// The four-table query of paper Figure 3:
    /// A.id = B.Aid, A.id2 = C.Aid2, C.id = B.Cid, C.id = D.Cid.
    fn figure3_query(cat: &Catalog) -> Query {
        Query::new(
            cat,
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("c", "c"),
                TableRef::new("d", "d"),
            ],
            &[
                j("a", "id", "b", "a_id"),
                j("a", "id2", "c", "a_id2"),
                j("c", "id", "b", "c_id"),
                j("c", "id", "d", "c_id"),
            ],
            vec![FilterExpr::True; 4],
        )
        .unwrap()
    }

    #[test]
    fn figure3_has_three_variables() {
        let cat = catalog();
        let g = QueryGraph::analyze(&figure3_query(&cat));
        // V1 = {A.id, B.Aid}, V2 = {A.id2, C.Aid2}, V3 = {C.id, B.Cid, D.Cid}.
        assert_eq!(g.num_vars(), 3);
        let sizes: Vec<usize> = g.vars().iter().map(|v| v.members.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 2, 3]);
        // Max join keys in one table is 2 (paper: exponent = 2 for Q2).
        assert_eq!(g.max_keys_per_alias(), 2);
    }

    #[test]
    fn alias_vars_and_adjacency() {
        let cat = catalog();
        let q = figure3_query(&cat);
        let g = QueryGraph::analyze(&q);
        // Alias a (index 0) touches two variables; alias d (index 3) one.
        assert_eq!(g.alias_vars(0).len(), 2);
        assert_eq!(g.alias_vars(3).len(), 1);
        // a is adjacent to b and c, not d.
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[2]);
    }

    #[test]
    fn chain_query_one_var_per_edge_group() {
        let cat = catalog();
        // a.id = b.a_id and b.c_id = c.id: two variables.
        let q = Query::new(
            &cat,
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("c", "c"),
            ],
            &[j("a", "id", "b", "a_id"), j("b", "c_id", "c", "id")],
            vec![FilterExpr::True; 3],
        )
        .unwrap();
        let g = QueryGraph::analyze(&q);
        assert_eq!(g.num_vars(), 2);
        assert_eq!(g.alias_vars(1).len(), 2, "middle table touches both vars");
    }

    #[test]
    fn star_join_merges_into_single_var() {
        let cat = catalog();
        // a.id = b.a_id and a.id = c.a_id2: one variable with 3 members.
        let q = Query::new(
            &cat,
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("c", "c"),
            ],
            &[j("a", "id", "b", "a_id"), j("a", "id", "c", "a_id2")],
            vec![FilterExpr::True; 3],
        )
        .unwrap();
        let g = QueryGraph::analyze(&q);
        assert_eq!(g.num_vars(), 1);
        assert_eq!(g.vars()[0].members.len(), 3);
    }

    #[test]
    fn var_of_lookup() {
        let cat = catalog();
        let q = figure3_query(&cat);
        let g = QueryGraph::analyze(&q);
        let a_id_col = cat.table("a").unwrap().schema().index_of("id").unwrap();
        let b_aid_col = cat.table("b").unwrap().schema().index_of("a_id").unwrap();
        assert_eq!(g.var_of(0, a_id_col), g.var_of(1, b_aid_col));
        assert_eq!(g.var_of(3, 99), None);
    }
}
