//! SQL `LIKE` pattern matching.
//!
//! `%` matches any (possibly empty) substring, `_` matches exactly one
//! character, and a backslash escapes the next character. Matching is
//! case-sensitive, as in PostgreSQL's `LIKE` (the IMDB-JOB workload uses
//! case-sensitive patterns).

/// Returns true when `text` matches the SQL LIKE `pattern`.
///
/// The implementation is the classic two-pointer greedy algorithm with
/// backtracking on the last `%`, which runs in O(|text|·|pattern|) worst
/// case but linear time for the common `%substr%` patterns.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    // Position after the most recent '%' (pattern) and the text position we
    // will retry from on mismatch.
    let mut star: Option<(usize, usize)> = None;

    while ti < t.len() {
        if pi < p.len() {
            match p[pi] {
                '%' => {
                    star = Some((pi + 1, ti));
                    pi += 1;
                    continue;
                }
                '_' => {
                    pi += 1;
                    ti += 1;
                    continue;
                }
                '\\' if pi + 1 < p.len() => {
                    if p[pi + 1] == t[ti] {
                        pi += 2;
                        ti += 1;
                        continue;
                    }
                }
                c => {
                    if c == t[ti] {
                        pi += 1;
                        ti += 1;
                        continue;
                    }
                }
            }
        }
        // Mismatch: backtrack to the last '%' and consume one more text char.
        match star {
            Some((sp, st)) => {
                pi = sp;
                ti = st + 1;
                star = Some((sp, st + 1));
            }
            None => return false,
        }
    }
    // Remaining pattern must be all '%'.
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_without_wildcards() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "ab"));
        assert!(!like_match("ab", "abc"));
    }

    #[test]
    fn percent_matches_any_run() {
        assert!(like_match("%", ""));
        assert!(like_match("%", "anything"));
        assert!(like_match("a%", "abcdef"));
        assert!(like_match("%f", "abcdef"));
        assert!(like_match("%cd%", "abcdef"));
        assert!(!like_match("%cd%", "abdcef"));
        assert!(like_match("a%c%e%", "abcde"));
    }

    #[test]
    fn underscore_matches_one_char() {
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "ac"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("___", "xyz"));
    }

    #[test]
    fn mixed_wildcards() {
        assert!(like_match("%an_", "Anna and".to_lowercase().as_str()));
        assert!(like_match("%An%", "Banana An Split"));
        assert!(like_match("_%_", "ab"));
        assert!(!like_match("_%_", "a"));
    }

    #[test]
    fn escape_literal_wildcards() {
        assert!(like_match("100\\%", "100%"));
        assert!(!like_match("100\\%", "1000"));
        assert!(like_match("a\\_b", "a_b"));
        assert!(!like_match("a\\_b", "axb"));
    }

    #[test]
    fn case_sensitive() {
        assert!(!like_match("%an%", "Anna"));
        assert!(like_match("%nn%", "Anna"));
    }

    #[test]
    fn pathological_backtracking_terminates() {
        let text = "a".repeat(200);
        assert!(like_match("%a%a%a%a%a%a%a%a%b%", &(text.clone() + "b")));
        assert!(!like_match("%a%a%a%a%a%a%a%a%b%", &text));
    }

    #[test]
    fn empty_pattern_and_text() {
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
        assert!(!like_match("x", ""));
        assert!(like_match("%%", ""));
    }
}
