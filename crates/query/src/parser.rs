//! A SQL-subset parser producing bound [`Query`] values.
//!
//! Supported grammar (enough for the STATS-CEB / IMDB-JOB style workloads):
//!
//! ```sql
//! SELECT COUNT(*) FROM t1 [AS] a1, t2 [AS] a2, ...
//! WHERE a1.k = a2.fk            -- equi-join conditions
//!   AND a1.x > 5                -- comparisons  = <> < <= > >=
//!   AND a1.y BETWEEN 1 AND 9
//!   AND a1.z IN (1, 2, 3)
//!   AND a2.s LIKE '%pattern%'   -- also NOT LIKE
//!   AND a2.t IS NOT NULL
//!   AND (a1.u = 1 OR a1.u = 2)  -- disjunctions within one alias
//! ;
//! ```
//!
//! The WHERE clause is parsed as a boolean expression with the usual
//! precedence (`OR` < `AND` < `NOT` < atom), then the top-level conjuncts
//! are classified: column=column atoms across two aliases become join
//! predicates; everything else must reference exactly one alias and becomes
//! part of that alias's filter.

use crate::expr::FilterExpr;
use crate::predicate::{CmpOp, Predicate};
use crate::query::{Query, QueryError, TableRef};
use fj_storage::{Catalog, Value};
use std::fmt;

/// Parse / bind errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Lexical error at byte offset.
    Lex(usize, String),
    /// Unexpected token.
    Unexpected { got: String, expected: String },
    /// A WHERE conjunct mixes columns of different aliases (other than a
    /// plain equi-join atom).
    MixedAliasFilter(String),
    /// Column reference without an alias qualifier.
    UnqualifiedColumn(String),
    /// Query binding failed.
    Bind(QueryError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(pos, msg) => write!(f, "lex error at {pos}: {msg}"),
            ParseError::Unexpected { got, expected } => {
                write!(f, "unexpected token {got:?}, expected {expected}")
            }
            ParseError::MixedAliasFilter(s) => {
                write!(f, "filter clause spans multiple aliases: {s}")
            }
            ParseError::UnqualifiedColumn(c) => write!(f, "unqualified column reference: {c}"),
            ParseError::Bind(e) => write!(f, "bind error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<QueryError> for ParseError {
    fn from(e: QueryError) -> Self {
        ParseError::Bind(e)
    }
}

// ---------------------------------------------------------------- tokenizer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str), // , ( ) ; . * = <> < <= > >=
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => s.clone(),
            Tok::Int(v) => v.to_string(),
            Tok::Float(v) => v.to_string(),
            Tok::Str(s) => format!("'{s}'"),
            Tok::Sym(s) => (*s).to_string(),
            Tok::Eof => "<eof>".to_string(),
        }
    }
}

fn lex(sql: &str) -> Result<Vec<Tok>, ParseError> {
    let b: Vec<char> = sql.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.push(Tok::Ident(b[start..i].iter().collect()));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == '.') {
                if b[i] == '.' {
                    // Disambiguate "1.5" from "a.b" — a digit must follow.
                    if i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        is_float = true;
                    } else {
                        break;
                    }
                }
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            if is_float {
                out.push(Tok::Float(text.parse().map_err(|_| {
                    ParseError::Lex(start, format!("bad float literal {text}"))
                })?));
            } else {
                out.push(Tok::Int(text.parse().map_err(|_| {
                    ParseError::Lex(start, format!("bad int literal {text}"))
                })?));
            }
            continue;
        }
        if c == '\'' {
            let start = i;
            i += 1;
            let mut s = String::new();
            loop {
                if i >= b.len() {
                    return Err(ParseError::Lex(start, "unterminated string".into()));
                }
                if b[i] == '\'' {
                    if i + 1 < b.len() && b[i + 1] == '\'' {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(b[i]);
                i += 1;
            }
            out.push(Tok::Str(s));
            continue;
        }
        let two = if i + 1 < b.len() {
            Some((b[i], b[i + 1]))
        } else {
            None
        };
        let sym: &'static str = match (c, two) {
            ('<', Some(('<', '>'))) => {
                i += 2;
                "<>"
            }
            ('<', Some(('<', '='))) => {
                i += 2;
                "<="
            }
            ('>', Some(('>', '='))) => {
                i += 2;
                ">="
            }
            ('!', Some(('!', '='))) => {
                i += 2;
                "<>"
            }
            ('=', _) => {
                i += 1;
                "="
            }
            ('<', _) => {
                i += 1;
                "<"
            }
            ('>', _) => {
                i += 1;
                ">"
            }
            (',', _) => {
                i += 1;
                ","
            }
            ('(', _) => {
                i += 1;
                "("
            }
            (')', _) => {
                i += 1;
                ")"
            }
            (';', _) => {
                i += 1;
                ";"
            }
            ('.', _) => {
                i += 1;
                "."
            }
            ('*', _) => {
                i += 1;
                "*"
            }
            ('-', _) => {
                i += 1;
                "-"
            }
            _ => return Err(ParseError::Lex(i, format!("unexpected character {c:?}"))),
        };
        out.push(Tok::Sym(sym));
    }
    out.push(Tok::Eof);
    Ok(out)
}

// ------------------------------------------------------------------ parser

/// Unbound boolean AST used during parsing (columns carry alias names).
#[derive(Debug, Clone)]
enum Ast {
    JoinAtom {
        la: String,
        lc: String,
        ra: String,
        rc: String,
    },
    Filter {
        alias: String,
        expr: FilterExpr,
    },
    And(Vec<Ast>),
    Or(Vec<Ast>),
    Not(Box<Ast>),
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        match self.next() {
            Tok::Sym(t) if t == s => Ok(()),
            other => Err(ParseError::Unexpected {
                got: other.describe(),
                expected: s.into(),
            }),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Tok::Ident(t) if t.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError::Unexpected {
                got: other.describe(),
                expected: kw.into(),
            }),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(t) if t.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError::Unexpected {
                got: other.describe(),
                expected: "identifier".into(),
            }),
        }
    }

    /// `alias.column`
    fn colref(&mut self) -> Result<(String, String), ParseError> {
        let first = self.ident()?;
        if matches!(self.peek(), Tok::Sym(".")) {
            self.next();
            let col = self.ident()?;
            Ok((first, col))
        } else {
            Err(ParseError::UnqualifiedColumn(first))
        }
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Tok::Int(v) => Ok(Value::Int(v)),
            Tok::Float(v) => Ok(Value::Float(v)),
            Tok::Str(s) => Ok(Value::Str(s)),
            Tok::Sym("-") => match self.next() {
                Tok::Int(v) => Ok(Value::Int(-v)),
                Tok::Float(v) => Ok(Value::Float(-v)),
                other => Err(ParseError::Unexpected {
                    got: other.describe(),
                    expected: "numeric literal".into(),
                }),
            },
            Tok::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            other => Err(ParseError::Unexpected {
                got: other.describe(),
                expected: "literal".into(),
            }),
        }
    }

    // expr := and_expr (OR and_expr)*
    fn expr(&mut self) -> Result<Ast, ParseError> {
        let mut parts = vec![self.and_expr()?];
        while self.peek_kw("or") {
            self.next();
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Ast::Or(parts)
        })
    }

    // and_expr := not_expr (AND not_expr)*
    fn and_expr(&mut self) -> Result<Ast, ParseError> {
        let mut parts = vec![self.not_expr()?];
        loop {
            // BETWEEN consumes its own AND, so only continue when the next
            // token truly starts a new conjunct.
            if self.peek_kw("and") {
                self.next();
                parts.push(self.not_expr()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Ast::And(parts)
        })
    }

    fn not_expr(&mut self) -> Result<Ast, ParseError> {
        if self.peek_kw("not") {
            self.next();
            Ok(Ast::Not(Box::new(self.not_expr()?)))
        } else {
            self.atom()
        }
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        if matches!(self.peek(), Tok::Sym("(")) {
            self.next();
            let inner = self.expr()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        let (alias, col) = self.colref()?;
        // Operator or keyword clause.
        match self.peek().clone() {
            Tok::Sym(op @ ("=" | "<>" | "<" | "<=" | ">" | ">=")) => {
                self.next();
                // Either a column ref (join) or a literal (filter).
                if let Tok::Ident(_) = self.peek() {
                    // Lookahead for `ident.ident` meaning a column; `NULL`
                    // and other keywords fall through to literal.
                    let save = self.pos;
                    if let Ok((ra, rc)) = self.colref() {
                        if op == "=" {
                            return Ok(Ast::JoinAtom {
                                la: alias,
                                lc: col,
                                ra,
                                rc,
                            });
                        }
                        // Non-equi column comparison unsupported.
                        return Err(ParseError::Unexpected {
                            got: format!("{ra}.{rc}"),
                            expected: "literal (non-equi column comparisons unsupported)".into(),
                        });
                    }
                    self.pos = save;
                }
                let v = self.literal()?;
                let cmp = match op {
                    "=" => CmpOp::Eq,
                    "<>" => CmpOp::Neq,
                    "<" => CmpOp::Lt,
                    "<=" => CmpOp::Le,
                    ">" => CmpOp::Gt,
                    ">=" => CmpOp::Ge,
                    _ => unreachable!("matched above"),
                };
                Ok(Ast::Filter {
                    alias,
                    expr: FilterExpr::pred(Predicate::Cmp {
                        column: col,
                        op: cmp,
                        value: v,
                    }),
                })
            }
            Tok::Ident(kw) if kw.eq_ignore_ascii_case("between") => {
                self.next();
                let lo = self.literal()?;
                self.expect_kw("and")?;
                let hi = self.literal()?;
                Ok(Ast::Filter {
                    alias,
                    expr: FilterExpr::pred(Predicate::Between {
                        column: col,
                        lo,
                        hi,
                    }),
                })
            }
            Tok::Ident(kw) if kw.eq_ignore_ascii_case("in") => {
                self.next();
                self.expect_sym("(")?;
                let mut values = vec![self.literal()?];
                while matches!(self.peek(), Tok::Sym(",")) {
                    self.next();
                    values.push(self.literal()?);
                }
                self.expect_sym(")")?;
                Ok(Ast::Filter {
                    alias,
                    expr: FilterExpr::pred(Predicate::InList {
                        column: col,
                        values,
                    }),
                })
            }
            Tok::Ident(kw) if kw.eq_ignore_ascii_case("like") => {
                self.next();
                let pat = match self.next() {
                    Tok::Str(s) => s,
                    other => {
                        return Err(ParseError::Unexpected {
                            got: other.describe(),
                            expected: "string pattern".into(),
                        })
                    }
                };
                Ok(Ast::Filter {
                    alias,
                    expr: FilterExpr::pred(Predicate::Like {
                        column: col,
                        pattern: pat,
                        negated: false,
                    }),
                })
            }
            Tok::Ident(kw) if kw.eq_ignore_ascii_case("not") => {
                self.next();
                self.expect_kw("like")?;
                let pat = match self.next() {
                    Tok::Str(s) => s,
                    other => {
                        return Err(ParseError::Unexpected {
                            got: other.describe(),
                            expected: "string pattern".into(),
                        })
                    }
                };
                Ok(Ast::Filter {
                    alias,
                    expr: FilterExpr::pred(Predicate::Like {
                        column: col,
                        pattern: pat,
                        negated: true,
                    }),
                })
            }
            Tok::Ident(kw) if kw.eq_ignore_ascii_case("is") => {
                self.next();
                let negated = if self.peek_kw("not") {
                    self.next();
                    true
                } else {
                    false
                };
                self.expect_kw("null")?;
                Ok(Ast::Filter {
                    alias,
                    expr: FilterExpr::pred(Predicate::IsNull {
                        column: col,
                        negated,
                    }),
                })
            }
            other => Err(ParseError::Unexpected {
                got: other.describe(),
                expected: "comparison operator or BETWEEN/IN/LIKE/IS".into(),
            }),
        }
    }
}

// ------------------------------------------------------------- AST lowering

/// Classifies a parsed boolean expression into joins + per-alias filters.
fn lower(
    ast: Ast,
    joins: &mut Vec<((String, String), (String, String))>,
    filters: &mut std::collections::BTreeMap<String, Vec<FilterExpr>>,
) -> Result<(), ParseError> {
    match ast {
        Ast::And(parts) => {
            for p in parts {
                lower(p, joins, filters)?;
            }
            Ok(())
        }
        Ast::JoinAtom { la, lc, ra, rc } => {
            joins.push(((la, lc), (ra, rc)));
            Ok(())
        }
        Ast::Filter { alias, expr } => {
            filters.entry(alias).or_default().push(expr);
            Ok(())
        }
        Ast::Or(_) | Ast::Not(_) => {
            // OR/NOT trees must be confined to a single alias.
            let (alias, expr) = lower_single_alias(&ast)?;
            filters.entry(alias).or_default().push(expr);
            Ok(())
        }
    }
}

fn lower_single_alias(ast: &Ast) -> Result<(String, FilterExpr), ParseError> {
    match ast {
        Ast::Filter { alias, expr } => Ok((alias.clone(), expr.clone())),
        Ast::JoinAtom { la, lc, ra, rc } => Err(ParseError::MixedAliasFilter(format!(
            "{la}.{lc} = {ra}.{rc} inside OR/NOT"
        ))),
        Ast::And(parts) | Ast::Or(parts) => {
            let mut alias: Option<String> = None;
            let mut exprs = Vec::with_capacity(parts.len());
            for p in parts {
                let (a, e) = lower_single_alias(p)?;
                match &alias {
                    None => alias = Some(a),
                    Some(existing) if *existing == a => {}
                    Some(existing) => {
                        return Err(ParseError::MixedAliasFilter(format!(
                            "aliases {existing} and {a} in one clause"
                        )))
                    }
                }
                exprs.push(e);
            }
            let alias = alias.ok_or_else(|| ParseError::MixedAliasFilter("empty clause".into()))?;
            let combined = if matches!(ast, Ast::And(_)) {
                FilterExpr::and(exprs)
            } else {
                FilterExpr::or(exprs)
            };
            Ok((alias, combined))
        }
        Ast::Not(inner) => {
            let (a, e) = lower_single_alias(inner)?;
            Ok((a, FilterExpr::Not(Box::new(e))))
        }
    }
}

/// Parses a `SELECT COUNT(*) …` statement and binds it against `catalog`.
pub fn parse_query(catalog: &Catalog, sql: &str) -> Result<Query, ParseError> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0 };
    p.expect_kw("select")?;
    p.expect_kw("count")?;
    p.expect_sym("(")?;
    p.expect_sym("*")?;
    p.expect_sym(")")?;
    p.expect_kw("from")?;

    let mut tables = Vec::new();
    loop {
        let table = p.ident()?;
        let alias = if p.peek_kw("as") {
            p.next();
            p.ident()?
        } else if let Tok::Ident(s) = p.peek() {
            // `FROM t a` (implicit AS) — but not a keyword like WHERE.
            if !s.eq_ignore_ascii_case("where") {
                p.ident()?
            } else {
                table.clone()
            }
        } else {
            table.clone()
        };
        tables.push(TableRef::new(&alias, &table));
        if matches!(p.peek(), Tok::Sym(",")) {
            p.next();
        } else {
            break;
        }
    }

    let mut joins = Vec::new();
    let mut filter_map: std::collections::BTreeMap<String, Vec<FilterExpr>> = Default::default();
    if p.peek_kw("where") {
        p.next();
        let ast = p.expr()?;
        lower(ast, &mut joins, &mut filter_map)?;
    }
    if matches!(p.peek(), Tok::Sym(";")) {
        p.next();
    }
    if !matches!(p.peek(), Tok::Eof) {
        return Err(ParseError::Unexpected {
            got: p.peek().describe(),
            expected: "end of statement".into(),
        });
    }

    // Unknown aliases in filters surface as bind errors.
    for alias in filter_map.keys() {
        if !tables.iter().any(|t| &t.alias == alias) {
            return Err(ParseError::Bind(QueryError::UnknownAlias(alias.clone())));
        }
    }
    let filters: Vec<FilterExpr> = tables
        .iter()
        .map(|t| FilterExpr::and(filter_map.get(&t.alias).cloned().unwrap_or_default()))
        .collect();
    Ok(Query::new(catalog, tables, &joins, filters)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_storage::{ColumnDef, DataType, Table, TableSchema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, keys, attrs) in [
            ("users", vec!["id"], vec![("reputation", DataType::Int)]),
            (
                "posts",
                vec!["id", "owner_id"],
                vec![("score", DataType::Int), ("title", DataType::Str)],
            ),
            (
                "comments",
                vec!["post_id", "user_id"],
                vec![("score", DataType::Int)],
            ),
        ] {
            let mut cols: Vec<ColumnDef> = keys.iter().map(|k| ColumnDef::key(k)).collect();
            cols.extend(attrs.iter().map(|(n, t)| ColumnDef::new(n, *t)));
            let schema = TableSchema::new(cols);
            let row: Vec<Value> = schema
                .columns()
                .iter()
                .map(|c| match c.dtype {
                    DataType::Int => Value::Int(0),
                    DataType::Float => Value::Float(0.0),
                    DataType::Str => Value::Str("x".into()),
                })
                .collect();
            cat.add_table(Table::from_rows(name, schema, &[row]).unwrap())
                .unwrap();
        }
        cat
    }

    #[test]
    fn parses_two_table_join_with_filters() {
        let cat = catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM users AS u, posts AS p \
             WHERE u.id = p.owner_id AND u.reputation > 100 AND p.score >= 5;",
        )
        .unwrap();
        assert_eq!(q.num_tables(), 2);
        assert_eq!(q.joins().len(), 1);
        assert_eq!(q.filter(0).num_predicates(), 1);
        assert_eq!(q.filter(1).num_predicates(), 1);
    }

    #[test]
    fn parses_disjunction_in_like_between() {
        let cat = catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id \
             AND (p.score = 1 OR p.score = 2) AND p.title LIKE '%rust%' \
             AND c.score BETWEEN 0 AND 10 AND c.user_id IS NOT NULL \
             AND p.score IN (1, 2, 3);",
        )
        .unwrap();
        assert_eq!(q.joins().len(), 1);
        // posts filter: OR + LIKE + IN = 2+1+3... predicates count atoms.
        assert!(q.filter(0).num_predicates() >= 4);
        assert!(!q.filter(0).is_conjunctive());
    }

    #[test]
    fn implicit_alias_and_no_as() {
        let cat = catalog();
        let q = parse_query(
            &cat,
            "select count(*) from users u, posts where u.id = posts.owner_id",
        )
        .unwrap();
        assert_eq!(q.tables()[0].alias, "u");
        assert_eq!(q.tables()[1].alias, "posts");
    }

    #[test]
    fn self_join_two_aliases() {
        let cat = catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p1, posts p2 WHERE p1.id = p2.owner_id;",
        )
        .unwrap();
        assert_eq!(q.num_tables(), 2);
        assert_eq!(q.tables()[0].table, "posts");
        assert_eq!(q.tables()[1].table, "posts");
    }

    #[test]
    fn negative_literals_and_not_like() {
        let cat = catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id \
             AND p.score > -10 AND p.title NOT LIKE '%spam%';",
        )
        .unwrap();
        let preds = q.filter(0).predicates();
        assert!(preds.iter().any(|p| matches!(
            p,
            Predicate::Cmp {
                value: Value::Int(-10),
                ..
            }
        )));
        assert!(preds
            .iter()
            .any(|p| matches!(p, Predicate::Like { negated: true, .. })));
    }

    #[test]
    fn mixed_alias_or_rejected() {
        let cat = catalog();
        let err = parse_query(
            &cat,
            "SELECT COUNT(*) FROM users u, posts p WHERE u.id = p.owner_id \
             AND (u.reputation > 1 OR p.score > 1);",
        )
        .unwrap_err();
        assert!(matches!(err, ParseError::MixedAliasFilter(_)));
    }

    #[test]
    fn bind_errors_surface() {
        let cat = catalog();
        assert!(matches!(
            parse_query(&cat, "SELECT COUNT(*) FROM nosuch n;"),
            Err(ParseError::Bind(QueryError::UnknownTable(_)))
        ));
        assert!(matches!(
            parse_query(
                &cat,
                "SELECT COUNT(*) FROM users u, posts p WHERE u.id = p.owner_id AND u.nope = 3;"
            ),
            Err(ParseError::Bind(QueryError::UnknownColumn { .. }))
        ));
        // Cross product (no join) is rejected.
        assert!(matches!(
            parse_query(&cat, "SELECT COUNT(*) FROM users u, posts p;"),
            Err(ParseError::Bind(QueryError::Disconnected))
        ));
    }

    #[test]
    fn string_escapes() {
        let cat = catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id AND p.title = 'it''s';",
        )
        .unwrap();
        let preds = q.filter(0).predicates();
        assert!(matches!(&preds[0], Predicate::Cmp { value: Value::Str(s), .. } if s == "it's"));
    }

    #[test]
    fn roundtrip_parse_to_sql_parse() {
        let cat = catalog();
        let sql = "SELECT COUNT(*) FROM users AS u, posts AS p \
                   WHERE u.id = p.owner_id AND u.reputation > 100;";
        let q1 = parse_query(&cat, sql).unwrap();
        let q2 = parse_query(&cat, &q1.to_sql(&cat)).unwrap();
        assert_eq!(q1, q2);
    }

    #[test]
    fn lex_errors_reported() {
        let cat = catalog();
        assert!(matches!(
            parse_query(&cat, "SELECT COUNT(*) FROM users u WHERE u.id = 'oops"),
            Err(ParseError::Lex(..))
        ));
        assert!(matches!(
            parse_query(&cat, "SELECT COUNT(*) FROM users ? "),
            Err(ParseError::Lex(..))
        ));
    }
}
