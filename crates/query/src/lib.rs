//! # fj-query — query IR, join graphs, sub-plan enumeration, SQL parser
//!
//! The FactorJoin paper (§2.1) defines a query as a *join graph* over table
//! aliases plus per-alias base-table filter predicates. This crate provides:
//!
//! * [`Predicate`] / [`FilterExpr`] — conjunction/disjunction trees of
//!   comparison, range, `IN`, `LIKE`, and NULL-test predicates (the paper
//!   supports disjunctive clauses and string pattern matching, §1);
//! * [`Query`] — aliases (self-joins are two aliases of the same table),
//!   equi-join conditions (cyclic join graphs allowed), and filters;
//! * [`QueryGraph`] — alias-level adjacency and per-query *equivalent key
//!   group* variables (paper §3.1), which become the factor-graph variables;
//! * [`subplan`] — enumeration of all connected sub-plans, which is the set
//!   of cardinalities a cost-based optimizer requests (paper §5.2);
//! * [`fingerprint`] — seeded stable canonical sub-plan fingerprints, the
//!   cache key of the service tier's sub-plan estimate cache;
//! * [`parser`] — a SQL-subset parser so workloads can be written as text.

pub mod compile;
pub mod expr;
pub mod fingerprint;
pub mod graph;
pub mod like;
pub mod parser;
pub mod predicate;
pub mod query;
pub mod subplan;

pub use compile::{compile_filter, filtered_count, filtered_selection, CompiledFilter};
pub use expr::FilterExpr;
pub use fingerprint::{subplan_fingerprints, StableHasher};
pub use graph::{KeyVar, QueryGraph};
pub use like::like_match;
pub use parser::{parse_query, ParseError};
pub use predicate::{CmpOp, Predicate};
pub use query::{ColRef, JoinPredicate, Query, QueryError, TableRef};
pub use subplan::{connected_subplans, connected_subplans_into, SubplanMask};
