//! The join-query IR: aliased tables, equi-join conditions, per-alias filters.

use crate::expr::FilterExpr;
use fj_storage::{Catalog, DataType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One occurrence of a table in the FROM clause.
///
/// Self-joins (paper Appendix Case 4) are expressed as two `TableRef`s with
/// the same `table` but different `alias`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRef {
    /// Alias used in join conditions and filters.
    pub alias: String,
    /// Underlying table name in the catalog.
    pub table: String,
}

impl TableRef {
    /// Creates a table reference.
    pub fn new(alias: &str, table: &str) -> Self {
        TableRef {
            alias: alias.to_string(),
            table: table.to_string(),
        }
    }
}

/// A column of a specific alias: `alias_idx` indexes [`Query::tables`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColRef {
    /// Index into the query's alias list.
    pub alias: usize,
    /// Column index within the alias's table schema.
    pub column: usize,
}

/// An equi-join condition `left = right` between two alias columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinPredicate {
    /// Left side.
    pub left: ColRef,
    /// Right side.
    pub right: ColRef,
}

/// Errors from query construction/binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Alias used twice in the FROM clause.
    DuplicateAlias(String),
    /// Alias not declared in FROM.
    UnknownAlias(String),
    /// Table missing from the catalog.
    UnknownTable(String),
    /// Column missing from a table schema.
    UnknownColumn { alias: String, column: String },
    /// Join condition on a non-key or float column.
    BadJoinColumn { alias: String, column: String },
    /// Both sides of a join condition refer to the same alias.
    SelfReferentialJoin(String),
    /// The join graph is not connected (cross products unsupported).
    Disconnected,
    /// More aliases than the sub-plan bitmask supports (64).
    TooManyAliases(usize),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::DuplicateAlias(a) => write!(f, "duplicate alias {a}"),
            QueryError::UnknownAlias(a) => write!(f, "unknown alias {a}"),
            QueryError::UnknownTable(t) => write!(f, "unknown table {t}"),
            QueryError::UnknownColumn { alias, column } => {
                write!(f, "unknown column {alias}.{column}")
            }
            QueryError::BadJoinColumn { alias, column } => {
                write!(f, "column {alias}.{column} cannot be used as a join key")
            }
            QueryError::SelfReferentialJoin(a) => {
                write!(
                    f,
                    "join condition relates alias {a} to itself; use two aliases"
                )
            }
            QueryError::Disconnected => write!(f, "join graph is not connected"),
            QueryError::TooManyAliases(n) => write!(f, "{n} aliases exceed the supported 64"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A bound join query: validated against a catalog.
///
/// Invariants (enforced by [`Query::new`]):
/// * aliases are unique and ≤ 64;
/// * every join column exists, is typed `Int` or `Str`, and joins relate two
///   *different* aliases (cyclic graphs and multiple edges are fine);
/// * `filters[i]` applies to `tables[i]` and references existing columns;
/// * the alias-level join graph is connected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    tables: Vec<TableRef>,
    joins: Vec<JoinPredicate>,
    filters: Vec<FilterExpr>,
}

impl Query {
    /// Builds and validates a query against `catalog`.
    ///
    /// `joins` are given by (alias, column) name pairs; `filters` must have
    /// one entry per table reference (use [`FilterExpr::True`] for none).
    pub fn new(
        catalog: &Catalog,
        tables: Vec<TableRef>,
        joins_by_name: &[((String, String), (String, String))],
        filters: Vec<FilterExpr>,
    ) -> Result<Self, QueryError> {
        if tables.len() > 64 {
            return Err(QueryError::TooManyAliases(tables.len()));
        }
        assert_eq!(
            tables.len(),
            filters.len(),
            "one filter per table reference"
        );
        // Unique aliases.
        for (i, t) in tables.iter().enumerate() {
            if tables[..i].iter().any(|u| u.alias == t.alias) {
                return Err(QueryError::DuplicateAlias(t.alias.clone()));
            }
            catalog
                .table(&t.table)
                .map_err(|_| QueryError::UnknownTable(t.table.clone()))?;
        }
        let alias_idx = |a: &str| -> Result<usize, QueryError> {
            tables
                .iter()
                .position(|t| t.alias == a)
                .ok_or_else(|| QueryError::UnknownAlias(a.to_string()))
        };
        let resolve = |a: &str, c: &str| -> Result<ColRef, QueryError> {
            let ai = alias_idx(a)?;
            let table = catalog.table(&tables[ai].table).expect("validated above");
            let ci = table
                .schema()
                .index_of(c)
                .ok_or_else(|| QueryError::UnknownColumn {
                    alias: a.to_string(),
                    column: c.to_string(),
                })?;
            if table.schema().column(ci).dtype == DataType::Float {
                return Err(QueryError::BadJoinColumn {
                    alias: a.to_string(),
                    column: c.to_string(),
                });
            }
            Ok(ColRef {
                alias: ai,
                column: ci,
            })
        };
        let mut joins = Vec::with_capacity(joins_by_name.len());
        for ((la, lc), (ra, rc)) in joins_by_name {
            let left = resolve(la, lc)?;
            let right = resolve(ra, rc)?;
            if left.alias == right.alias {
                return Err(QueryError::SelfReferentialJoin(la.clone()));
            }
            joins.push(JoinPredicate { left, right });
        }
        // Validate filter columns.
        for (t, fexpr) in tables.iter().zip(&filters) {
            let table = catalog.table(&t.table).expect("validated above");
            for col in fexpr.columns() {
                if table.schema().index_of(&col).is_none() {
                    return Err(QueryError::UnknownColumn {
                        alias: t.alias.clone(),
                        column: col,
                    });
                }
            }
        }
        let q = Query {
            tables,
            joins,
            filters,
        };
        if q.tables.len() > 1 && !q.is_connected() {
            return Err(QueryError::Disconnected);
        }
        Ok(q)
    }

    /// Rebuilds a query from parts produced by [`Query::tables`],
    /// [`Query::joins`], and [`Query::filters`] of an already-bound query —
    /// the deserialization path for transport layers (e.g. the `fj-service`
    /// wire protocol) moving queries between processes.
    ///
    /// Catalog-independent invariants are re-checked (alias count and
    /// uniqueness, one filter per table, join endpoints in range and
    /// relating distinct aliases, connectivity). Catalog-dependent checks
    /// (table/column existence and types) happened when the query was first
    /// bound with [`Query::new`] on the sending side; the receiver is
    /// expected to serve a model trained on the same schema.
    pub fn from_wire_parts(
        tables: Vec<TableRef>,
        joins: Vec<JoinPredicate>,
        filters: Vec<FilterExpr>,
    ) -> Result<Self, QueryError> {
        if tables.len() > 64 {
            return Err(QueryError::TooManyAliases(tables.len()));
        }
        if tables.len() != filters.len() {
            // One filter slot per table reference is a structural invariant
            // of the IR; a mismatched wire payload cannot name the missing
            // column, so report the first alias lacking a slot.
            return Err(QueryError::UnknownAlias(format!(
                "{} filters for {} tables",
                filters.len(),
                tables.len()
            )));
        }
        for (i, t) in tables.iter().enumerate() {
            if tables[..i].iter().any(|u| u.alias == t.alias) {
                return Err(QueryError::DuplicateAlias(t.alias.clone()));
            }
        }
        for j in &joins {
            for side in [j.left, j.right] {
                if side.alias >= tables.len() {
                    return Err(QueryError::UnknownAlias(format!("#{}", side.alias)));
                }
            }
            if j.left.alias == j.right.alias {
                return Err(QueryError::SelfReferentialJoin(
                    tables[j.left.alias].alias.clone(),
                ));
            }
        }
        let q = Query {
            tables,
            joins,
            filters,
        };
        if q.tables.len() > 1 && !q.is_connected() {
            return Err(QueryError::Disconnected);
        }
        Ok(q)
    }

    /// Table references (aliases) in FROM-clause order.
    pub fn tables(&self) -> &[TableRef] {
        &self.tables
    }

    /// Equi-join conditions.
    pub fn joins(&self) -> &[JoinPredicate] {
        &self.joins
    }

    /// Per-alias filters, parallel to [`Query::tables`].
    pub fn filters(&self) -> &[FilterExpr] {
        &self.filters
    }

    /// Filter of alias `i`.
    pub fn filter(&self, i: usize) -> &FilterExpr {
        &self.filters[i]
    }

    /// Number of aliases.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Alias index by name.
    pub fn alias_index(&self, alias: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.alias == alias)
    }

    /// Whether the alias-level join graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.tables.is_empty() {
            return true;
        }
        let n = self.tables.len();
        let mut adj = vec![Vec::new(); n];
        for j in &self.joins {
            adj[j.left.alias].push(j.right.alias);
            adj[j.right.alias].push(j.left.alias);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// The query restricted to the aliases in `mask` (bit i ⇔ alias i),
    /// keeping only join conditions with both endpoints inside the mask.
    ///
    /// Alias indices are *re-numbered* to be dense in the sub-query; the
    /// returned mapping gives, for each sub-query alias, the original index.
    pub fn project(&self, mask: u64) -> (Query, Vec<usize>) {
        let keep: Vec<usize> = (0..self.tables.len())
            .filter(|&i| mask & (1u64 << i) != 0)
            .collect();
        let remap: std::collections::HashMap<usize, usize> = keep
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let tables = keep.iter().map(|&i| self.tables[i].clone()).collect();
        let filters = keep.iter().map(|&i| self.filters[i].clone()).collect();
        let joins = self
            .joins
            .iter()
            .filter(|j| remap.contains_key(&j.left.alias) && remap.contains_key(&j.right.alias))
            .map(|j| JoinPredicate {
                left: ColRef {
                    alias: remap[&j.left.alias],
                    column: j.left.column,
                },
                right: ColRef {
                    alias: remap[&j.right.alias],
                    column: j.right.column,
                },
            })
            .collect();
        (
            Query {
                tables,
                joins,
                filters,
            },
            keep,
        )
    }

    /// Renders the query as `SELECT COUNT(*) …` SQL text.
    pub fn to_sql(&self, catalog: &Catalog) -> String {
        let from: Vec<String> = self
            .tables
            .iter()
            .map(|t| {
                if t.alias == t.table {
                    t.table.clone()
                } else {
                    format!("{} AS {}", t.table, t.alias)
                }
            })
            .collect();
        let mut conds = Vec::new();
        for j in &self.joins {
            let (lt, rt) = (&self.tables[j.left.alias], &self.tables[j.right.alias]);
            let lc = catalog
                .table(&lt.table)
                .map(|t| t.schema().column(j.left.column).name.clone())
                .unwrap_or_default();
            let rc = catalog
                .table(&rt.table)
                .map(|t| t.schema().column(j.right.column).name.clone())
                .unwrap_or_default();
            conds.push(format!("{}.{} = {}.{}", lt.alias, lc, rt.alias, rc));
        }
        for (t, fexpr) in self.tables.iter().zip(&self.filters) {
            if !fexpr.is_trivial() {
                // Top-level ORs must be parenthesized to survive re-parsing
                // as a single conjunct.
                match fexpr {
                    FilterExpr::Or(_) => conds.push(format!("({})", fexpr.to_sql(&t.alias))),
                    _ => conds.push(fexpr.to_sql(&t.alias)),
                }
            }
        }
        if conds.is_empty() {
            format!("SELECT COUNT(*) FROM {};", from.join(", "))
        } else {
            format!(
                "SELECT COUNT(*) FROM {} WHERE {};",
                from.join(", "),
                conds.join(" AND ")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use fj_storage::{ColumnDef, DataType, Table, TableSchema, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for (name, keys) in [
            ("a", vec!["id", "id2"]),
            ("b", vec!["a_id", "c_id"]),
            ("c", vec!["id"]),
        ] {
            let mut cols: Vec<ColumnDef> = keys.iter().map(|k| ColumnDef::key(k)).collect();
            cols.push(ColumnDef::new("v", DataType::Int));
            cols.push(ColumnDef::new("f", DataType::Float));
            let schema = TableSchema::new(cols);
            let row: Vec<Value> = (0..schema.len())
                .map(|i| {
                    if schema.column(i).dtype == DataType::Float {
                        Value::Float(0.0)
                    } else {
                        Value::Int(i as i64)
                    }
                })
                .collect();
            cat.add_table(Table::from_rows(name, schema, &[row]).unwrap())
                .unwrap();
        }
        cat
    }

    fn j(la: &str, lc: &str, ra: &str, rc: &str) -> ((String, String), (String, String)) {
        ((la.into(), lc.into()), (ra.into(), rc.into()))
    }

    #[test]
    fn two_table_query_builds() {
        let cat = catalog();
        let q = Query::new(
            &cat,
            vec![TableRef::new("a", "a"), TableRef::new("b", "b")],
            &[j("a", "id", "b", "a_id")],
            vec![FilterExpr::pred(Predicate::eq("v", 1)), FilterExpr::True],
        )
        .unwrap();
        assert_eq!(q.num_tables(), 2);
        assert_eq!(q.joins().len(), 1);
        assert!(q.is_connected());
    }

    #[test]
    fn self_join_via_two_aliases() {
        let cat = catalog();
        let q = Query::new(
            &cat,
            vec![TableRef::new("a1", "a"), TableRef::new("a2", "a")],
            &[j("a1", "id", "a2", "id2")],
            vec![FilterExpr::True, FilterExpr::True],
        )
        .unwrap();
        assert_eq!(q.tables()[0].table, q.tables()[1].table);
    }

    #[test]
    fn same_alias_join_rejected() {
        let cat = catalog();
        let err = Query::new(
            &cat,
            vec![TableRef::new("a", "a")],
            &[j("a", "id", "a", "id2")],
            vec![FilterExpr::True],
        )
        .unwrap_err();
        assert_eq!(err, QueryError::SelfReferentialJoin("a".into()));
    }

    #[test]
    fn disconnected_rejected() {
        let cat = catalog();
        let err = Query::new(
            &cat,
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("c", "c"),
            ],
            &[j("a", "id", "b", "a_id")],
            vec![FilterExpr::True, FilterExpr::True, FilterExpr::True],
        )
        .unwrap_err();
        assert_eq!(err, QueryError::Disconnected);
    }

    #[test]
    fn float_join_key_rejected() {
        let cat = catalog();
        let err = Query::new(
            &cat,
            vec![TableRef::new("a", "a"), TableRef::new("b", "b")],
            &[j("a", "f", "b", "a_id")],
            vec![FilterExpr::True, FilterExpr::True],
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::BadJoinColumn { .. }));
    }

    #[test]
    fn unknown_names_rejected() {
        let cat = catalog();
        assert!(matches!(
            Query::new(
                &cat,
                vec![TableRef::new("z", "zz")],
                &[],
                vec![FilterExpr::True],
            ),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            Query::new(
                &cat,
                vec![TableRef::new("a", "a")],
                &[],
                vec![FilterExpr::pred(Predicate::eq("nope", 1))],
            ),
            Err(QueryError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let cat = catalog();
        let err = Query::new(
            &cat,
            vec![TableRef::new("x", "a"), TableRef::new("x", "b")],
            &[],
            vec![FilterExpr::True, FilterExpr::True],
        )
        .unwrap_err();
        assert_eq!(err, QueryError::DuplicateAlias("x".into()));
    }

    #[test]
    fn cyclic_join_graph_allowed() {
        let cat = catalog();
        // a–b, b–c, c–a: a cycle (paper supports cyclic join templates).
        let q = Query::new(
            &cat,
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("c", "c"),
            ],
            &[
                j("a", "id", "b", "a_id"),
                j("b", "c_id", "c", "id"),
                j("c", "id", "a", "id2"),
            ],
            vec![FilterExpr::True, FilterExpr::True, FilterExpr::True],
        )
        .unwrap();
        assert_eq!(q.joins().len(), 3);
    }

    #[test]
    fn project_renumbers_aliases() {
        let cat = catalog();
        let q = Query::new(
            &cat,
            vec![
                TableRef::new("a", "a"),
                TableRef::new("b", "b"),
                TableRef::new("c", "c"),
            ],
            &[j("a", "id", "b", "a_id"), j("b", "c_id", "c", "id")],
            vec![FilterExpr::True, FilterExpr::True, FilterExpr::True],
        )
        .unwrap();
        // Keep aliases b (1) and c (2): mask 0b110.
        let (sub, keep) = q.project(0b110);
        assert_eq!(keep, vec![1, 2]);
        assert_eq!(sub.num_tables(), 2);
        assert_eq!(sub.joins().len(), 1);
        assert_eq!(sub.joins()[0].left.alias, 0);
        assert_eq!(sub.joins()[0].right.alias, 1);
        assert!(sub.is_connected());
    }

    #[test]
    fn from_wire_parts_roundtrips_and_validates() {
        let cat = catalog();
        let q = Query::new(
            &cat,
            vec![TableRef::new("a", "a"), TableRef::new("b", "b")],
            &[j("a", "id", "b", "a_id")],
            vec![FilterExpr::pred(Predicate::eq("v", 1)), FilterExpr::True],
        )
        .unwrap();
        // Lossless rebuild from the public accessors.
        let back = Query::from_wire_parts(
            q.tables().to_vec(),
            q.joins().to_vec(),
            q.filters().to_vec(),
        )
        .unwrap();
        assert_eq!(back, q);

        // Structural invariants still hold without a catalog.
        assert_eq!(
            Query::from_wire_parts(
                vec![TableRef::new("x", "a"), TableRef::new("x", "b")],
                vec![],
                vec![FilterExpr::True, FilterExpr::True],
            )
            .unwrap_err(),
            QueryError::DuplicateAlias("x".into())
        );
        assert!(matches!(
            Query::from_wire_parts(
                q.tables().to_vec(),
                vec![JoinPredicate {
                    left: ColRef {
                        alias: 0,
                        column: 0
                    },
                    right: ColRef {
                        alias: 9,
                        column: 0
                    },
                }],
                q.filters().to_vec(),
            ),
            Err(QueryError::UnknownAlias(_))
        ));
        assert_eq!(
            Query::from_wire_parts(q.tables().to_vec(), vec![], q.filters().to_vec(),).unwrap_err(),
            QueryError::Disconnected
        );
        assert!(matches!(
            Query::from_wire_parts(q.tables().to_vec(), q.joins().to_vec(), vec![]),
            Err(QueryError::UnknownAlias(_))
        ));
    }

    #[test]
    fn to_sql_roundtrips_structure() {
        let cat = catalog();
        let q = Query::new(
            &cat,
            vec![TableRef::new("x", "a"), TableRef::new("b", "b")],
            &[j("x", "id", "b", "a_id")],
            vec![FilterExpr::pred(Predicate::eq("v", 1)), FilterExpr::True],
        )
        .unwrap();
        let sql = q.to_sql(&cat);
        assert_eq!(
            sql,
            "SELECT COUNT(*) FROM a AS x, b WHERE x.id = b.a_id AND x.v = 1;"
        );
    }
}
