//! # fj-exec — join executor, true-cardinality engine, plan optimizer
//!
//! This crate is the substitute for the PostgreSQL 13.1 instance the paper
//! injects cardinalities into (§6.1): a cost-based join-order optimizer that
//! accepts *externally supplied* sub-plan cardinality estimates, plus an
//! execution engine that evaluates the chosen plan and reports the work
//! actually performed. The end-to-end experiment pipeline is:
//!
//! 1. an estimator produces cardinalities for every connected sub-plan;
//! 2. [`optimizer::optimize`] turns them into a join tree (DP over connected
//!    subgraphs, hash-join cost model — greedy fallback for very wide
//!    queries);
//! 3. [`engine::TrueCardEngine`] executes the tree and yields the exact
//!    cardinality of every intermediate, from which [`cost::plan_cost`]
//!    computes the deterministic C_out-style execution cost that stands in
//!    for Postgres runtime.
//!
//! The execution engine is *count-preserving*: relations are grouped by the
//! join-key variables still needed, with multiplicity counts, so exact join
//! cardinalities are computed without materializing full tuples. NULL join
//! keys are kept as a sentinel that never matches, mirroring SQL semantics.

pub mod cost;
pub mod engine;
pub mod filter;
pub mod optimizer;
pub mod plan;
pub mod relation;

pub use cost::{plan_cost, CostModel, PlanCostBreakdown};
pub use engine::TrueCardEngine;
pub use filter::{compile_filter, filtered_count, filtered_selection, CompiledFilter};
pub use optimizer::{optimize, OptimizedPlan};
pub use plan::PlanNode;
pub use relation::{GroupedRel, NULL_KEY};
