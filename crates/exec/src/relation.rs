//! Count-preserving grouped relations — the engine's intermediate format.
//!
//! A relation is represented as a map from join-variable value tuples to
//! multiplicity counts. Joining two grouped relations on their shared
//! variables, then projecting away variables no longer referenced, computes
//! exact join cardinalities in time proportional to the number of *distinct
//! key combinations*, not the number of tuples.
//!
//! NULL join keys are encoded as [`NULL_KEY`], a sentinel that never matches
//! in a join (SQL `NULL = NULL` is unknown) but still contributes to
//! cardinality while unjoined.

use std::collections::HashMap;

/// Sentinel encoding a NULL join-key value. Generated data uses small
/// non-negative ids, so `i64::MIN` cannot collide.
pub const NULL_KEY: i64 = i64::MIN;

/// A bag of tuples over join variables, grouped with multiplicity counts.
#[derive(Debug, Clone)]
pub struct GroupedRel {
    /// Sorted variable ids labelling the key positions.
    vars: Vec<usize>,
    /// value-tuple (aligned with `vars`) → multiplicity.
    groups: HashMap<Box<[i64]>, f64>,
}

impl GroupedRel {
    /// Creates a relation over `vars` (must be sorted, deduplicated).
    pub fn new(vars: Vec<usize>) -> Self {
        debug_assert!(
            vars.windows(2).all(|w| w[0] < w[1]),
            "vars must be sorted unique"
        );
        GroupedRel {
            vars,
            groups: HashMap::new(),
        }
    }

    /// The variable ids of this relation.
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }

    /// Number of distinct key combinations.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Adds `count` tuples with the given key values (aligned with vars).
    pub fn add(&mut self, key: Box<[i64]>, count: f64) {
        debug_assert_eq!(key.len(), self.vars.len());
        *self.groups.entry(key).or_insert(0.0) += count;
    }

    /// Total tuple count (the relation's cardinality).
    pub fn cardinality(&self) -> f64 {
        self.groups.values().sum()
    }

    /// Iterates over (key, count) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[i64], f64)> {
        self.groups.iter().map(|(k, &c)| (k.as_ref(), c))
    }

    /// Natural join on shared variables. Tuples whose shared-variable values
    /// include [`NULL_KEY`] never match. The result's variables are the
    /// union of both sides'.
    pub fn join(&self, other: &GroupedRel) -> GroupedRel {
        // Determine shared and result variable layouts.
        let shared: Vec<usize> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect();
        let mut out_vars: Vec<usize> = self.vars.clone();
        for &v in &other.vars {
            if !out_vars.contains(&v) {
                out_vars.push(v);
            }
        }
        out_vars.sort_unstable();

        // Positions of shared vars in each side and of out vars in inputs.
        let pos_in = |vars: &[usize], v: usize| vars.iter().position(|&x| x == v).expect("var");
        let shared_l: Vec<usize> = shared.iter().map(|&v| pos_in(&self.vars, v)).collect();
        let shared_r: Vec<usize> = shared.iter().map(|&v| pos_in(&other.vars, v)).collect();

        // Index the smaller side by shared-key.
        let (build, probe, shared_b, shared_p, build_is_left) =
            if self.groups.len() <= other.groups.len() {
                (self, other, &shared_l, &shared_r, true)
            } else {
                (other, self, &shared_r, &shared_l, false)
            };

        let mut index: HashMap<Vec<i64>, Vec<(&[i64], f64)>> =
            HashMap::with_capacity(build.groups.len());
        'build: for (k, &c) in &build.groups {
            let mut sk = Vec::with_capacity(shared_b.len());
            for &p in shared_b.iter() {
                if k[p] == NULL_KEY {
                    continue 'build; // NULL never joins
                }
                sk.push(k[p]);
            }
            index.entry(sk).or_default().push((k.as_ref(), c));
        }

        let mut out = GroupedRel::new(out_vars);
        let out_vars_ref: Vec<usize> = out.vars.clone();
        let mut sk = Vec::with_capacity(shared_p.len());
        'probe: for (k, &c) in &probe.groups {
            sk.clear();
            for &p in shared_p.iter() {
                if k[p] == NULL_KEY {
                    continue 'probe;
                }
                sk.push(k[p]);
            }
            let Some(matches) = index.get(&sk) else {
                continue;
            };
            for &(bk, bc) in matches {
                let (lk, rk) = if build_is_left {
                    (bk, k.as_ref())
                } else {
                    (k.as_ref(), bk)
                };
                let key: Box<[i64]> = out_vars_ref
                    .iter()
                    .map(|&v| {
                        // Prefer the left side's value; they agree on shared.
                        match self.vars.iter().position(|&x| x == v) {
                            Some(p) => lk[p],
                            None => rk[pos_in(&other.vars, v)],
                        }
                    })
                    .collect();
                out.add(key, bc * c);
            }
        }
        out
    }

    /// Projects onto `keep` (sorted subset of this relation's vars), summing
    /// the counts of collapsed groups.
    pub fn project(&self, keep: &[usize]) -> GroupedRel {
        debug_assert!(keep.iter().all(|v| self.vars.contains(v)));
        if keep == self.vars.as_slice() {
            return self.clone();
        }
        let positions: Vec<usize> = keep
            .iter()
            .map(|&v| self.vars.iter().position(|&x| x == v).expect("var"))
            .collect();
        let mut out = GroupedRel::new(keep.to_vec());
        for (k, &c) in &self.groups {
            let key: Box<[i64]> = positions.iter().map(|&p| k[p]).collect();
            out.add(key, c);
        }
        out
    }

    /// Approximate heap footprint (for diagnostics).
    pub fn heap_bytes(&self) -> usize {
        self.groups.len() * (self.vars.len() * 8 + 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(vars: &[usize], entries: &[(&[i64], f64)]) -> GroupedRel {
        let mut r = GroupedRel::new(vars.to_vec());
        for (k, c) in entries {
            r.add((*k).into(), *c);
        }
        r
    }

    #[test]
    fn paper_figure2_two_table_join() {
        // Figure 2 of the paper: A|Q(A) has a:8, b:4, c:3 (+f:1, g:...);
        // B|Q(B) has a:6, b:5, c:5 (+e:2,...). |A ⋈ B| on the shared key
        // = 8·6 + 4·5 + 3·5 = 83.
        let a = rel(&[0], &[(&[1], 8.0), (&[2], 4.0), (&[3], 3.0), (&[4], 1.0)]);
        let b = rel(&[0], &[(&[1], 6.0), (&[2], 5.0), (&[3], 5.0), (&[5], 2.0)]);
        let j = a.join(&b);
        assert_eq!(j.cardinality(), 83.0);
        assert_eq!(j.num_groups(), 3);
    }

    #[test]
    fn join_on_disjoint_vars_is_cross_product() {
        let a = rel(&[0], &[(&[1], 2.0), (&[2], 3.0)]);
        let b = rel(&[1], &[(&[7], 4.0)]);
        let j = a.join(&b);
        assert_eq!(j.vars(), &[0, 1]);
        assert_eq!(j.cardinality(), (2.0 + 3.0) * 4.0);
    }

    #[test]
    fn null_keys_never_match_but_count_unjoined() {
        let a = rel(&[0], &[(&[NULL_KEY], 5.0), (&[1], 2.0)]);
        let b = rel(&[0], &[(&[NULL_KEY], 7.0), (&[1], 3.0)]);
        let j = a.join(&b);
        // Only the value-1 groups match: 2·3 = 6. NULLs drop out.
        assert_eq!(j.cardinality(), 6.0);
        // But cardinality before joining includes NULL groups.
        assert_eq!(a.cardinality(), 7.0);
    }

    #[test]
    fn multi_var_join_aligns_values() {
        // L(v0, v1), R(v1, v2): join on v1.
        let l = rel(&[0, 1], &[(&[10, 100], 2.0), (&[11, 101], 3.0)]);
        let r = rel(&[1, 2], &[(&[100, 7], 5.0), (&[100, 8], 1.0)]);
        let j = l.join(&r);
        assert_eq!(j.vars(), &[0, 1, 2]);
        assert_eq!(j.cardinality(), 2.0 * 5.0 + 2.0 * 1.0);
        // Check a specific output key: (v0=10, v1=100, v2=7) → 10.
        let found: Vec<(Vec<i64>, f64)> = j.iter().map(|(k, c)| (k.to_vec(), c)).collect();
        assert!(found.contains(&(vec![10, 100, 7], 10.0)));
    }

    #[test]
    fn project_sums_counts() {
        let l = rel(
            &[0, 1],
            &[(&[1, 10], 2.0), (&[1, 11], 3.0), (&[2, 10], 4.0)],
        );
        let p = l.project(&[0]);
        assert_eq!(p.vars(), &[0]);
        assert_eq!(p.cardinality(), 9.0);
        let m: std::collections::HashMap<i64, f64> = p.iter().map(|(k, c)| (k[0], c)).collect();
        assert_eq!(m[&1], 5.0);
        assert_eq!(m[&2], 4.0);
    }

    #[test]
    fn project_identity_is_noop() {
        let l = rel(&[0, 1], &[(&[1, 10], 2.0)]);
        let p = l.project(&[0, 1]);
        assert_eq!(p.num_groups(), 1);
        assert_eq!(p.cardinality(), 2.0);
    }

    #[test]
    fn join_is_commutative_in_cardinality() {
        let a = rel(&[0, 1], &[(&[1, 5], 2.0), (&[2, 5], 1.0), (&[2, 6], 4.0)]);
        let b = rel(&[1, 2], &[(&[5, 9], 3.0), (&[6, 9], 2.0)]);
        assert_eq!(a.join(&b).cardinality(), b.join(&a).cardinality());
    }

    #[test]
    fn empty_join_results() {
        let a = rel(&[0], &[(&[1], 2.0)]);
        let b = rel(&[0], &[(&[2], 3.0)]);
        let j = a.join(&b);
        assert_eq!(j.cardinality(), 0.0);
        assert_eq!(j.num_groups(), 0);
    }
}
