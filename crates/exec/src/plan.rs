//! Join-plan trees produced by the optimizer.

use fj_query::{Query, SubplanMask};

/// A binary join tree over the query's aliases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanNode {
    /// Filtered scan of one alias.
    Scan {
        /// Alias index into [`Query::tables`].
        alias: usize,
    },
    /// Hash join of two sub-plans (build = left, probe = right by
    /// convention; the cost model is symmetric so the distinction is
    /// presentational).
    Join {
        /// Build side.
        left: Box<PlanNode>,
        /// Probe side.
        right: Box<PlanNode>,
    },
}

impl PlanNode {
    /// Bitmask of aliases covered by this subtree.
    pub fn mask(&self) -> SubplanMask {
        match self {
            PlanNode::Scan { alias } => 1u64 << alias,
            PlanNode::Join { left, right } => left.mask() | right.mask(),
        }
    }

    /// Number of scan leaves.
    pub fn num_leaves(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 1,
            PlanNode::Join { left, right } => left.num_leaves() + right.num_leaves(),
        }
    }

    /// Collects the masks of all internal (join) nodes, bottom-up.
    pub fn internal_masks(&self) -> Vec<SubplanMask> {
        let mut out = Vec::new();
        self.collect_internal(&mut out);
        out
    }

    fn collect_internal(&self, out: &mut Vec<SubplanMask>) {
        if let PlanNode::Join { left, right } = self {
            left.collect_internal(out);
            right.collect_internal(out);
            out.push(self.mask());
        }
    }

    /// True when the tree is left-deep (every right child is a scan).
    pub fn is_left_deep(&self) -> bool {
        match self {
            PlanNode::Scan { .. } => true,
            PlanNode::Join { left, right } => {
                matches!(**right, PlanNode::Scan { .. }) && left.is_left_deep()
            }
        }
    }

    /// Renders the tree with alias names, e.g. `((a ⋈ b) ⋈ c)`.
    pub fn display(&self, query: &Query) -> String {
        match self {
            PlanNode::Scan { alias } => query.tables()[*alias].alias.clone(),
            PlanNode::Join { left, right } => {
                format!("({} ⋈ {})", left.display(query), right.display(query))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(i: usize) -> PlanNode {
        PlanNode::Scan { alias: i }
    }

    fn join(l: PlanNode, r: PlanNode) -> PlanNode {
        PlanNode::Join {
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn masks_union_children() {
        let p = join(join(scan(0), scan(2)), scan(1));
        assert_eq!(p.mask(), 0b111);
        assert_eq!(p.num_leaves(), 3);
    }

    #[test]
    fn internal_masks_bottom_up() {
        let p = join(join(scan(0), scan(1)), scan(2));
        assert_eq!(p.internal_masks(), vec![0b011, 0b111]);
    }

    #[test]
    fn left_deep_detection() {
        let ld = join(join(scan(0), scan(1)), scan(2));
        assert!(ld.is_left_deep());
        let bushy = join(join(scan(0), scan(1)), join(scan(2), scan(3)));
        assert!(!bushy.is_left_deep());
        assert_eq!(bushy.internal_masks().len(), 3);
    }
}
