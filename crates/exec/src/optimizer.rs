//! Cost-based join-order optimization with injected cardinalities.
//!
//! This is the stand-in for Postgres' planner in the paper's methodology
//! (§6.1: "we inject into PostgreSQL all sub-plan query cardinalities
//! estimated by each method, so the PostgreSQL optimizer uses the injected
//! cardinalities to optimize the query plan"). [`optimize`] runs exact
//! dynamic programming over connected subgraphs (DPsub) for queries up to
//! [`DP_MAX_ALIASES`] aliases and falls back to greedy operator ordering
//! (GOO) beyond that.

use crate::cost::CostModel;
use crate::plan::PlanNode;
use fj_query::{Query, SubplanMask};
use std::collections::HashMap;

/// Maximum alias count for exact DP (3^n subset-splitting work).
pub const DP_MAX_ALIASES: usize = 13;

/// An optimized plan with its estimated cost (under the *injected*
/// cardinalities, not the true ones).
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The chosen join tree.
    pub root: PlanNode,
    /// Cost under the injected cardinality function.
    pub est_cost: f64,
}

/// Chooses a join order for `query` given per-sub-plan cardinality
/// estimates (`card_of`: alias bitmask → estimated rows).
pub fn optimize(
    query: &Query,
    card_of: &mut dyn FnMut(SubplanMask) -> f64,
    model: &CostModel,
) -> OptimizedPlan {
    let n = query.num_tables();
    if n == 1 {
        return OptimizedPlan {
            root: PlanNode::Scan { alias: 0 },
            est_cost: card_of(1).max(0.0),
        };
    }
    let adj = adjacency(query);
    if n <= DP_MAX_ALIASES {
        dp_optimize(n, &adj, card_of, model)
    } else {
        greedy_optimize(n, &adj, card_of, model)
    }
}

fn adjacency(query: &Query) -> Vec<u64> {
    let mut adj = vec![0u64; query.num_tables()];
    for j in query.joins() {
        adj[j.left.alias] |= 1u64 << j.right.alias;
        adj[j.right.alias] |= 1u64 << j.left.alias;
    }
    adj
}

fn is_connected(mask: u64, adj: &[u64]) -> bool {
    if mask == 0 {
        return false;
    }
    let start = mask.trailing_zeros() as usize;
    let mut seen = 1u64 << start;
    let mut frontier = seen;
    while frontier != 0 {
        let mut next = 0u64;
        let mut rest = frontier;
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            next |= adj[i] & mask & !seen;
            rest &= rest - 1;
        }
        seen |= next;
        frontier = next;
    }
    seen == mask
}

fn touches(a: u64, b: u64, adj: &[u64]) -> bool {
    let mut rest = a;
    while rest != 0 {
        let i = rest.trailing_zeros() as usize;
        if adj[i] & b != 0 {
            return true;
        }
        rest &= rest - 1;
    }
    false
}

struct DpEntry {
    cost: f64,
    split: u64, // 0 for leaves
    card: f64,
}

fn dp_optimize(
    n: usize,
    adj: &[u64],
    card_of: &mut dyn FnMut(SubplanMask) -> f64,
    model: &CostModel,
) -> OptimizedPlan {
    let full = (1u64 << n) - 1;
    let mut table: HashMap<u64, DpEntry> = HashMap::new();
    for i in 0..n {
        let m = 1u64 << i;
        let c = card_of(m).max(0.0);
        table.insert(
            m,
            DpEntry {
                cost: c,
                split: 0,
                card: c,
            },
        );
    }
    // Enumerate masks in increasing numeric order: every proper submask of m
    // is < m, so dependencies are ready.
    for mask in 1..=full {
        if mask.count_ones() < 2 || !is_connected(mask, adj) {
            continue;
        }
        let out_card = card_of(mask).max(0.0);
        let mut best: Option<(f64, u64)> = None;
        // Enumerate submasks containing the lowest set bit (canonical side).
        let low = mask & mask.wrapping_neg();
        let mut s = (mask - 1) & mask;
        while s != 0 {
            if s & low != 0 {
                let c = mask & !s;
                if let (Some(le), Some(re)) = (table.get(&s), table.get(&c)) {
                    if touches(s, c, adj) {
                        let (build, probe) = if le.card <= re.card {
                            (le.card, re.card)
                        } else {
                            (re.card, le.card)
                        };
                        let cost = le.cost
                            + re.cost
                            + model.build_weight * build
                            + model.probe_weight * probe
                            + model.output_weight * out_card;
                        if best.is_none_or(|(bc, _)| cost < bc) {
                            best = Some((cost, s));
                        }
                    }
                }
            }
            s = (s - 1) & mask;
        }
        if let Some((cost, split)) = best {
            table.insert(
                mask,
                DpEntry {
                    cost,
                    split,
                    card: out_card,
                },
            );
        }
    }
    let root = rebuild(full, &table);
    let est_cost = table[&full].cost;
    OptimizedPlan { root, est_cost }
}

fn rebuild(mask: u64, table: &HashMap<u64, DpEntry>) -> PlanNode {
    let entry = table
        .get(&mask)
        .expect("connected mask must have a DP entry");
    if entry.split == 0 {
        PlanNode::Scan {
            alias: mask.trailing_zeros() as usize,
        }
    } else {
        let l = rebuild(entry.split, table);
        let r = rebuild(mask & !entry.split, table);
        PlanNode::Join {
            left: Box::new(l),
            right: Box::new(r),
        }
    }
}

/// Greedy operator ordering: repeatedly merge the adjacent pair of
/// fragments whose join has the smallest estimated cardinality.
fn greedy_optimize(
    n: usize,
    adj: &[u64],
    card_of: &mut dyn FnMut(SubplanMask) -> f64,
    model: &CostModel,
) -> OptimizedPlan {
    let mut frags: Vec<(u64, PlanNode, f64, f64)> = (0..n)
        .map(|i| {
            let m = 1u64 << i;
            let c = card_of(m).max(0.0);
            (m, PlanNode::Scan { alias: i }, c, c) // (mask, plan, card, cost)
        })
        .collect();
    while frags.len() > 1 {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..frags.len() {
            for j in i + 1..frags.len() {
                if !touches(frags[i].0, frags[j].0, adj) {
                    continue;
                }
                let out = card_of(frags[i].0 | frags[j].0).max(0.0);
                if best.is_none_or(|(_, _, b)| out < b) {
                    best = Some((i, j, out));
                }
            }
        }
        // If nothing is adjacent (disconnected input), merge arbitrarily.
        let (i, j, out) = best.unwrap_or_else(|| {
            let out = card_of(frags[0].0 | frags[1].0).max(0.0);
            (0, 1, out)
        });
        let (mj, pj, cj, costj) = frags.swap_remove(j);
        let (mi, pi, ci, costi) = frags.swap_remove(if i < j { i } else { i - 1 });
        let (build, probe) = if ci <= cj { (ci, cj) } else { (cj, ci) };
        let cost = costi
            + costj
            + model.build_weight * build
            + model.probe_weight * probe
            + model.output_weight * out;
        frags.push((
            mi | mj,
            PlanNode::Join {
                left: Box::new(pi),
                right: Box::new(pj),
            },
            out,
            cost,
        ));
    }
    let (_, root, _, cost) = frags.pop().expect("one fragment remains");
    OptimizedPlan {
        root,
        est_cost: cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_query::{FilterExpr, TableRef};
    use fj_storage::{Catalog, ColumnDef, Table, TableSchema, Value};

    fn catalog(n: usize) -> Catalog {
        let mut cat = Catalog::new();
        for i in 0..n {
            let schema = TableSchema::new(vec![ColumnDef::key("id"), ColumnDef::key("fk")]);
            cat.add_table(
                Table::from_rows(
                    &format!("t{i}"),
                    schema,
                    &[vec![Value::Int(0), Value::Int(0)]],
                )
                .unwrap(),
            )
            .unwrap();
        }
        cat
    }

    fn chain(cat: &Catalog, n: usize) -> Query {
        let tables: Vec<TableRef> = (0..n)
            .map(|i| TableRef::new(&format!("t{i}"), &format!("t{i}")))
            .collect();
        let joins: Vec<((String, String), (String, String))> = (1..n)
            .map(|i| {
                (
                    (format!("t{}", i - 1), "id".into()),
                    (format!("t{i}"), "fk".into()),
                )
            })
            .collect();
        Query::new(cat, tables, &joins, vec![FilterExpr::True; n]).unwrap()
    }

    #[test]
    fn picks_the_cheap_side_first() {
        let cat = catalog(3);
        let q = chain(&cat, 3);
        // t0–t1 join explodes; t1–t2 is tiny. Optimal: (t1 ⋈ t2) ⋈ t0.
        let mut cards: HashMap<u64, f64> = HashMap::new();
        cards.insert(0b001, 1000.0);
        cards.insert(0b010, 1000.0);
        cards.insert(0b100, 10.0);
        cards.insert(0b011, 1_000_000.0);
        cards.insert(0b110, 50.0);
        cards.insert(0b111, 2000.0);
        let plan = optimize(&q, &mut |m| cards[&m], &CostModel::default());
        // The first join must be {t1, t2}.
        assert_eq!(
            plan.root.internal_masks()[0],
            0b110,
            "plan {}",
            plan.root.display(&q)
        );
    }

    #[test]
    fn never_chooses_cross_products() {
        let cat = catalog(4);
        let q = chain(&cat, 4);
        // Even if a cross product looks cheap, splits must touch.
        let mut call_masks: Vec<u64> = Vec::new();
        let plan = optimize(
            &q,
            &mut |m| {
                call_masks.push(m);
                m.count_ones() as f64 // trivially increasing
            },
            &CostModel::default(),
        );
        for mask in plan.root.internal_masks() {
            let (sub, _) = q.project(mask);
            assert!(sub.is_connected(), "join node {mask:b} must be connected");
        }
        assert_eq!(plan.root.mask(), 0b1111);
    }

    #[test]
    fn dp_beats_or_ties_greedy() {
        // On a star query with adversarial cardinalities, exact DP must be
        // at least as good as greedy when both use the same cost model.
        let cat = catalog(5);
        let tables: Vec<TableRef> = (0..5)
            .map(|i| TableRef::new(&format!("t{i}"), &format!("t{i}")))
            .collect();
        let joins: Vec<((String, String), (String, String))> = (1..5)
            .map(|i| {
                (
                    ("t0".to_string(), "id".into()),
                    (format!("t{i}"), "fk".into()),
                )
            })
            .collect();
        let q = Query::new(&cat, tables, &joins, vec![FilterExpr::True; 5]).unwrap();
        let card = |m: u64| -> f64 {
            // Deterministic pseudo-random cardinalities.
            let h = (m.wrapping_mul(0x9E3779B97F4A7C15)) >> 40;
            (h % 10_000) as f64 + 1.0
        };
        let model = CostModel::default();
        let dp = dp_optimize(5, &adjacency(&q), &mut { |m| card(m) }, &model);
        let greedy = greedy_optimize(5, &adjacency(&q), &mut { |m| card(m) }, &model);
        assert!(dp.est_cost <= greedy.est_cost + 1e-9);
    }

    #[test]
    fn single_table_plan() {
        let cat = catalog(1);
        let q = Query::new(
            &cat,
            vec![TableRef::new("t0", "t0")],
            &[],
            vec![FilterExpr::True],
        )
        .unwrap();
        let plan = optimize(&q, &mut |_| 42.0, &CostModel::default());
        assert_eq!(plan.root, PlanNode::Scan { alias: 0 });
        assert_eq!(plan.est_cost, 42.0);
    }

    #[test]
    fn greedy_handles_wide_queries() {
        let n = 16; // beyond DP_MAX_ALIASES
        let cat = catalog(n);
        let q = chain(&cat, n);
        let plan = optimize(
            &q,
            &mut |m| m.count_ones() as f64 * 10.0,
            &CostModel::default(),
        );
        assert_eq!(plan.root.mask(), (1u64 << n) - 1);
        assert_eq!(plan.root.num_leaves(), n);
    }

    #[test]
    fn better_estimates_never_worsen_dp_cost_under_truth() {
        // Feeding the DP true cardinalities yields a plan whose true cost is
        // ≤ the true cost of the plan chosen under corrupted estimates.
        let cat = catalog(4);
        let q = chain(&cat, 4);
        let truth: HashMap<u64, f64> = [
            (0b0001u64, 500.0),
            (0b0010, 80.0),
            (0b0100, 900.0),
            (0b1000, 20.0),
            (0b0011, 4000.0),
            (0b0110, 100.0),
            (0b1100, 60.0),
            (0b0111, 8000.0),
            (0b1110, 300.0),
            (0b1111, 1000.0),
        ]
        .into_iter()
        .collect();
        let model = CostModel::default();
        let plan_true = optimize(&q, &mut |m| truth[&m], &model);
        // Corrupt: pretend the middle join is free.
        let plan_bad = optimize(
            &q,
            &mut |m| if m == 0b0011 { 1.0 } else { truth[&m] },
            &model,
        );
        let cost = |p: &PlanNode| crate::cost::plan_cost(p, &mut |m| truth[&m], &model).total;
        assert!(cost(&plan_true.root) <= cost(&plan_bad.root));
    }
}
