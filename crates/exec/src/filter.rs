//! Re-export of the compiled-filter machinery.
//!
//! Filter compilation lives in [`fj_query::compile`] so that estimator
//! crates can evaluate filters on tables (and on their samples) without
//! depending on the executor. The executor re-exports it under its
//! historical path.

pub use fj_query::compile::{compile_filter, filtered_count, filtered_selection, CompiledFilter};
