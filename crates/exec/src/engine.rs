//! Exact-cardinality engine over grouped relations.
//!
//! [`TrueCardEngine`] answers "what is the true cardinality of this
//! (sub-)plan?" for one query. It filters each alias once, groups the
//! surviving rows by the alias's join variables, and then computes any
//! connected sub-plan's cardinality by hash-joining grouped relations,
//! projecting away variables as they stop being referenced. This is both
//! the `TrueCard` oracle baseline of the paper's evaluation and the
//! mechanism behind the execution-cost metric (every plan-tree node's true
//! cardinality).

use crate::filter::filtered_selection;
use crate::relation::{GroupedRel, NULL_KEY};
use fj_query::{connected_subplans, Query, QueryGraph, SubplanMask};
use fj_storage::Catalog;
use std::collections::HashMap;

/// Per-query engine with cached per-alias grouped relations and a memo
/// table of sub-plan cardinalities.
pub struct TrueCardEngine {
    graph: QueryGraph,
    alias_rels: Vec<GroupedRel>,
    alias_filtered: Vec<u64>,
    num_aliases: usize,
    cache: HashMap<SubplanMask, f64>,
}

impl TrueCardEngine {
    /// Filters and groups every alias of `query` against `catalog`.
    pub fn new(catalog: &Catalog, query: &Query) -> Self {
        let graph = QueryGraph::analyze(query);
        let n = query.num_tables();
        let mut alias_rels = Vec::with_capacity(n);
        let mut alias_filtered = Vec::with_capacity(n);
        for (i, tref) in query.tables().iter().enumerate() {
            let table = catalog
                .table(&tref.table)
                .expect("query validated against catalog");
            let sel = filtered_selection(table, query.filter(i));
            alias_filtered.push(sel.len() as u64);

            let vars = graph.alias_vars(i);
            // Member columns per var within this alias.
            let cols_per_var: Vec<Vec<usize>> = vars
                .iter()
                .map(|&v| {
                    graph
                        .alias_keys(i)
                        .iter()
                        .filter(|&&(_, var)| var == v)
                        .map(|&(c, _)| c)
                        .collect()
                })
                .collect();
            let mut rel = GroupedRel::new(vars.clone());
            let mut key = vec![0i64; vars.len()];
            'row: for &r in &sel {
                let r = r as usize;
                for (slot, cols) in key.iter_mut().zip(&cols_per_var) {
                    if cols.len() == 1 {
                        *slot = table.column(cols[0]).key_at(r).unwrap_or(NULL_KEY);
                    } else {
                        // Two columns of this alias are in the same
                        // equivalence class (e.g. `ml.movie_id` and
                        // `ml.linked_movie_id` both equated to the same
                        // title): the row participates only if they are all
                        // equal and non-NULL.
                        let mut val: Option<i64> = None;
                        for &c in cols {
                            match table.column(c).key_at(r) {
                                None => continue 'row,
                                Some(v) => match val {
                                    None => val = Some(v),
                                    Some(prev) if prev == v => {}
                                    Some(_) => continue 'row,
                                },
                            }
                        }
                        *slot = val.expect("cols is non-empty");
                    }
                }
                rel.add(key.clone().into_boxed_slice(), 1.0);
            }
            alias_rels.push(rel);
        }
        TrueCardEngine {
            graph,
            alias_rels,
            alias_filtered,
            num_aliases: n,
            cache: HashMap::new(),
        }
    }

    /// Filtered base-table cardinality of alias `i` (counts rows with NULL
    /// join keys too, as a single-table query would).
    pub fn base_cardinality(&self, alias: usize) -> u64 {
        self.alias_filtered[alias]
    }

    /// Exact cardinality of the sub-plan over the aliases in `mask`.
    pub fn cardinality(&mut self, mask: SubplanMask) -> f64 {
        assert!(
            mask != 0 && (self.num_aliases >= 64 || mask >> self.num_aliases == 0),
            "sub-plan mask {mask:#b} out of range for {} aliases",
            self.num_aliases
        );
        if mask.count_ones() == 1 {
            return self.alias_filtered[mask.trailing_zeros() as usize] as f64;
        }
        if let Some(&c) = self.cache.get(&mask) {
            return c;
        }
        let card = self.compute(mask);
        self.cache.insert(mask, card);
        card
    }

    /// Exact cardinality of the whole query.
    pub fn full_cardinality(&mut self) -> f64 {
        let mask = (1u64 << self.num_aliases) - 1;
        self.cardinality(mask)
    }

    /// Cardinalities of every connected sub-plan with at least `min_size`
    /// aliases, as (mask, true cardinality) pairs.
    pub fn subplan_cardinalities(
        &mut self,
        query: &Query,
        min_size: u32,
    ) -> Vec<(SubplanMask, f64)> {
        connected_subplans(query, min_size)
            .into_iter()
            .map(|m| (m, self.cardinality(m)))
            .collect()
    }

    fn compute(&mut self, mask: SubplanMask) -> f64 {
        // Greedy smallest-first join order; adjacency-driven to avoid cross
        // products when the mask is connected.
        let members: Vec<usize> = (0..self.num_aliases)
            .filter(|&i| mask & (1u64 << i) != 0)
            .collect();
        let start = *members
            .iter()
            .min_by_key(|&&i| self.alias_rels[i].num_groups())
            .expect("mask is non-empty");
        let mut joined_mask = 1u64 << start;
        let mut acc = self.alias_rels[start].clone();
        let needed = self.needed_vars(joined_mask, mask);
        let keep: Vec<usize> = acc
            .vars()
            .iter()
            .copied()
            .filter(|v| needed.contains(v))
            .collect();
        acc = acc.project(&keep);

        while joined_mask != mask {
            // Prefer an adjacent remaining alias with the fewest groups.
            let next = members
                .iter()
                .copied()
                .filter(|&i| joined_mask & (1u64 << i) == 0)
                .min_by_key(|&i| {
                    let adjacent = self
                        .graph
                        .neighbors(i)
                        .iter()
                        .any(|&nb| joined_mask & (1u64 << nb) != 0);
                    (!adjacent, self.alias_rels[i].num_groups())
                })
                .expect("mask not exhausted");
            joined_mask |= 1u64 << next;
            acc = acc.join(&self.alias_rels[next]);
            if acc.num_groups() == 0 {
                return 0.0;
            }
            let needed = self.needed_vars(joined_mask, mask);
            let keep: Vec<usize> = acc
                .vars()
                .iter()
                .copied()
                .filter(|v| needed.contains(v))
                .collect();
            acc = acc.project(&keep);
        }
        acc.cardinality()
    }

    /// Variables still referenced by aliases of `mask` outside `joined`.
    fn needed_vars(&self, joined: u64, mask: u64) -> Vec<usize> {
        let mut vars = Vec::new();
        for v in self.graph.vars() {
            let pending = v
                .members
                .iter()
                .any(|cr| mask & (1u64 << cr.alias) != 0 && joined & (1u64 << cr.alias) == 0);
            if pending {
                vars.push(v.id);
            }
        }
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_query::{parse_query, FilterExpr, Predicate, TableRef};
    use fj_storage::{ColumnDef, DataType, Table, TableSchema, Value};

    /// Brute-force nested-loop join counter for cross-checking.
    fn brute_force(catalog: &Catalog, query: &Query) -> f64 {
        // Enumerate the cartesian product of filtered selections, counting
        // rows satisfying all join predicates. Exponential — tiny inputs only.
        let sels: Vec<Vec<u32>> = query
            .tables()
            .iter()
            .enumerate()
            .map(|(i, t)| filtered_selection(catalog.table(&t.table).unwrap(), query.filter(i)))
            .collect();
        let tables: Vec<&Table> = query
            .tables()
            .iter()
            .map(|t| catalog.table(&t.table).unwrap())
            .collect();
        let mut count = 0f64;
        let mut idx = vec![0usize; sels.len()];
        'outer: loop {
            let rows: Vec<usize> = idx.iter().zip(&sels).map(|(&i, s)| s[i] as usize).collect();
            let ok = query.joins().iter().all(|j| {
                let l = tables[j.left.alias]
                    .column(j.left.column)
                    .key_at(rows[j.left.alias]);
                let r = tables[j.right.alias]
                    .column(j.right.column)
                    .key_at(rows[j.right.alias]);
                matches!((l, r), (Some(a), Some(b)) if a == b)
            });
            if ok {
                count += 1.0;
            }
            // Advance the odometer.
            for pos in (0..idx.len()).rev() {
                idx[pos] += 1;
                if idx[pos] < sels[pos].len() {
                    continue 'outer;
                }
                idx[pos] = 0;
                if pos == 0 {
                    break 'outer;
                }
            }
        }
        count
    }

    fn tiny_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let a = Table::from_rows(
            "a",
            TableSchema::new(vec![
                ColumnDef::key("id"),
                ColumnDef::new("x", DataType::Int),
            ]),
            &[
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(20)],
                vec![Value::Int(2), Value::Int(30)],
                vec![Value::Null, Value::Int(40)],
                vec![Value::Int(3), Value::Int(50)],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "b",
            TableSchema::new(vec![
                ColumnDef::key("a_id"),
                ColumnDef::key("c_id"),
                ColumnDef::new("y", DataType::Int),
            ]),
            &[
                vec![Value::Int(1), Value::Int(7), Value::Int(1)],
                vec![Value::Int(1), Value::Int(8), Value::Int(2)],
                vec![Value::Int(2), Value::Int(7), Value::Int(3)],
                vec![Value::Int(9), Value::Int(7), Value::Int(4)],
                vec![Value::Null, Value::Int(8), Value::Int(5)],
            ],
        )
        .unwrap();
        let c = Table::from_rows(
            "c",
            TableSchema::new(vec![
                ColumnDef::key("id"),
                ColumnDef::new("z", DataType::Int),
            ]),
            &[
                vec![Value::Int(7), Value::Int(100)],
                vec![Value::Int(7), Value::Int(200)],
                vec![Value::Int(8), Value::Int(300)],
            ],
        )
        .unwrap();
        cat.add_table(a).unwrap();
        cat.add_table(b).unwrap();
        cat.add_table(c).unwrap();
        cat.relate("a", "id", "b", "a_id").unwrap();
        cat.relate("b", "c_id", "c", "id").unwrap();
        cat
    }

    #[test]
    fn two_table_join_matches_brute_force() {
        let cat = tiny_catalog();
        let q = parse_query(&cat, "SELECT COUNT(*) FROM a, b WHERE a.id = b.a_id;").unwrap();
        let mut eng = TrueCardEngine::new(&cat, &q);
        // a=1 (2 rows) × b=1 (2 rows) + a=2 × b=2 = 4 + 1 = 5.
        assert_eq!(eng.full_cardinality(), 5.0);
        assert_eq!(eng.full_cardinality(), brute_force(&cat, &q));
    }

    #[test]
    fn chain_join_matches_brute_force() {
        let cat = tiny_catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM a, b, c WHERE a.id = b.a_id AND b.c_id = c.id;",
        )
        .unwrap();
        let mut eng = TrueCardEngine::new(&cat, &q);
        assert_eq!(eng.full_cardinality(), brute_force(&cat, &q));
    }

    #[test]
    fn filters_apply_before_joining() {
        let cat = tiny_catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM a, b WHERE a.id = b.a_id AND a.x >= 20 AND b.y <= 3;",
        )
        .unwrap();
        let mut eng = TrueCardEngine::new(&cat, &q);
        assert_eq!(eng.full_cardinality(), brute_force(&cat, &q));
    }

    #[test]
    fn singleton_counts_include_null_keys() {
        let cat = tiny_catalog();
        let q = parse_query(&cat, "SELECT COUNT(*) FROM a, b WHERE a.id = b.a_id;").unwrap();
        let mut eng = TrueCardEngine::new(&cat, &q);
        // Alias a has 5 rows including the NULL-key row.
        assert_eq!(eng.cardinality(0b01), 5.0);
        assert_eq!(eng.cardinality(0b10), 5.0);
    }

    #[test]
    fn subplan_cardinalities_cover_all_masks() {
        let cat = tiny_catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM a, b, c WHERE a.id = b.a_id AND b.c_id = c.id;",
        )
        .unwrap();
        let mut eng = TrueCardEngine::new(&cat, &q);
        let cards = eng.subplan_cardinalities(&q, 1);
        // Chain of 3: 6 connected sub-plans.
        assert_eq!(cards.len(), 6);
        for (mask, card) in cards {
            let (sub, _) = q.project(mask);
            let mut sub_eng = TrueCardEngine::new(&cat, &sub);
            assert_eq!(sub_eng.full_cardinality(), card, "mask {mask:b}");
        }
    }

    #[test]
    fn self_join_on_two_key_columns() {
        // b ⋈ b on a_id = c_id (self join through two aliases).
        let cat = tiny_catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM b b1, b b2 WHERE b1.a_id = b2.c_id;",
        )
        .unwrap();
        let mut eng = TrueCardEngine::new(&cat, &q);
        assert_eq!(eng.full_cardinality(), brute_force(&cat, &q));
    }

    #[test]
    fn cyclic_same_pair_two_conditions() {
        // a ⋈ b on both keys: a.id = b.a_id AND a.id = b.c_id — forces
        // b rows with a_id == c_id (none in the fixture except… check).
        let cat = tiny_catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM a, b WHERE a.id = b.a_id AND a.id = b.c_id;",
        )
        .unwrap();
        let mut eng = TrueCardEngine::new(&cat, &q);
        assert_eq!(eng.full_cardinality(), brute_force(&cat, &q));
    }

    #[test]
    fn randomized_against_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Random small databases and random chain queries.
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut cat = Catalog::new();
            let mk = |name: &str, keys: Vec<&str>, rng: &mut StdRng| {
                let n = rng.gen_range(3..10);
                let mut cols: Vec<ColumnDef> = keys.iter().map(|k| ColumnDef::key(k)).collect();
                cols.push(ColumnDef::new("v", DataType::Int));
                let schema = TableSchema::new(cols);
                let rows: Vec<Vec<Value>> = (0..n)
                    .map(|_| {
                        let mut row: Vec<Value> = keys
                            .iter()
                            .map(|_| {
                                if rng.gen_bool(0.15) {
                                    Value::Null
                                } else {
                                    Value::Int(rng.gen_range(1..5))
                                }
                            })
                            .collect();
                        row.push(Value::Int(rng.gen_range(0..10)));
                        row
                    })
                    .collect();
                Table::from_rows(name, schema, &rows).unwrap()
            };
            cat.add_table(mk("a", vec!["id"], &mut rng)).unwrap();
            cat.add_table(mk("b", vec!["a_id", "c_id"], &mut rng))
                .unwrap();
            cat.add_table(mk("c", vec!["id"], &mut rng)).unwrap();
            cat.relate("a", "id", "b", "a_id").unwrap();
            cat.relate("b", "c_id", "c", "id").unwrap();
            let q = Query::new(
                &cat,
                vec![
                    TableRef::new("a", "a"),
                    TableRef::new("b", "b"),
                    TableRef::new("c", "c"),
                ],
                &[
                    (("a".into(), "id".into()), ("b".into(), "a_id".into())),
                    (("b".into(), "c_id".into()), ("c".into(), "id".into())),
                ],
                vec![
                    FilterExpr::pred(Predicate::cmp("v", fj_query::CmpOp::Ge, 3)),
                    FilterExpr::True,
                    FilterExpr::pred(Predicate::cmp("v", fj_query::CmpOp::Le, 8)),
                ],
            )
            .unwrap();
            let mut eng = TrueCardEngine::new(&cat, &q);
            assert_eq!(eng.full_cardinality(), brute_force(&cat, &q), "seed {seed}");
        }
    }
}
