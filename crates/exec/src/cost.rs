//! Hash-join cost model.
//!
//! The planner and the end-to-end harness use the same cost shape, the
//! `C_mm` model of "How Good Are Query Optimizers, Really?" (Leis et al.,
//! which introduced the JOB benchmark the paper evaluates on): a hash join
//! costs its output plus a constant factor times the build and probe
//! inputs; scans cost their input. During *planning* the model is fed
//! estimated cardinalities; during *evaluation* it is fed true
//! cardinalities from [`crate::TrueCardEngine`], giving a deterministic,
//! hardware-independent proxy for Postgres execution time.

use crate::plan::PlanNode;
use fj_query::SubplanMask;

/// Cost-model constants.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Weight of build-side input tuples (hash table construction).
    pub build_weight: f64,
    /// Weight of probe-side input tuples.
    pub probe_weight: f64,
    /// Weight of output tuples.
    pub output_weight: f64,
    /// Tuples-per-second rate converting cost units to simulated seconds.
    pub tuples_per_second: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // C_mm-like: output dominates, build is twice as expensive as probe.
        CostModel {
            build_weight: 2.0,
            probe_weight: 1.0,
            output_weight: 1.0,
            tuples_per_second: 2.0e6,
        }
    }
}

/// Cost evaluation of a plan under a cardinality function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCostBreakdown {
    /// Total model cost in tuple units.
    pub total: f64,
    /// `C_out`: the sum of intermediate (join-node) cardinalities — the
    /// classic plan-quality metric.
    pub c_out: f64,
    /// Sum of base (scan-leaf) cardinalities.
    pub base: f64,
}

impl PlanCostBreakdown {
    /// Simulated wall-clock seconds under `model`.
    pub fn seconds(&self, model: &CostModel) -> f64 {
        self.total / model.tuples_per_second
    }
}

/// Costs `plan` using `card_of` (mask → cardinality) under `model`.
///
/// `card_of` may be estimated (planning) or exact (evaluation).
pub fn plan_cost(
    plan: &PlanNode,
    card_of: &mut dyn FnMut(SubplanMask) -> f64,
    model: &CostModel,
) -> PlanCostBreakdown {
    fn walk(
        node: &PlanNode,
        card_of: &mut dyn FnMut(SubplanMask) -> f64,
        model: &CostModel,
        acc: &mut PlanCostBreakdown,
    ) -> f64 {
        match node {
            PlanNode::Scan { .. } => {
                let c = card_of(node.mask()).max(0.0);
                acc.base += c;
                acc.total += c;
                c
            }
            PlanNode::Join { left, right } => {
                let lc = walk(left, card_of, model, acc);
                let rc = walk(right, card_of, model, acc);
                let out = card_of(node.mask()).max(0.0);
                // Build on the smaller input, as a real executor would.
                let (build, probe) = if lc <= rc { (lc, rc) } else { (rc, lc) };
                acc.total += model.build_weight * build
                    + model.probe_weight * probe
                    + model.output_weight * out;
                acc.c_out += out;
                out
            }
        }
    }
    let mut acc = PlanCostBreakdown {
        total: 0.0,
        c_out: 0.0,
        base: 0.0,
    };
    walk(plan, card_of, model, &mut acc);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn cards(pairs: &[(u64, f64)]) -> HashMap<u64, f64> {
        pairs.iter().copied().collect()
    }

    fn scan(i: usize) -> PlanNode {
        PlanNode::Scan { alias: i }
    }

    fn join(l: PlanNode, r: PlanNode) -> PlanNode {
        PlanNode::Join {
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn two_table_cost() {
        let m = CostModel::default();
        let table = cards(&[(0b01, 100.0), (0b10, 10.0), (0b11, 50.0)]);
        let plan = join(scan(0), scan(1));
        let cost = plan_cost(&plan, &mut |mask| table[&mask], &m);
        // base: 110; join: build on 10 (smaller), probe 100, out 50.
        assert_eq!(cost.base, 110.0);
        assert_eq!(cost.c_out, 50.0);
        assert_eq!(cost.total, 110.0 + 2.0 * 10.0 + 100.0 + 50.0);
        assert!(cost.seconds(&m) > 0.0);
    }

    #[test]
    fn cout_sums_internal_nodes_only() {
        let table = cards(&[
            (0b001, 10.0),
            (0b010, 20.0),
            (0b100, 30.0),
            (0b011, 5.0),
            (0b111, 7.0),
        ]);
        let plan = join(join(scan(0), scan(1)), scan(2));
        let cost = plan_cost(&plan, &mut |m| table[&m], &CostModel::default());
        assert_eq!(cost.c_out, 5.0 + 7.0);
        assert_eq!(cost.base, 60.0);
    }

    #[test]
    fn bad_plan_costs_more() {
        // Joining the two big tables first (huge intermediate) must cost
        // more than going through the small one.
        let table = cards(&[
            (0b001, 1000.0),
            (0b010, 1000.0),
            (0b100, 10.0),
            (0b011, 500_000.0),
            (0b101, 100.0),
            (0b110, 100.0),
            (0b111, 900.0),
        ]);
        let m = CostModel::default();
        let bad = join(join(scan(0), scan(1)), scan(2));
        let good = join(join(scan(0), scan(2)), scan(1));
        let cb = plan_cost(&bad, &mut |x| table[&x], &m);
        let cg = plan_cost(&good, &mut |x| table[&x], &m);
        assert!(
            cb.total > 10.0 * cg.total,
            "bad {} vs good {}",
            cb.total,
            cg.total
        );
    }

    #[test]
    fn negative_estimates_are_clamped() {
        let plan = join(scan(0), scan(1));
        let cost = plan_cost(&plan, &mut |_| -5.0, &CostModel::default());
        assert_eq!(cost.total, 0.0);
    }
}
