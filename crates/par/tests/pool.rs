//! Contract tests of the scoped worker pool: the determinism, panic, and
//! thread-safety guarantees parallel training is built on.

use fj_par::WorkerPool;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Work stealing must never leak into results: whatever order workers claim
/// tasks in, the output equals the serial run. Tasks take deliberately
/// uneven time so fast workers overtake slow ones and the claim order
/// differs from the index order.
#[test]
fn output_is_independent_of_stealing_order() {
    let serial: Vec<u64> = WorkerPool::new(1).run_indexed(64, uneven_task);
    for threads in [2, 3, 4, 8, 16] {
        let parallel = WorkerPool::new(threads).run_indexed(64, uneven_task);
        assert_eq!(parallel, serial, "{threads} threads diverged from serial");
    }
}

fn uneven_task(i: usize) -> u64 {
    // Index-dependent spin so task durations differ by ~100×.
    let rounds = ((i * 7919) % 97 + 1) * 200;
    let mut x = i as u64 ^ 0x9E37_79B9_7F4A_7C15;
    for _ in 0..rounds {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    std::hint::black_box(x)
}

/// Every index is claimed exactly once across workers.
#[test]
fn each_task_runs_exactly_once() {
    let counts: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
    let out = WorkerPool::new(6).run_indexed(200, |i| {
        counts[i].fetch_add(1, Ordering::Relaxed);
        i
    });
    assert_eq!(out.len(), 200);
    for (i, c) in counts.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            1,
            "task {i} ran a wrong number of times"
        );
    }
}

/// A panicking task must fail the whole fan-out, not silently drop a
/// worker: the panic propagates out of `run_indexed` after every scoped
/// thread has been joined.
#[test]
fn task_panic_propagates_to_the_caller() {
    for threads in [1usize, 4] {
        let result = std::panic::catch_unwind(|| {
            WorkerPool::new(threads).run_indexed(32, |i| {
                if i == 17 {
                    panic!("task 17 exploded");
                }
                i
            })
        });
        assert!(result.is_err(), "{threads} threads: panic was swallowed");
    }
}

/// Non-panicking tasks still complete when a sibling panics mid-run (the
/// scope joins all workers before resuming the unwind), so shared side
/// effects are never left half-applied by surviving workers.
#[test]
fn surviving_workers_drain_their_tasks_on_sibling_panic() {
    let ran = AtomicUsize::new(0);
    let result = std::panic::catch_unwind(|| {
        WorkerPool::new(4).run_indexed(64, |i| {
            if i == 0 {
                panic!("first task panics");
            }
            ran.fetch_add(1, Ordering::Relaxed);
        })
    });
    assert!(result.is_err());
    assert_eq!(ran.load(Ordering::Relaxed), 63, "surviving tasks all ran");
}

// Compile-time thread-safety contract, mirroring
// crates/core/tests/send_sync.rs: the pool itself crosses threads (it is
// copied into benchmark/training configs), so it must stay Send + Sync.
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn pool_is_send_sync() {
    assert_send_sync::<WorkerPool>();
}
