//! # fj-par — a std-only scoped worker pool
//!
//! The offline training pipeline fans embarrassingly-parallel work (per-key
//! frequency profiling, per-group binning, per-table model fits) across
//! cores. The build environment has no registry access, so this is the same
//! philosophy as `fj-service`'s request pool — plain `std::thread` — but
//! *scoped*: workers borrow the caller's data for the duration of one
//! fan-out instead of owning `Arc`s for the life of a service.
//!
//! The scheduling contract is what makes parallel training safe to adopt:
//!
//! * **Determinism.** Tasks are indexed `0..n`; workers *steal* indices from
//!   a shared atomic counter in any order, but results are returned in index
//!   order and each task computes from its index alone — so the output is
//!   bit-identical regardless of thread count or interleaving.
//! * **Panic propagation.** A panicking task panics the whole
//!   [`WorkerPool::run_indexed`] call after every worker has stopped (scoped
//!   threads are always joined), instead of silently losing a worker.
//! * **Inline fast path.** One thread, zero or one task, or a pool of one
//!   runs the tasks inline on the caller's stack — no spawn cost, and the
//!   serial build path is *the same code* as the parallel one.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width scoped worker pool (see crate docs).
///
/// The pool is a value, not a set of live threads: threads are spawned per
/// [`WorkerPool::run_indexed`] call inside a [`std::thread::scope`], so the
/// borrow checker proves tasks cannot outlive the data they borrow.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers. `0` means "all available cores"
    /// ([`std::thread::available_parallelism`], 1 when unknown).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        WorkerPool { threads }
    }

    /// Worker count this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs tasks `0..n` across the pool and returns their results in
    /// index order. `task` must be a pure function of its index (plus
    /// whatever shared state it reads) for the determinism contract to
    /// hold; the pool guarantees placement, not purity.
    pub fn run_indexed<T, F>(&self, n: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(task).collect();
        }
        // Work stealing: each worker pulls the next unclaimed index. Results
        // are collected per worker and stitched back in index order, so the
        // steal order never leaks into the output.
        let next = AtomicUsize::new(0);
        let done = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, task(i)));
                    }
                    done.lock().expect("pool results lock").extend(local);
                });
            }
        });
        let mut indexed = done.into_inner().expect("pool results lock");
        indexed.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(indexed.len(), n, "every task ran exactly once");
        indexed.into_iter().map(|(_, t)| t).collect()
    }

    /// Maps `f` over a slice through the pool, preserving order.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run_indexed(items.len(), |i| f(&items[i]))
    }
}

impl Default for WorkerPool {
    /// All available cores.
    fn default() -> Self {
        WorkerPool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_means_available_cores() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(WorkerPool::default().threads(), pool.threads());
    }

    #[test]
    fn empty_and_single_task_run_inline() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.run_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(3);
        let items: Vec<String> = (0..20).map(|i| format!("v{i}")).collect();
        let out = pool.map(&items, |s| s.len());
        assert_eq!(out, items.iter().map(String::len).collect::<Vec<_>>());
    }
}
