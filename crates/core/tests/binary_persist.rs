//! Differential persistence battery: for each persistable estimator
//! backend, at two scales, on both synthetic workloads, the binary `.fjm`
//! path must be **bit-identical** — the loaded model's estimates equal the
//! in-memory model's and the JSON path's by exact `f64::to_bits`
//! comparison (no tolerance), and save→load→save reproduces the same
//! bytes.
//!
//! Backends covered: `TrueScan`, `BayesNet`, `Sampling` — the three
//! `BaseEstimatorKind`s a `FactorJoinModel` can persist. `PostgresLike`
//! is not here because it is a *baseline* estimator (`fj-baselines`), not
//! a FactorJoin backend, and has no persistence path to differentiate.
//!
//! Bit-identity is a meaningful contract here because persistence stores
//! bins + key statistics verbatim (raw slab copies in the binary format,
//! exact `f64` bits in both formats) and deterministically rebuilds
//! single-table estimators from the catalog — so *any* bit of drift means
//! a codec bug, not noise.

use factorjoin::{
    load_model, save_model, save_model_json, BaseEstimatorKind, BinBudget, BinningStrategy,
    FactorJoinConfig, FactorJoinModel,
};
use fj_datagen::{
    imdb_catalog, imdb_job_workload, stats_catalog, stats_ceb_workload, ImdbConfig, StatsConfig,
    WorkloadConfig,
};
use fj_query::Query;
use fj_stats::BnConfig;
use fj_storage::Catalog;

fn config(estimator: BaseEstimatorKind, bins: usize) -> FactorJoinConfig {
    FactorJoinConfig {
        bin_budget: BinBudget::Uniform(bins),
        strategy: BinningStrategy::Gbsa,
        estimator,
        seed: 7,
        threads: 1,
    }
}

/// Trains a model, persists it through both formats, and proves the three
/// estimate streams (in-memory, binary-loaded, JSON-loaded) bit-identical
/// over `queries` — plus binary save→load→save byte-identity.
fn assert_roundtrip_bit_identical(
    cat: &Catalog,
    queries: &[Query],
    cfg: FactorJoinConfig,
    label: &str,
) {
    let model = FactorJoinModel::train(cat, cfg);
    let dir = std::env::temp_dir().join(format!("fj_binary_persist_{label}"));
    std::fs::create_dir_all(&dir).unwrap();
    let fjm = dir.join("model.fjm");
    let json = dir.join("model.json");
    save_model(&model, &fjm).unwrap();
    save_model_json(&model, &json).unwrap();

    let from_binary = load_model(&fjm, cat).unwrap();
    let from_json = load_model(&json, cat).unwrap();

    // Full-query estimates and every sub-plan of the join lattice: all
    // three models must agree to the last bit.
    let mut s0 = model.subplan_estimator();
    let mut s1 = from_binary.subplan_estimator();
    let mut s2 = from_json.subplan_estimator();
    for (i, q) in queries.iter().enumerate() {
        let e0 = model.estimate(q);
        let e1 = from_binary.estimate(q);
        let e2 = from_json.estimate(q);
        assert_eq!(
            e0.to_bits(),
            e1.to_bits(),
            "{label} q{i}: binary-loaded estimate diverged ({e0} vs {e1})"
        );
        assert_eq!(
            e0.to_bits(),
            e2.to_bits(),
            "{label} q{i}: JSON-loaded estimate diverged ({e0} vs {e2})"
        );
        let p0 = s0.estimate_subplans(q, 1);
        assert_eq!(p0, s1.estimate_subplans(q, 1), "{label} q{i}: sub-plans");
        assert_eq!(p0, s2.estimate_subplans(q, 1), "{label} q{i}: sub-plans");
    }

    // The binary format is canonical: re-saving the loaded model must
    // reproduce the original file byte for byte.
    let again = dir.join("model2.fjm");
    save_model(&from_binary, &again).unwrap();
    assert_eq!(
        std::fs::read(&fjm).unwrap(),
        std::fs::read(&again).unwrap(),
        "{label}: binary save->load->save is not byte-identical"
    );

    std::fs::remove_dir_all(&dir).ok();
}

fn stats_cat(scale: f64) -> Catalog {
    stats_catalog(&StatsConfig {
        scale,
        ..Default::default()
    })
}

fn imdb_cat(scale: f64) -> Catalog {
    imdb_catalog(&ImdbConfig {
        scale,
        ..Default::default()
    })
}

const SCALES: [f64; 2] = [0.02, 0.06];

#[test]
fn truescan_roundtrips_bit_identical_on_stats_ceb() {
    for scale in SCALES {
        let cat = stats_cat(scale);
        let wl = stats_ceb_workload(&cat, &WorkloadConfig::tiny(11));
        assert_roundtrip_bit_identical(
            &cat,
            &wl,
            config(BaseEstimatorKind::TrueScan, 20),
            &format!("truescan_stats_{scale}"),
        );
    }
}

#[test]
fn bayesnet_roundtrips_bit_identical_on_stats_ceb() {
    for scale in SCALES {
        let cat = stats_cat(scale);
        let wl = stats_ceb_workload(&cat, &WorkloadConfig::tiny(12));
        assert_roundtrip_bit_identical(
            &cat,
            &wl,
            config(BaseEstimatorKind::BayesNet(BnConfig::default()), 15),
            &format!("bayesnet_stats_{scale}"),
        );
    }
}

#[test]
fn sampling_roundtrips_bit_identical_on_stats_ceb() {
    for scale in SCALES {
        let cat = stats_cat(scale);
        let wl = stats_ceb_workload(&cat, &WorkloadConfig::tiny(13));
        assert_roundtrip_bit_identical(
            &cat,
            &wl,
            config(BaseEstimatorKind::Sampling { rate: 0.25 }, 20),
            &format!("sampling_stats_{scale}"),
        );
    }
}

#[test]
fn truescan_roundtrips_bit_identical_on_imdb_job() {
    for scale in SCALES {
        let cat = imdb_cat(scale);
        let wl = imdb_job_workload(&cat, &WorkloadConfig::tiny(14));
        assert_roundtrip_bit_identical(
            &cat,
            &wl,
            config(BaseEstimatorKind::TrueScan, 20),
            &format!("truescan_imdb_{scale}"),
        );
    }
}

#[test]
fn bayesnet_roundtrips_bit_identical_on_imdb_job() {
    let cat = imdb_cat(0.04);
    let wl = imdb_job_workload(&cat, &WorkloadConfig::tiny(15));
    assert_roundtrip_bit_identical(
        &cat,
        &wl,
        config(BaseEstimatorKind::BayesNet(BnConfig::default()), 15),
        "bayesnet_imdb",
    );
}

#[test]
fn sampling_roundtrips_bit_identical_on_imdb_job() {
    let cat = imdb_cat(0.04);
    let wl = imdb_job_workload(&cat, &WorkloadConfig::tiny(16));
    assert_roundtrip_bit_identical(
        &cat,
        &wl,
        config(BaseEstimatorKind::Sampling { rate: 0.25 }, 20),
        "sampling_imdb",
    );
}
