//! Differential tests of the parallel training pipeline: for every thread
//! count, `FactorJoinModel::train` must produce the **same model bit for
//! bit** as the serial build. The comparison is three-layered — persisted
//! statistics (bins, group map, per-key stats incl. the frequency maps),
//! training-report shape, and the actual sub-plan estimates on a workload
//! (exact `==` on `f64`s, no tolerance).

use factorjoin::{
    save_model, BaseEstimatorKind, BinBudget, BinningStrategy, FactorJoinConfig, FactorJoinModel,
};
use fj_datagen::{stats_catalog, stats_ceb_workload, StatsConfig, WorkloadConfig};
use fj_stats::BnConfig;
use fj_storage::Catalog;

fn catalog() -> Catalog {
    stats_catalog(&StatsConfig {
        scale: 0.05,
        ..Default::default()
    })
}

fn config(estimator: BaseEstimatorKind, threads: usize) -> FactorJoinConfig {
    FactorJoinConfig {
        bin_budget: BinBudget::Uniform(30),
        strategy: BinningStrategy::Gbsa,
        estimator,
        seed: 7,
        threads,
    }
}

/// Persisted statistics of a model, as canonical JSON bytes.
fn persisted(model: &FactorJoinModel, tag: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join("fj_parallel_train_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.json"));
    save_model(model, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

fn assert_models_identical(serial: &FactorJoinModel, parallel: &FactorJoinModel, label: &str) {
    // Layer 1: every persisted statistic (bin maps, group ids, per-bin
    // totals/MFV/NDV, sorted frequency maps) byte-identical. Tags carry
    // the label so concurrently-running tests never share a temp file.
    let tag = label.replace([' ', '/'], "-");
    assert_eq!(
        persisted(serial, &format!("serial-{tag}")),
        persisted(parallel, &format!("parallel-{tag}")),
        "{label}: persisted statistics diverged"
    );
    // Layer 2: report shape and deployable size.
    let (rs, rp) = (serial.report(), parallel.report());
    assert_eq!(rs.num_groups, rp.num_groups, "{label}");
    assert_eq!(rs.bins_per_group, rp.bins_per_group, "{label}");
    assert_eq!(rs.model_bytes, rp.model_bytes, "{label}");
    // Layer 3: exact estimate equality over a workload — covers the
    // single-table estimators, which persistence deliberately omits.
    let cat = catalog();
    let wl = stats_ceb_workload(&cat, &WorkloadConfig::tiny(6));
    let mut s1 = serial.subplan_estimator();
    let mut s2 = parallel.subplan_estimator();
    for q in &wl {
        assert_eq!(
            s1.estimate_subplans(q, 1),
            s2.estimate_subplans(q, 1),
            "{label}: estimates diverged"
        );
    }
}

#[test]
fn parallel_build_is_bit_identical_to_serial_truescan() {
    let cat = catalog();
    let serial = FactorJoinModel::train(&cat, config(BaseEstimatorKind::TrueScan, 1));
    for threads in [2, 4, 8] {
        let parallel = FactorJoinModel::train(&cat, config(BaseEstimatorKind::TrueScan, threads));
        assert_models_identical(&serial, &parallel, &format!("truescan x{threads}"));
    }
}

#[test]
fn parallel_build_is_bit_identical_to_serial_bayesnet() {
    // The BayesNet path exercises wave 3 hardest: Chow-Liu structure
    // search + CPT counting per table, all fanned across workers.
    let cat = catalog();
    let kind = BaseEstimatorKind::BayesNet(BnConfig::default());
    let serial = FactorJoinModel::train(&cat, config(kind, 1));
    let parallel = FactorJoinModel::train(&cat, config(kind, 4));
    assert_models_identical(&serial, &parallel, "bayesnet x4");
}

#[test]
fn parallel_build_is_bit_identical_to_serial_sampling() {
    let cat = catalog();
    let kind = BaseEstimatorKind::Sampling { rate: 0.2 };
    let serial = FactorJoinModel::train(&cat, config(kind, 1));
    let parallel = FactorJoinModel::train(&cat, config(kind, 4));
    assert_models_identical(&serial, &parallel, "sampling x4");
}

#[test]
fn parallel_chowliu_matches_serial() {
    // Same guarantee one level down: a single wide-table network with the
    // per-network MI sweep parallelized learns the identical tree.
    let cat = catalog();
    let posts = cat.table("posts").unwrap();
    let bins = fj_stats::TableBins::new();
    let serial = fj_stats::BayesNetEstimator::build(posts, &bins, BnConfig::default());
    let parallel = fj_stats::BayesNetEstimator::build(
        posts,
        &bins,
        BnConfig {
            threads: 4,
            ..Default::default()
        },
    );
    let f = fj_query::FilterExpr::True;
    assert_eq!(
        fj_stats::BaseTableEstimator::estimate_filter(&serial, &f),
        fj_stats::BaseTableEstimator::estimate_filter(&parallel, &f),
    );
    assert_eq!(
        fj_stats::BaseTableEstimator::model_bytes(&serial),
        fj_stats::BaseTableEstimator::model_bytes(&parallel),
    );
}

#[test]
fn auto_threads_reports_core_count() {
    let cat = catalog();
    let model = FactorJoinModel::train(&cat, config(BaseEstimatorKind::TrueScan, 0));
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    assert_eq!(model.report().threads, cores);
    let serial = FactorJoinModel::train(&cat, config(BaseEstimatorKind::TrueScan, 1));
    assert_eq!(serial.report().threads, 1);
    assert_models_identical(&serial, &model, "auto threads");
}
