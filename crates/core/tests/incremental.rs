//! Incremental-update oracle tests (paper §4.3): a model updated in
//! `O(|delta|)` through [`ModelDelta`]/`apply_insert` must track a model
//! retrained from scratch on the updated data — same statistics where bins
//! froze losslessly, and estimates within the paper's stale-bound
//! tolerance where the frozen binning has drifted.

use factorjoin::{BaseEstimatorKind, BinBudget, FactorJoinConfig, FactorJoinModel, ModelDelta};
use fj_datagen::{stats_catalog_split_by_date, stats_ceb_workload, StatsConfig, WorkloadConfig};
use fj_exec::TrueCardEngine;
use fj_storage::Catalog;

fn truescan(k: usize) -> FactorJoinConfig {
    FactorJoinConfig {
        bin_budget: BinBudget::Uniform(k),
        estimator: BaseEstimatorKind::TrueScan,
        seed: 1,
        threads: 1,
        ..Default::default()
    }
}

/// Base catalog + an applied delta: trains on the pre-split data, appends
/// the post-split inserts, and returns the updated catalog with the delta
/// describing the appended rows.
fn split_and_apply(split_days: i64) -> (Catalog, ModelDelta, FactorJoinModel) {
    let cfg = StatsConfig {
        scale: 0.05,
        ..Default::default()
    };
    let (mut catalog, inserts) = stats_catalog_split_by_date(&cfg, split_days);
    let stale = FactorJoinModel::train(&catalog, truescan(30));
    let mut delta = ModelDelta::new();
    for (tname, rows) in &inserts {
        let first = catalog.table(tname).unwrap().nrows();
        catalog.table_mut(tname).unwrap().append_rows(rows).unwrap();
        delta.record(catalog.table(tname).unwrap(), first);
    }
    (catalog, delta, stale)
}

#[test]
fn delta_records_staged_rows() {
    let (catalog, delta, _) = split_and_apply(1825);
    assert!(!delta.is_empty());
    assert!(delta.rows() > 0);
    let staged: usize = delta
        .entries()
        .map(|(t, first)| catalog.table(t).unwrap().nrows() - first)
        .sum();
    assert_eq!(delta.rows(), staged);
}

/// The oracle: update-then-estimate vs retrain-then-estimate. Bins stay
/// frozen under the update while the retrain re-selects them, so the two
/// bounds differ — but only within the stale-bound tolerance, and the
/// updated bound still upper-bounds the truth like a fresh one.
#[test]
fn update_then_estimate_matches_retrain_then_estimate() {
    // Split at ~90% of the date domain → a ~10% insert batch, the shape
    // `bench-training` measures and the acceptance criterion names.
    let (catalog, delta, stale) = split_and_apply(3285);
    let updated = stale.updated_with(&catalog, &delta);
    let retrained = FactorJoinModel::train(&catalog, truescan(30));

    let wl = stats_ceb_workload(&catalog, &WorkloadConfig::tiny(5));
    let mut ratios = Vec::new();
    let mut upper = 0usize;
    let mut total = 0usize;
    let mut s_upd = updated.subplan_estimator();
    let mut s_ret = retrained.subplan_estimator();
    for q in &wl {
        let upd = s_upd.estimate_subplans(q, 1);
        let ret = s_ret.estimate_subplans(q, 1);
        assert_eq!(upd.len(), ret.len());
        let mut eng = TrueCardEngine::new(&catalog, q);
        for (&(m1, e1), &(m2, e2)) in upd.iter().zip(&ret) {
            assert_eq!(m1, m2);
            // Both are estimates of the same sub-plan; 0-vs-0 is exact.
            let ratio = (e1.max(1.0) / e2.max(1.0)).max(e2.max(1.0) / e1.max(1.0));
            ratios.push(ratio);
            total += 1;
            if e1 >= eng.cardinality(m1) * 0.999 {
                upper += 1;
            }
        }
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = ratios[ratios.len() / 2];
    let max = *ratios.last().unwrap();
    // Stale-bound tolerance: the frozen bins must stay close to a fresh
    // re-binning — median within 1.5×, worst sub-plan within 5×.
    assert!(p50 <= 1.5, "median update/retrain divergence {p50:.3}");
    assert!(max <= 5.0, "worst update/retrain divergence {max:.3}");
    // And the updated model keeps the upper-bound property (≥ 90% of
    // sub-plans, as the paper's Figure 7 criterion).
    assert!(
        upper as f64 >= total as f64 * 0.9,
        "updated bound lost dominance: {upper}/{total}"
    );
}

/// `updated_with` is a pure function of the stale model: the original
/// serves untouched (its estimates don't move), and applying the same
/// delta in place via `apply_insert` gives the same model as the copy.
#[test]
fn updated_with_leaves_the_original_untouched() {
    let (catalog, delta, stale) = split_and_apply(1825);
    let wl = stats_ceb_workload(&catalog, &WorkloadConfig::tiny(3));
    let before: Vec<_> = wl.iter().map(|q| stale.estimate_subplans(q, 1)).collect();

    let updated = stale.updated_with(&catalog, &delta);
    let after: Vec<_> = wl.iter().map(|q| stale.estimate_subplans(q, 1)).collect();
    assert_eq!(before, after, "stale model must not change");

    let mut in_place = stale.clone();
    in_place.apply_insert(&catalog, &delta);
    for q in &wl {
        assert_eq!(
            in_place.estimate_subplans(q, 1),
            updated.estimate_subplans(q, 1),
            "in-place and copy update must agree"
        );
    }
    assert_eq!(in_place.report().model_bytes, updated.report().model_bytes);
    // The update grew the statistics (new rows, possibly new values).
    assert!(updated.report().model_bytes >= stale.report().model_bytes);
}

/// A cloned model is independent of its source: updating the clone never
/// leaks into the original's estimators (deep copy via `clone_box`).
#[test]
fn clone_is_deep() {
    let (catalog, delta, stale) = split_and_apply(1825);
    let clone = stale.clone();
    let wl = stats_ceb_workload(&catalog, &WorkloadConfig::tiny(2));
    let mut mutated = clone;
    mutated.apply_insert(&catalog, &delta);
    for q in &wl {
        let a = stale.estimate_subplans(q, 1);
        let b = mutated.estimate_subplans(q, 1);
        // At least the full-query estimate must differ after a ~50% insert.
        let (ma, ea) = *a.last().unwrap();
        let (mb, eb) = *b.last().unwrap();
        assert_eq!(ma, mb);
        assert!(
            ea <= eb,
            "inserts can only grow the TrueScan bound: {ea} vs {eb}"
        );
    }
}
