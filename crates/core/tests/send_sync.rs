//! Compile-time thread-safety contract of the serving path.
//!
//! `fj-service` shares one trained model across worker threads behind an
//! `Arc`, which requires `FactorJoinModel` (and everything reachable from
//! it) to be `Send + Sync`. These assertions fail to *compile* if a
//! non-thread-safe field (an `Rc`, a `RefCell`, a non-`Send` trait object)
//! sneaks into the model, instead of failing at the first concurrent use.
//! `BaseTableEstimator` carries `Send + Sync` as supertraits for the same
//! reason: the model stores estimators as boxed trait objects.

use factorjoin::{
    EstimationScratch, FactorJoinConfig, FactorJoinModel, KeyFreq, KeyStats, ModelDelta,
    SubplanEstimator, TrainingReport,
};
use fj_stats::{
    BaseTableEstimator, BayesNetEstimator, ExactEstimator, KeyBinMap, SamplingEstimator, TableBins,
};
use fj_storage::{Catalog, Table};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}

#[test]
fn model_and_shared_state_are_send_sync() {
    // The model and everything the registry/service shares by Arc.
    assert_send_sync::<FactorJoinModel>();
    assert_send_sync::<FactorJoinConfig>();
    assert_send_sync::<TrainingReport>();
    assert_send_sync::<Catalog>();
    assert_send_sync::<Table>();
    // Trained statistics the model is assembled from.
    assert_send_sync::<KeyStats>();
    assert_send_sync::<KeyFreq>();
    assert_send_sync::<KeyBinMap>();
    assert_send_sync::<TableBins>();
    // Incremental-update machinery: deltas cross threads (the updater
    // clones + applies on a worker while readers keep serving), and the
    // training pool itself is shared by reference inside scoped fan-outs.
    assert_send_sync::<ModelDelta>();
    assert_send_sync::<fj_par::WorkerPool>();
    // Single-table estimators, concrete and boxed (the supertrait bounds
    // are what make the trait-object field thread-safe).
    assert_send_sync::<BayesNetEstimator>();
    assert_send_sync::<SamplingEstimator>();
    assert_send_sync::<ExactEstimator>();
    assert_send_sync::<Box<dyn BaseTableEstimator>>();
}

#[test]
fn per_worker_session_state_is_send() {
    // Sessions move into worker threads (one per worker, never shared).
    assert_send::<EstimationScratch>();
    assert_send::<SubplanEstimator<'static>>();
    // A session borrowing a shared model can also be handed between
    // threads as a unit.
    assert_send_sync::<SubplanEstimator<'static>>();
}
