//! Factors and the bound-preserving factor join (paper §4.1, Eq. 5).
//!
//! A [`Factor`] represents one table (or one already-joined sub-plan) in
//! the query's factor graph: an estimated row count plus, per adjacent
//! equivalent-key-group variable, the conditional binned distribution
//! `d[i] ≈ P(key ∈ binᵢ | filter) · |Q(T)|` and the offline MFV counts
//! `V*[i]`. Joining two factors on their shared variables applies the
//! probabilistic bound per bin:
//!
//! ```text
//! bound[i] = min(dₗ[i]/V*ₗ[i], dᵣ[i]/V*ᵣ[i]) · V*ₗ[i] · V*ᵣ[i]
//! ```
//!
//! (tightened by the always-valid cap `dₗ[i]·dᵣ[i]`), giving both the
//! sub-plan's cardinality bound (`Σᵢ bound[i]`) and — because the per-bin
//! bounds form an unnormalized distribution over the joined table's keys —
//! a new cached factor for progressive estimation (paper §5.2). Residual
//! variables scale by the implied fan-out and their MFVs multiply by the
//! other side's maximal MFV, both upper-bound-preserving.

use std::collections::BTreeMap;

/// One factor-graph node: row estimate plus per-variable distributions.
#[derive(Debug, Clone)]
pub struct Factor {
    /// Estimated rows of the (joined) relation this factor describes.
    pub rows: f64,
    dists: BTreeMap<usize, Vec<f64>>,
    mfvs: BTreeMap<usize, Vec<f64>>,
}

impl Factor {
    /// Builds a base-table factor. Each entry is
    /// `(variable id, conditional bin distribution, offline MFV counts)`;
    /// the two vectors must have equal length.
    pub fn base(rows: f64, entries: Vec<(usize, Vec<f64>, Vec<f64>)>) -> Self {
        let mut dists = BTreeMap::new();
        let mut mfvs = BTreeMap::new();
        for (v, d, m) in entries {
            assert_eq!(
                d.len(),
                m.len(),
                "distribution/MFV length mismatch for var {v}"
            );
            dists.insert(v, d);
            mfvs.insert(v, m);
        }
        Factor {
            rows: rows.max(0.0),
            dists,
            mfvs,
        }
    }

    /// A factor with no variables (single-table sub-plan).
    pub fn scalar(rows: f64) -> Self {
        Factor {
            rows: rows.max(0.0),
            dists: BTreeMap::new(),
            mfvs: BTreeMap::new(),
        }
    }

    /// Variable ids this factor carries.
    pub fn vars(&self) -> Vec<usize> {
        self.dists.keys().copied().collect()
    }

    /// The distribution of variable `v`, if present.
    pub fn dist(&self, v: usize) -> Option<&[f64]> {
        self.dists.get(&v).map(Vec::as_slice)
    }

    /// The MFV counts of variable `v`, if present.
    pub fn mfv(&self, v: usize) -> Option<&[f64]> {
        self.mfvs.get(&v).map(Vec::as_slice)
    }

    /// Joins two factors; `keep` selects which variables survive into the
    /// result (a variable should survive iff some not-yet-joined alias
    /// still references it). Returns the joined factor, whose `rows` is the
    /// probabilistic cardinality bound of the join.
    pub fn join(&self, other: &Factor, keep: &dyn Fn(usize) -> bool) -> Factor {
        let shared: Vec<usize> = self
            .dists
            .keys()
            .copied()
            .filter(|v| other.dists.contains_key(v))
            .collect();
        if shared.is_empty() {
            return self.cross_product(other, keep);
        }

        // Mutable working copies of both sides' distributions.
        let mut d1 = self.dists.clone();
        let mut d2 = other.dists.clone();
        let mut rows = 0.0;
        let mut combined: BTreeMap<usize, (Vec<f64>, Vec<f64>)> = BTreeMap::new();

        for (step, &v) in shared.iter().enumerate() {
            let da = d1.remove(&v).expect("shared var in d1");
            let db = d2.remove(&v).expect("shared var in d2");
            let ma = &self.mfvs[&v];
            let mb = &other.mfvs[&v];
            let k = da.len().min(db.len());
            let mut bound = vec![0.0; k];
            for i in 0..k {
                let (a, b) = (da[i].max(0.0), db[i].max(0.0));
                if a <= 0.0 || b <= 0.0 {
                    continue;
                }
                // MFV counts are ≥ 1 whenever the bin holds offline mass;
                // estimated mass in an offline-empty bin assumes MFV 1.
                let (va, vb) = (
                    ma.get(i).copied().unwrap_or(1.0).max(1.0),
                    mb.get(i).copied().unwrap_or(1.0).max(1.0),
                );
                // Eq. 5, with the always-valid cross-product cap.
                bound[i] = (a * vb).min(b * va).min(a * b);
            }
            let s: f64 = bound.iter().sum();
            let tot_a: f64 = da.iter().sum();
            let tot_b: f64 = db.iter().sum();
            // Fan-out scaling of every remaining variable on each side.
            let scale1 = if tot_a > 0.0 { s / tot_a } else { 0.0 };
            let scale2 = if tot_b > 0.0 { s / tot_b } else { 0.0 };
            for d in d1.values_mut() {
                for x in d.iter_mut() {
                    *x *= scale1;
                }
            }
            for d in d2.values_mut() {
                for x in d.iter_mut() {
                    *x *= scale2;
                }
            }
            for (d, _) in combined.values_mut() {
                let tot: f64 = d.iter().sum();
                let sc = if tot > 0.0 { s / tot } else { 0.0 };
                for x in d.iter_mut() {
                    *x *= sc;
                }
            }
            let mfv_new: Vec<f64> = (0..k)
                .map(|i| {
                    ma.get(i).copied().unwrap_or(1.0).max(1.0)
                        * mb.get(i).copied().unwrap_or(1.0).max(1.0)
                })
                .collect();
            combined.insert(v, (bound, mfv_new));
            rows = s;
            let _ = step;
        }

        // Assemble the result: kept shared vars + residual vars of both
        // sides, with MFVs inflated by the other side's join multiplicity.
        let mut out = Factor::scalar(rows);
        if rows <= 0.0 {
            return out;
        }
        for (v, (d, m)) in combined {
            if keep(v) {
                out.dists.insert(v, d);
                out.mfvs.insert(v, m);
            }
        }
        let max_mfv = |mfv: &BTreeMap<usize, Vec<f64>>, v: usize| -> f64 {
            mfv[&v].iter().fold(1.0f64, |a, &b| a.max(b.max(1.0)))
        };
        let mult_for_1: f64 = shared.iter().map(|&v| max_mfv(&other.mfvs, v)).product();
        let mult_for_2: f64 = shared.iter().map(|&v| max_mfv(&self.mfvs, v)).product();
        for (v, d) in d1 {
            if keep(v) {
                let m = self.mfvs[&v]
                    .iter()
                    .map(|&x| x.max(1.0) * mult_for_1)
                    .collect();
                out.dists.insert(v, d);
                out.mfvs.insert(v, m);
            }
        }
        for (v, d) in d2 {
            if keep(v) {
                let m = other.mfvs[&v]
                    .iter()
                    .map(|&x| x.max(1.0) * mult_for_2)
                    .collect();
                out.dists.insert(v, d);
                out.mfvs.insert(v, m);
            }
        }
        out
    }

    fn cross_product(&self, other: &Factor, keep: &dyn Fn(usize) -> bool) -> Factor {
        let mut out = Factor::scalar(self.rows * other.rows);
        for (src, mult) in [(self, other.rows), (other, self.rows)] {
            for (&v, d) in &src.dists {
                if keep(v) {
                    out.dists.insert(v, d.iter().map(|&x| x * mult).collect());
                    out.mfvs.insert(
                        v,
                        src.mfvs[&v]
                            .iter()
                            .map(|&x| x.max(1.0) * mult.max(1.0))
                            .collect(),
                    );
                }
            }
        }
        out
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.dists
            .values()
            .chain(self.mfvs.values())
            .map(|v| v.len() * 8 + 32)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Figure 5: bin₁ of A.id has MFV 8, total 16; bin₁ of B.Aid has
    /// MFV 6, total 24 → bound = min(16/8, 24/6) · 8 · 6 = 96.
    #[test]
    fn figure5_single_bin_bound() {
        let a = Factor::base(16.0, vec![(0, vec![16.0], vec![8.0])]);
        let b = Factor::base(24.0, vec![(0, vec![24.0], vec![6.0])]);
        let j = a.join(&b, &|_| false);
        assert_eq!(j.rows, 96.0);
        assert!(j.vars().is_empty());
    }

    /// The bound must dominate the exact per-bin join count: the Figure 2
    /// example's true cardinality is 83, bounded above by 96.
    #[test]
    fn bound_dominates_truth() {
        // Exact per-value counts: A {a:8,b:4,c:3,f:1}, B {a:6,b:5,c:5,e:2}.
        // One shared bin: truth = 8·6+4·5+3·5 = 83.
        let a = Factor::base(16.0, vec![(0, vec![16.0], vec![8.0])]);
        let b = Factor::base(18.0, vec![(0, vec![18.0], vec![6.0])]);
        let j = a.join(&b, &|_| false);
        assert!(j.rows >= 83.0, "bound {} below truth", j.rows);
    }

    #[test]
    fn multi_bin_bound_sums_bins() {
        let a = Factor::base(10.0, vec![(0, vec![6.0, 4.0], vec![3.0, 2.0])]);
        let b = Factor::base(9.0, vec![(0, vec![3.0, 6.0], vec![1.0, 3.0])]);
        let j = a.join(&b, &|_| false);
        // bin0: min(6·1, 3·3, 6·3) = 6; bin1: min(4·3, 6·2, 4·6) = 12.
        assert_eq!(j.rows, 18.0);
    }

    #[test]
    fn zero_mass_bins_contribute_nothing() {
        let a = Factor::base(5.0, vec![(0, vec![5.0, 0.0], vec![2.0, 3.0])]);
        let b = Factor::base(7.0, vec![(0, vec![0.0, 7.0], vec![2.0, 4.0])]);
        let j = a.join(&b, &|_| false);
        assert_eq!(j.rows, 0.0);
    }

    #[test]
    fn kept_variable_becomes_new_distribution() {
        let a = Factor::base(10.0, vec![(0, vec![6.0, 4.0], vec![2.0, 2.0])]);
        let b = Factor::base(8.0, vec![(0, vec![4.0, 4.0], vec![2.0, 2.0])]);
        let j = a.join(&b, &|v| v == 0);
        assert_eq!(j.vars(), vec![0]);
        let d = j.dist(0).unwrap();
        assert_eq!(d.iter().sum::<f64>(), j.rows);
        // New MFV = product of the sides' MFVs.
        assert_eq!(j.mfv(0).unwrap(), &[4.0, 4.0]);
    }

    #[test]
    fn residual_variable_scales_with_fanout() {
        // f1 carries var 1 (not shared); joining on var 0 doubles rows.
        let f1 = Factor::base(
            4.0,
            vec![
                (0, vec![4.0], vec![1.0]),
                (1, vec![3.0, 1.0], vec![2.0, 1.0]),
            ],
        );
        let f2 = Factor::base(8.0, vec![(0, vec![8.0], vec![2.0])]);
        let j = f1.join(&f2, &|v| v == 1);
        // bound on var0: min(4·2, 8·1, 32) = 8 → rows 8, fanout ×2.
        assert_eq!(j.rows, 8.0);
        let d1 = j.dist(1).unwrap();
        assert_eq!(d1, &[6.0, 2.0]);
        // Residual MFV multiplied by the other side's max MFV (2).
        assert_eq!(j.mfv(1).unwrap(), &[4.0, 2.0]);
    }

    #[test]
    fn join_is_symmetric_in_rows() {
        let a = Factor::base(
            12.0,
            vec![
                (0, vec![5.0, 7.0], vec![3.0, 4.0]),
                (1, vec![12.0], vec![5.0]),
            ],
        );
        let b = Factor::base(6.0, vec![(0, vec![2.0, 4.0], vec![1.0, 2.0])]);
        let ab = a.join(&b, &|_| true);
        let ba = b.join(&a, &|_| true);
        assert!((ab.rows - ba.rows).abs() < 1e-9);
        assert_eq!(ab.vars(), ba.vars());
    }

    #[test]
    fn two_shared_vars_cyclic_case() {
        // Both factors share vars 0 and 1 (paper Appendix Case 5 shape).
        let a = Factor::base(
            10.0,
            vec![(0, vec![10.0], vec![2.0]), (1, vec![10.0], vec![5.0])],
        );
        let b = Factor::base(
            20.0,
            vec![(0, vec![20.0], vec![4.0]), (1, vec![20.0], vec![2.0])],
        );
        let j = a.join(&b, &|_| false);
        // Sequential: var0 → min(10·4, 20·2, 200) = 40.
        // var1 scaled: a-side 10→40, b-side 20→40;
        //   then min(40·2, 40·5, 1600) = 80.
        assert_eq!(j.rows, 80.0);
        // The cyclic bound must not exceed the single-var bound (adding a
        // join condition can only reduce cardinality, and our sequential
        // composition reflects that: 80 ≤ bound on var0 alone × fanout).
        let j0 = a.join(&b, &|_| false);
        assert!(j.rows <= j0.rows * 40.0);
    }

    #[test]
    fn cross_product_when_disjoint() {
        let a = Factor::base(3.0, vec![(0, vec![3.0], vec![1.0])]);
        let b = Factor::base(4.0, vec![(1, vec![4.0], vec![2.0])]);
        let j = a.join(&b, &|_| true);
        assert_eq!(j.rows, 12.0);
        assert_eq!(j.dist(0).unwrap(), &[12.0]);
        assert_eq!(j.dist(1).unwrap(), &[12.0]);
    }

    #[test]
    fn scalar_join_scales() {
        let a = Factor::scalar(5.0);
        let b = Factor::base(4.0, vec![(0, vec![4.0], vec![2.0])]);
        let j = a.join(&b, &|_| true);
        assert_eq!(j.rows, 20.0);
    }

    #[test]
    fn estimated_fractional_masses_are_fine() {
        // Estimators produce fractional per-bin masses; bounds stay sane.
        let a = Factor::base(0.9, vec![(0, vec![0.6, 0.3], vec![8.0, 2.0])]);
        let b = Factor::base(100.0, vec![(0, vec![40.0, 60.0], vec![10.0, 10.0])]);
        let j = a.join(&b, &|_| false);
        // Caps prevent the fractional side from exploding:
        // bin0 ≤ 0.6·40 = 24 at most via cap … actual min(0.6·10, 40·8, 24)=6
        // bin1 min(0.3·10, 60·2, 18) = 3 → 9 total.
        assert!((j.rows - 9.0).abs() < 1e-9, "rows {}", j.rows);
    }

    #[test]
    fn negative_inputs_clamped() {
        let a = Factor::base(5.0, vec![(0, vec![-1.0, 5.0], vec![1.0, 1.0])]);
        let b = Factor::base(5.0, vec![(0, vec![2.0, 3.0], vec![1.0, 1.0])]);
        let j = a.join(&b, &|_| false);
        assert!(j.rows >= 0.0);
        assert!(j.rows <= 15.0);
    }
}
