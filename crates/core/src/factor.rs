//! Factors and the bound-preserving factor join (paper §4.1, Eq. 5).
//!
//! A [`Factor`] represents one table (or one already-joined sub-plan) in
//! the query's factor graph: an estimated row count plus, per adjacent
//! equivalent-key-group variable, the conditional binned distribution
//! `d[i] ≈ P(key ∈ binᵢ | filter) · |Q(T)|` and the offline MFV counts
//! `V*[i]`. Joining two factors on their shared variables applies the
//! probabilistic bound per bin:
//!
//! ```text
//! bound[i] = min(dₗ[i]/V*ₗ[i], dᵣ[i]/V*ᵣ[i]) · V*ₗ[i] · V*ᵣ[i]
//! ```
//!
//! (tightened by the always-valid cap `dₗ[i]·dᵣ[i]`), giving both the
//! sub-plan's cardinality bound (`Σᵢ bound[i]`) and — because the per-bin
//! bounds form an unnormalized distribution over the joined table's keys —
//! a new cached factor for progressive estimation (paper §5.2). Residual
//! variables scale by the implied fan-out and their MFVs multiply by the
//! other side's maximal MFV, both upper-bound-preserving.
//!
//! ## Layout
//!
//! This is the hottest loop of online estimation (an optimizer issues
//! hundreds of sub-plan queries per query, §5.2), so the representation is
//! flat: per-variable metadata (`VarMeta`) sorted by variable id plus one
//! contiguous `f64` slab holding each variable's `(dist, mfv)` pair.
//! Shared-variable discovery is a sorted merge, fan-out rescaling is a
//! **lazy per-variable scale multiplier** applied on read (instead of the
//! former eager O(vars × bins) rewrite per elimination step), and per-var
//! totals / MFV maxima are cached so the join never re-scans a
//! distribution it does not consume. Joins write through a reusable
//! [`JoinScratch`]; cached sub-plan factors live in a [`FactorArena`] so
//! progressive estimation performs no per-sub-plan heap allocation once
//! the scratch is warm.
//!
//! The per-bin loops themselves are written for the autovectorizer: the
//! Eq. 5 bound is a branch-free min/max lattice (`bin_bound` — the clamps
//! subsume the old zero-mass test), reductions run in fixed-width chunks
//! with independent accumulators (`sum_chunked`/`max_chunked`), and the
//! residual-copy paths bulk-copy then clamp in place instead of pushing
//! element-wise. The `RefFactor` BTreeMap oracle tests pin all of this to
//! the original semantics at ≤ 1e-9 relative error.

/// Maximum variable id a factor can carry (ids are dense per query — the
/// number of equivalent key groups, far below this in practice).
pub const MAX_VARS: usize = 256;

const KEEP_WORDS: usize = MAX_VARS / 64;

/// Set of variable ids that survive a join, as a flat bitmask.
///
/// Replaces the former `&dyn Fn(usize) -> bool` predicate: membership is a
/// shift-and-mask instead of a dynamic dispatch in the inner loop, and the
/// set can be built once per sub-plan from the query graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeepVars {
    words: [u64; KEEP_WORDS],
}

impl KeepVars {
    /// The empty set (drop every variable).
    pub fn none() -> Self {
        KeepVars::default()
    }

    /// The full set (keep every variable).
    pub fn all() -> Self {
        KeepVars {
            words: [u64::MAX; KEEP_WORDS],
        }
    }

    /// Adds variable `v` to the kept set.
    pub fn insert(&mut self, v: usize) {
        assert!(v < MAX_VARS, "variable id {v} exceeds MAX_VARS={MAX_VARS}");
        self.words[v / 64] |= 1u64 << (v % 64);
    }

    /// Whether variable `v` is kept.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        debug_assert!(v < MAX_VARS);
        self.words[v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Builds the set `{v < max_var : pred(v)}` (test/adapter convenience).
    pub fn from_fn(max_var: usize, pred: impl Fn(usize) -> bool) -> Self {
        let mut kv = KeepVars::none();
        for v in 0..max_var {
            if pred(v) {
                kv.insert(v);
            }
        }
        kv
    }
}

/// Per-variable metadata of a flat factor. `off` indexes the owning slab:
/// the distribution occupies `slab[off..off+k]`, the MFV counts
/// `slab[off+k..off+2k]`. Stored values are *raw*; effective values are
/// `dist_raw · dist_scale` and `mfv_raw · mfv_scale` (lazy fan-out
/// scaling). `dist_total` and `mfv_max` cache the raw sum / max so
/// elimination steps never re-scan distributions they only normalize by.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VarMeta {
    pub(crate) var: u32,
    pub(crate) off: u32,
    pub(crate) k: u32,
    pub(crate) dist_scale: f64,
    pub(crate) dist_total: f64,
    pub(crate) mfv_scale: f64,
    pub(crate) mfv_max: f64,
}

/// A borrowed flat factor: either a standalone [`Factor`] or an entry of a
/// [`FactorArena`] (whose metas index the shared arena slab).
#[derive(Clone, Copy)]
pub(crate) struct FactorView<'a> {
    pub(crate) rows: f64,
    pub(crate) meta: &'a [VarMeta],
    pub(crate) slab: &'a [f64],
}

/// One factor-graph node: row estimate plus per-variable distributions.
#[derive(Debug, Clone)]
pub struct Factor {
    /// Estimated rows of the (joined) relation this factor describes.
    pub rows: f64,
    meta: Vec<VarMeta>,
    slab: Vec<f64>,
}

/// Grows `v` (counting the growth event) so `additional` more elements fit
/// without reallocation. The counter is how tests assert the hot path is
/// allocation-free once scratch buffers are warm.
fn reserve_counted<T>(v: &mut Vec<T>, additional: usize, events: &mut u64) {
    if v.capacity() - v.len() < additional {
        *events += 1;
        v.reserve(additional);
    }
}

impl Factor {
    /// Builds a base-table factor. Each entry is
    /// `(variable id, conditional bin distribution, offline MFV counts)`;
    /// the two vectors must have equal length. Later duplicates of a
    /// variable id overwrite earlier ones.
    pub fn base(rows: f64, entries: Vec<(usize, Vec<f64>, Vec<f64>)>) -> Self {
        let mut entries = entries;
        // Stable sort + keep the last occurrence per var id.
        entries.sort_by_key(|&(v, _, _)| v);
        let mut meta: Vec<VarMeta> = Vec::with_capacity(entries.len());
        let mut slab = Vec::new();
        for (v, d, m) in entries {
            assert_eq!(
                d.len(),
                m.len(),
                "distribution/MFV length mismatch for var {v}"
            );
            assert!(v < MAX_VARS, "variable id {v} exceeds MAX_VARS={MAX_VARS}");
            if meta.last().map(|x: &VarMeta| x.var as usize) == Some(v) {
                let prev = meta.pop().expect("just checked");
                slab.truncate(prev.off as usize);
            }
            let off = slab.len() as u32;
            let total: f64 = d.iter().sum();
            let mfv_max = m.iter().fold(0.0f64, |a, &b| a.max(b));
            let k = d.len() as u32;
            slab.extend_from_slice(&d);
            slab.extend_from_slice(&m);
            meta.push(VarMeta {
                var: v as u32,
                off,
                k,
                dist_scale: 1.0,
                dist_total: total,
                mfv_scale: 1.0,
                mfv_max,
            });
        }
        Factor {
            rows: rows.max(0.0),
            meta,
            slab,
        }
    }

    /// A factor with no variables (single-table sub-plan).
    pub fn scalar(rows: f64) -> Self {
        Factor {
            rows: rows.max(0.0),
            meta: Vec::new(),
            slab: Vec::new(),
        }
    }

    /// Builds an owned factor from the output buffers of a join.
    pub(crate) fn from_scratch(rows: f64, s: &JoinScratch) -> Self {
        Factor {
            rows: rows.max(0.0),
            meta: s.out_meta.clone(),
            slab: s.out_slab.clone(),
        }
    }

    pub(crate) fn view(&self) -> FactorView<'_> {
        FactorView {
            rows: self.rows,
            meta: &self.meta,
            slab: &self.slab,
        }
    }

    /// Variable ids this factor carries (sorted ascending).
    pub fn vars(&self) -> Vec<usize> {
        self.meta.iter().map(|m| m.var as usize).collect()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.meta.len()
    }

    fn meta_of(&self, v: usize) -> Option<&VarMeta> {
        self.meta
            .binary_search_by_key(&(v as u32), |m| m.var)
            .ok()
            .map(|i| &self.meta[i])
    }

    /// The distribution of variable `v` (fan-out scaling materialized), if
    /// present.
    pub fn dist(&self, v: usize) -> Option<Vec<f64>> {
        self.meta_of(v).map(|m| {
            let (off, k) = (m.off as usize, m.k as usize);
            self.slab[off..off + k]
                .iter()
                .map(|&x| x * m.dist_scale)
                .collect()
        })
    }

    /// The MFV counts of variable `v` (join multiplicity materialized), if
    /// present.
    pub fn mfv(&self, v: usize) -> Option<Vec<f64>> {
        self.meta_of(v).map(|m| {
            let (off, k) = (m.off as usize, m.k as usize);
            self.slab[off + k..off + 2 * k]
                .iter()
                .map(|&x| x * m.mfv_scale)
                .collect()
        })
    }

    /// Joins two factors; `keep` selects which variables survive into the
    /// result (a variable should survive iff some not-yet-joined alias
    /// still references it). Returns the joined factor, whose `rows` is the
    /// probabilistic cardinality bound of the join.
    pub fn join(&self, other: &Factor, keep: &KeepVars) -> Factor {
        let mut scratch = JoinScratch::default();
        self.join_with(other, keep, &mut scratch)
    }

    /// [`Factor::join`] through a caller-owned scratch, so repeated joins
    /// reuse buffers. The hot progressive-estimation path goes further and
    /// keeps results inside a [`FactorArena`].
    pub fn join_with(&self, other: &Factor, keep: &KeepVars, scratch: &mut JoinScratch) -> Factor {
        let rows = join_views_into(self.view(), other.view(), keep, scratch);
        Factor::from_scratch(rows, scratch)
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.slab.len() * 8 + self.meta.len() * std::mem::size_of::<VarMeta>()
    }
}

// ------------------------------------------------------------ join kernel

/// Reusable buffers for the factor join. `out_meta`/`out_slab` hold the
/// result after the join kernel (`join_views_into`) runs; the other
/// vectors are internals. All
/// buffers keep their capacity across joins, and every growth is counted
/// so callers can assert steady-state allocation-freedom.
#[derive(Debug, Default)]
pub struct JoinScratch {
    pub(crate) out_meta: Vec<VarMeta>,
    pub(crate) out_slab: Vec<f64>,
    shared: Vec<(u32, u32)>,
    combined: Vec<(u32, f64)>,
    grow_events: u64,
}

impl JoinScratch {
    /// Buffer-growth events since construction (0 on a warm scratch).
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    fn clear_out(&mut self) {
        self.out_meta.clear();
        self.out_slab.clear();
        self.combined.clear();
    }

    /// Appends a variable to the output being built (used by base-factor
    /// construction in the model). `dist` and `mfv` must have equal length.
    pub(crate) fn push_var(&mut self, var: usize, dist: &[f64], mfv: &[f64]) {
        debug_assert_eq!(dist.len(), mfv.len());
        assert!(var < MAX_VARS, "variable id {var} exceeds MAX_VARS");
        let k = dist.len();
        reserve_counted(&mut self.out_slab, 2 * k, &mut self.grow_events);
        reserve_counted(&mut self.out_meta, 1, &mut self.grow_events);
        let off = self.out_slab.len() as u32;
        let total: f64 = dist.iter().sum();
        let mfv_max = mfv.iter().fold(0.0f64, |a, &b| a.max(b));
        self.out_slab.extend_from_slice(dist);
        self.out_slab.extend_from_slice(mfv);
        self.out_meta.push(VarMeta {
            var: var as u32,
            off,
            k: k as u32,
            dist_scale: 1.0,
            dist_total: total,
            mfv_scale: 1.0,
            mfv_max,
        });
    }

    /// Elementwise-min combine of another (dist, mfv) pair into the output
    /// variable appended last — base factors combine multiple member
    /// columns of one alias this way (a valid bound for "all equal").
    pub(crate) fn min_combine_last(&mut self, dist: &[f64], mfv: &[f64]) {
        let m = self.out_meta.last_mut().expect("push_var came first");
        let k = (m.k as usize).min(dist.len());
        let off = m.off as usize;
        let old_k = m.k as usize;
        // Shrink to the common length, moving the MFV block down if needed.
        if k < old_k {
            for i in 0..k {
                self.out_slab[off + k + i] = self.out_slab[off + old_k + i];
            }
            self.out_slab.truncate(off + 2 * k);
            m.k = k as u32;
        }
        let mut total = 0.0;
        let mut mfv_max = 0.0f64;
        for i in 0..k {
            let d = self.out_slab[off + i].min(dist[i]);
            self.out_slab[off + i] = d;
            total += d;
            let v = self.out_slab[off + k + i].min(mfv[i]);
            self.out_slab[off + k + i] = v;
            mfv_max = mfv_max.max(v);
        }
        m.dist_total = total;
        m.mfv_max = mfv_max;
    }

    /// Starts a fresh output (used by base-factor construction).
    pub(crate) fn begin(&mut self) {
        self.clear_out();
    }

    /// Sorts the built output by variable id (metas only; slab order is
    /// irrelevant).
    pub(crate) fn finish(&mut self) {
        self.out_meta.sort_unstable_by_key(|m| m.var);
    }
}

#[inline]
fn dist_slice<'a>(slab: &'a [f64], m: &VarMeta) -> &'a [f64] {
    &slab[m.off as usize..m.off as usize + m.k as usize]
}

/// Per-bin Eq. 5 bound, branch-free: the `.max(0.0)` clamps already force
/// the min-of-products to zero whenever either side's mass is ≤ 0 (and map
/// NaN to 0), so no explicit zero test is needed and the expression
/// compiles to a straight-line min/max lattice the autovectorizer handles.
///
/// The arguments are two symmetric (dist, mfv, scale, key-scale) bundles —
/// kept as loose scalars so the caller's loop feeds the lanes straight from
/// its slices without building a struct per bin.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn bin_bound(d_a: f64, d_b: f64, m_a: f64, m_b: f64, sa: f64, sb: f64, ksa: f64, ksb: f64) -> f64 {
    let av = (d_a * sa).max(0.0);
    let bv = (d_b * sb).max(0.0);
    // MFV counts are ≥ 1 whenever the bin holds offline mass; estimated
    // mass in an offline-empty bin assumes MFV 1.
    let va = (m_a * ksa).max(1.0);
    let vb = (m_b * ksb).max(1.0);
    // Eq. 5, with the always-valid cross-product cap.
    (av * vb).min(bv * va).min(av * bv)
}

/// Sum reduction with four independent accumulators, so the lanes carry no
/// loop-carried dependency and the reduction vectorizes. Reassociation
/// shifts the result by at most a few ulp — well inside the 1e-9 relative
/// tolerance of the `RefFactor` oracle tests.
#[inline]
fn sum_chunked(v: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut chunks = v.chunks_exact(4);
    for c in &mut chunks {
        acc[0] += c[0];
        acc[1] += c[1];
        acc[2] += c[2];
        acc[3] += c[3];
    }
    let tail: f64 = chunks.remainder().iter().sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Max reduction over non-negative values, chunked like [`sum_chunked`]
/// (max is associative, so this one is exact).
#[inline]
fn max_chunked(v: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut chunks = v.chunks_exact(4);
    for c in &mut chunks {
        acc[0] = acc[0].max(c[0]);
        acc[1] = acc[1].max(c[1]);
        acc[2] = acc[2].max(c[2]);
        acc[3] = acc[3].max(c[3]);
    }
    let tail = chunks.remainder().iter().fold(0.0f64, |a, &b| a.max(b));
    acc[0].max(acc[1]).max(acc[2]).max(acc[3]).max(tail)
}

#[inline]
fn mfv_slice<'a>(slab: &'a [f64], m: &VarMeta) -> &'a [f64] {
    &slab[m.off as usize + m.k as usize..m.off as usize + 2 * m.k as usize]
}

/// Effective (clamped) maximal MFV of a variable, as the join multiplicity
/// inflation uses it.
#[inline]
fn eff_mfv_max(m: &VarMeta) -> f64 {
    (m.mfv_max * m.mfv_scale).max(1.0)
}

/// Joins two factor views into `s.out_meta` / `s.out_slab`, returning the
/// joined row bound. Zero heap allocation once `s` has warmed up.
pub(crate) fn join_views_into(
    a: FactorView<'_>,
    b: FactorView<'_>,
    keep: &KeepVars,
    s: &mut JoinScratch,
) -> f64 {
    s.clear_out();
    // Shared-variable discovery: sorted merge over the two meta arrays.
    s.shared.clear();
    reserve_counted(
        &mut s.shared,
        a.meta.len().min(b.meta.len()),
        &mut s.grow_events,
    );
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.meta.len() && j < b.meta.len() {
        match a.meta[i].var.cmp(&b.meta[j].var) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                s.shared.push((i as u32, j as u32));
                i += 1;
                j += 1;
            }
        }
    }
    if s.shared.is_empty() {
        return cross_product_into(a, b, keep, s);
    }

    // Eliminate shared variables in ascending id order. `pend_*` are the
    // lazily accumulated fan-out scales of each side; `mult_*` the MFV
    // multiplicity inflations applied to residual variables at assembly.
    let mut pend_a = 1.0f64;
    let mut pend_b = 1.0f64;
    let mut mult_a = 1.0f64;
    let mut mult_b = 1.0f64;
    let mut rows = 0.0f64;
    for si in 0..s.shared.len() {
        let (ia, ib) = s.shared[si];
        let mva = a.meta[ia as usize];
        let mvb = b.meta[ib as usize];
        let k = mva.k.min(mvb.k) as usize;
        let sa = mva.dist_scale * pend_a;
        let sb = mvb.dist_scale * pend_b;
        let kept = keep.contains(mva.var as usize);
        let (ksa, ksb) = (mva.mfv_scale, mvb.mfv_scale);
        let da = &dist_slice(a.slab, &mva)[..k];
        let db = &dist_slice(b.slab, &mvb)[..k];
        let ma = &mfv_slice(a.slab, &mva)[..k];
        let mb = &mfv_slice(b.slab, &mvb)[..k];
        let step;
        if kept && k > 0 {
            reserve_counted(&mut s.out_slab, 2 * k, &mut s.grow_events);
            reserve_counted(&mut s.out_meta, 1, &mut s.grow_events);
            reserve_counted(&mut s.combined, 1, &mut s.grow_events);
            let base = s.out_slab.len();
            s.out_slab.resize(base + 2 * k, 0.0);
            let (bounds, mfvs) = s.out_slab[base..base + 2 * k].split_at_mut(k);
            // Pass 1: per-bin bound (branch-free, see `bin_bound`), then a
            // chunked sum over the freshly written block.
            for ((((out, &d_a), &d_b), &m_a), &m_b) in
                bounds.iter_mut().zip(da).zip(db).zip(ma).zip(mb)
            {
                *out = bin_bound(d_a, d_b, m_a, m_b, sa, sb, ksa, ksb);
            }
            step = sum_chunked(bounds);
            // Pass 2: joined MFV = product of the sides' effective MFVs.
            for ((out, &m_a), &m_b) in mfvs.iter_mut().zip(ma).zip(mb) {
                *out = (m_a * ksa).max(1.0) * (m_b * ksb).max(1.0);
            }
            let mfv_max = max_chunked(mfvs);
            s.combined.push((s.out_meta.len() as u32, step));
            s.out_meta.push(VarMeta {
                var: mva.var,
                off: base as u32,
                k: k as u32,
                dist_scale: 1.0, // fixed up after the loop: rows / step
                dist_total: step,
                mfv_scale: 1.0,
                mfv_max,
            });
        } else {
            // Dropped variable: only the summed bound survives. Same
            // branch-free kernel, reduced with independent accumulators.
            let mut acc = [0.0f64; 4];
            let mut x = 0usize;
            while x + 4 <= k {
                acc[0] += bin_bound(da[x], db[x], ma[x], mb[x], sa, sb, ksa, ksb);
                acc[1] += bin_bound(da[x + 1], db[x + 1], ma[x + 1], mb[x + 1], sa, sb, ksa, ksb);
                acc[2] += bin_bound(da[x + 2], db[x + 2], ma[x + 2], mb[x + 2], sa, sb, ksa, ksb);
                acc[3] += bin_bound(da[x + 3], db[x + 3], ma[x + 3], mb[x + 3], sa, sb, ksa, ksb);
                x += 4;
            }
            let mut tail = 0.0f64;
            while x < k {
                tail += bin_bound(da[x], db[x], ma[x], mb[x], sa, sb, ksa, ksb);
                x += 1;
            }
            step = (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail;
        }
        if step <= 0.0 {
            // Bound hit zero: every later step scales to zero too.
            s.clear_out();
            return 0.0;
        }
        // Fan-out rescaling of everything not yet consumed becomes a pair
        // of scalar multiplier updates (the former per-step O(vars × bins)
        // rewrite).
        let tot_a = mva.dist_total * sa;
        let tot_b = mvb.dist_total * sb;
        pend_a *= if tot_a > 0.0 { step / tot_a } else { 0.0 };
        pend_b *= if tot_b > 0.0 { step / tot_b } else { 0.0 };
        mult_a *= eff_mfv_max(&mvb);
        mult_b *= eff_mfv_max(&mva);
        rows = step;
    }
    // Combined variables were created summing to their step's bound; bring
    // them to the final row count with one scale each.
    for ci in 0..s.combined.len() {
        let (mi, created) = s.combined[ci];
        s.out_meta[mi as usize].dist_scale = rows / created;
    }
    // Residual variables of both sides, with MFVs inflated by the other
    // side's join multiplicity.
    copy_residuals(a, Side::A, keep, pend_a, mult_a, s);
    copy_residuals(b, Side::B, keep, pend_b, mult_b, s);
    s.finish();
    rows
}

/// Which element of a `shared` pair indexes this side's meta array.
#[derive(Clone, Copy, PartialEq)]
enum Side {
    A,
    B,
}

/// Copies the non-shared, kept variables of `src` into the output with the
/// side's accumulated fan-out scale and MFV multiplicity.
fn copy_residuals(
    src: FactorView<'_>,
    side: Side,
    keep: &KeepVars,
    pend: f64,
    mult: f64,
    s: &mut JoinScratch,
) {
    let JoinScratch {
        out_meta,
        out_slab,
        shared,
        grow_events,
        ..
    } = s;
    // Indices of `src.meta` that were shared, ascending (the merge emits
    // them in order).
    let mut next_shared = 0usize;
    for (idx, m) in src.meta.iter().enumerate() {
        if next_shared < shared.len() {
            let pair = shared[next_shared];
            let si = match side {
                Side::A => pair.0,
                Side::B => pair.1,
            } as usize;
            if si == idx {
                next_shared += 1;
                continue;
            }
        }
        if !keep.contains(m.var as usize) {
            continue;
        }
        let k = m.k as usize;
        reserve_counted(out_slab, 2 * k, grow_events);
        reserve_counted(out_meta, 1, grow_events);
        let base = out_slab.len() as u32;
        out_slab.extend_from_slice(dist_slice(src.slab, m));
        // MFVs are written clamped (≥ 1) — idempotent for already-joined
        // inputs, and matches the former eager `x.max(1) · mult` rewrite.
        // Bulk copy first, clamp in place: both loops vectorize.
        let mstart = out_slab.len();
        out_slab.extend_from_slice(mfv_slice(src.slab, m));
        for x in &mut out_slab[mstart..] {
            *x = x.max(1.0);
        }
        out_meta.push(VarMeta {
            var: m.var,
            off: base,
            k: m.k,
            dist_scale: m.dist_scale * pend,
            dist_total: m.dist_total,
            mfv_scale: m.mfv_scale * mult,
            mfv_max: m.mfv_max.max(1.0),
        });
    }
}

/// Join of factors with disjoint variable sets: the cross-product bound.
/// Every surviving distribution scales by the other side's rows; MFVs by
/// the same factor clamped to ≥ 1.
fn cross_product_into(
    a: FactorView<'_>,
    b: FactorView<'_>,
    keep: &KeepVars,
    s: &mut JoinScratch,
) -> f64 {
    let rows = (a.rows * b.rows).max(0.0);
    let JoinScratch {
        out_meta,
        out_slab,
        grow_events,
        ..
    } = s;
    for (src, mult) in [(a, b.rows), (b, a.rows)] {
        for m in src.meta {
            if !keep.contains(m.var as usize) {
                continue;
            }
            let k = m.k as usize;
            reserve_counted(out_slab, 2 * k, grow_events);
            reserve_counted(out_meta, 1, grow_events);
            let base = out_slab.len() as u32;
            out_slab.extend_from_slice(dist_slice(src.slab, m));
            let mstart = out_slab.len();
            out_slab.extend_from_slice(mfv_slice(src.slab, m));
            for x in &mut out_slab[mstart..] {
                *x = x.max(1.0);
            }
            out_meta.push(VarMeta {
                var: m.var,
                off: base,
                k: m.k,
                dist_scale: m.dist_scale * mult,
                dist_total: m.dist_total,
                mfv_scale: m.mfv_scale * mult.max(1.0),
                mfv_max: m.mfv_max.max(1.0),
            });
        }
    }
    s.finish();
    rows
}

// ------------------------------------------------------------ arena

/// Handle to a factor stored in a [`FactorArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactorId(u32);

#[derive(Debug, Clone, Copy)]
struct ArenaEntry {
    rows: f64,
    meta_start: u32,
    meta_end: u32,
}

/// Append-only arena of flat factors sharing one metadata array and one
/// `f64` slab. Progressive sub-plan estimation caches every joined factor
/// here: storing a factor is a bump append (no per-factor `Vec`s), and
/// `clear` recycles the full capacity for the next query, so steady-state
/// estimation performs no heap allocation per sub-plan.
#[derive(Debug, Default)]
pub struct FactorArena {
    meta: Vec<VarMeta>,
    slab: Vec<f64>,
    factors: Vec<ArenaEntry>,
    grow_events: u64,
}

impl FactorArena {
    /// Empties the arena, keeping capacity.
    pub fn clear(&mut self) {
        self.meta.clear();
        self.slab.clear();
        self.factors.clear();
    }

    /// Number of stored factors.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Whether the arena holds no factors.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// Row bound of a stored factor.
    pub fn rows(&self, id: FactorId) -> f64 {
        self.factors[id.0 as usize].rows
    }

    /// Buffer-growth events since construction (0 on a warm arena).
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    pub(crate) fn view(&self, id: FactorId) -> FactorView<'_> {
        let e = self.factors[id.0 as usize];
        FactorView {
            rows: e.rows,
            meta: &self.meta[e.meta_start as usize..e.meta_end as usize],
            slab: &self.slab,
        }
    }

    /// Appends the join output sitting in `scratch`, rebasing its slab
    /// offsets onto the arena slab.
    pub fn push_scratch(&mut self, rows: f64, scratch: &JoinScratch) -> FactorId {
        reserve_counted(
            &mut self.slab,
            scratch.out_slab.len(),
            &mut self.grow_events,
        );
        reserve_counted(
            &mut self.meta,
            scratch.out_meta.len(),
            &mut self.grow_events,
        );
        reserve_counted(&mut self.factors, 1, &mut self.grow_events);
        let slab_base = self.slab.len() as u32;
        let meta_start = self.meta.len() as u32;
        self.slab.extend_from_slice(&scratch.out_slab);
        for m in &scratch.out_meta {
            let mut m = *m;
            m.off += slab_base;
            self.meta.push(m);
        }
        let id = FactorId(self.factors.len() as u32);
        self.factors.push(ArenaEntry {
            rows: rows.max(0.0),
            meta_start,
            meta_end: self.meta.len() as u32,
        });
        id
    }

    /// Materializes a stored factor as an owned [`Factor`] (cold paths and
    /// tests; the hot path only ever reads views).
    pub fn get(&self, id: FactorId) -> Factor {
        let v = self.view(id);
        let mut meta = Vec::with_capacity(v.meta.len());
        let mut slab = Vec::new();
        for m in v.meta {
            let mut m2 = *m;
            m2.off = slab.len() as u32;
            slab.extend_from_slice(dist_slice(v.slab, m));
            slab.extend_from_slice(mfv_slice(v.slab, m));
            meta.push(m2);
        }
        Factor {
            rows: v.rows,
            meta,
            slab,
        }
    }

    /// Joins two stored factors and appends the result; returns the new
    /// id and the joined row bound.
    pub fn join(
        &mut self,
        left: FactorId,
        right: FactorId,
        keep: &KeepVars,
        scratch: &mut JoinScratch,
    ) -> (FactorId, f64) {
        let rows = join_views_into(self.view(left), self.view(right), keep, scratch);
        (self.push_scratch(rows, scratch), rows)
    }
}

// ----------------------------------------------- reference implementation

/// The original `BTreeMap`-backed factor join, kept as the
/// differential-testing oracle for the flat implementation: the rewrite
/// must reproduce its `rows`, distributions, and MFVs to fp-noise
/// precision on arbitrary inputs.
#[cfg(test)]
pub(crate) mod reference {
    use super::KeepVars;
    use std::collections::BTreeMap;

    #[derive(Debug, Clone)]
    pub struct RefFactor {
        pub rows: f64,
        pub dists: BTreeMap<usize, Vec<f64>>,
        pub mfvs: BTreeMap<usize, Vec<f64>>,
    }

    impl RefFactor {
        pub fn base(rows: f64, entries: Vec<(usize, Vec<f64>, Vec<f64>)>) -> Self {
            let mut dists = BTreeMap::new();
            let mut mfvs = BTreeMap::new();
            for (v, d, m) in entries {
                assert_eq!(d.len(), m.len());
                dists.insert(v, d);
                mfvs.insert(v, m);
            }
            RefFactor {
                rows: rows.max(0.0),
                dists,
                mfvs,
            }
        }

        pub fn scalar(rows: f64) -> Self {
            RefFactor {
                rows: rows.max(0.0),
                dists: BTreeMap::new(),
                mfvs: BTreeMap::new(),
            }
        }

        pub fn join(&self, other: &RefFactor, keep: &KeepVars) -> RefFactor {
            let shared: Vec<usize> = self
                .dists
                .keys()
                .copied()
                .filter(|v| other.dists.contains_key(v))
                .collect();
            if shared.is_empty() {
                return self.cross_product(other, keep);
            }
            let mut d1 = self.dists.clone();
            let mut d2 = other.dists.clone();
            let mut rows = 0.0;
            let mut combined: BTreeMap<usize, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
            for &v in shared.iter() {
                let da = d1.remove(&v).expect("shared var in d1");
                let db = d2.remove(&v).expect("shared var in d2");
                let ma = &self.mfvs[&v];
                let mb = &other.mfvs[&v];
                let k = da.len().min(db.len());
                let mut bound = vec![0.0; k];
                for i in 0..k {
                    let (a, b) = (da[i].max(0.0), db[i].max(0.0));
                    if a <= 0.0 || b <= 0.0 {
                        continue;
                    }
                    let (va, vb) = (
                        ma.get(i).copied().unwrap_or(1.0).max(1.0),
                        mb.get(i).copied().unwrap_or(1.0).max(1.0),
                    );
                    bound[i] = (a * vb).min(b * va).min(a * b);
                }
                let s: f64 = bound.iter().sum();
                let tot_a: f64 = da.iter().sum();
                let tot_b: f64 = db.iter().sum();
                let scale1 = if tot_a > 0.0 { s / tot_a } else { 0.0 };
                let scale2 = if tot_b > 0.0 { s / tot_b } else { 0.0 };
                for d in d1.values_mut() {
                    for x in d.iter_mut() {
                        *x *= scale1;
                    }
                }
                for d in d2.values_mut() {
                    for x in d.iter_mut() {
                        *x *= scale2;
                    }
                }
                for (d, _) in combined.values_mut() {
                    let tot: f64 = d.iter().sum();
                    let sc = if tot > 0.0 { s / tot } else { 0.0 };
                    for x in d.iter_mut() {
                        *x *= sc;
                    }
                }
                let mfv_new: Vec<f64> = (0..k)
                    .map(|i| {
                        ma.get(i).copied().unwrap_or(1.0).max(1.0)
                            * mb.get(i).copied().unwrap_or(1.0).max(1.0)
                    })
                    .collect();
                combined.insert(v, (bound, mfv_new));
                rows = s;
            }
            let mut out = RefFactor::scalar(rows);
            if rows <= 0.0 {
                return out;
            }
            for (v, (d, m)) in combined {
                if keep.contains(v) {
                    out.dists.insert(v, d);
                    out.mfvs.insert(v, m);
                }
            }
            let max_mfv = |mfv: &BTreeMap<usize, Vec<f64>>, v: usize| -> f64 {
                mfv[&v].iter().fold(1.0f64, |a, &b| a.max(b.max(1.0)))
            };
            let mult_for_1: f64 = shared.iter().map(|&v| max_mfv(&other.mfvs, v)).product();
            let mult_for_2: f64 = shared.iter().map(|&v| max_mfv(&self.mfvs, v)).product();
            for (v, d) in d1 {
                if keep.contains(v) {
                    let m = self.mfvs[&v]
                        .iter()
                        .map(|&x| x.max(1.0) * mult_for_1)
                        .collect();
                    out.dists.insert(v, d);
                    out.mfvs.insert(v, m);
                }
            }
            for (v, d) in d2 {
                if keep.contains(v) {
                    let m = other.mfvs[&v]
                        .iter()
                        .map(|&x| x.max(1.0) * mult_for_2)
                        .collect();
                    out.dists.insert(v, d);
                    out.mfvs.insert(v, m);
                }
            }
            out
        }

        fn cross_product(&self, other: &RefFactor, keep: &KeepVars) -> RefFactor {
            let mut out = RefFactor::scalar(self.rows * other.rows);
            for (src, mult) in [(self, other.rows), (other, self.rows)] {
                for (&v, d) in &src.dists {
                    if keep.contains(v) {
                        out.dists.insert(v, d.iter().map(|&x| x * mult).collect());
                        out.mfvs.insert(
                            v,
                            src.mfvs[&v]
                                .iter()
                                .map(|&x| x.max(1.0) * mult.max(1.0))
                                .collect(),
                        );
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::RefFactor;
    use super::*;
    use proptest::prelude::*;

    fn keep_only(vars: &[usize]) -> KeepVars {
        let mut kv = KeepVars::none();
        for &v in vars {
            kv.insert(v);
        }
        kv
    }

    /// Paper Figure 5: bin₁ of A.id has MFV 8, total 16; bin₁ of B.Aid has
    /// MFV 6, total 24 → bound = min(16/8, 24/6) · 8 · 6 = 96.
    #[test]
    fn figure5_single_bin_bound() {
        let a = Factor::base(16.0, vec![(0, vec![16.0], vec![8.0])]);
        let b = Factor::base(24.0, vec![(0, vec![24.0], vec![6.0])]);
        let j = a.join(&b, &KeepVars::none());
        assert_eq!(j.rows, 96.0);
        assert!(j.vars().is_empty());
    }

    /// The bound must dominate the exact per-bin join count: the Figure 2
    /// example's true cardinality is 83, bounded above by 96.
    #[test]
    fn bound_dominates_truth() {
        let a = Factor::base(16.0, vec![(0, vec![16.0], vec![8.0])]);
        let b = Factor::base(18.0, vec![(0, vec![18.0], vec![6.0])]);
        let j = a.join(&b, &KeepVars::none());
        assert!(j.rows >= 83.0, "bound {} below truth", j.rows);
    }

    #[test]
    fn multi_bin_bound_sums_bins() {
        let a = Factor::base(10.0, vec![(0, vec![6.0, 4.0], vec![3.0, 2.0])]);
        let b = Factor::base(9.0, vec![(0, vec![3.0, 6.0], vec![1.0, 3.0])]);
        let j = a.join(&b, &KeepVars::none());
        // bin0: min(6·1, 3·3, 6·3) = 6; bin1: min(4·3, 6·2, 4·6) = 12.
        assert_eq!(j.rows, 18.0);
    }

    #[test]
    fn zero_mass_bins_contribute_nothing() {
        let a = Factor::base(5.0, vec![(0, vec![5.0, 0.0], vec![2.0, 3.0])]);
        let b = Factor::base(7.0, vec![(0, vec![0.0, 7.0], vec![2.0, 4.0])]);
        let j = a.join(&b, &KeepVars::none());
        assert_eq!(j.rows, 0.0);
    }

    #[test]
    fn kept_variable_becomes_new_distribution() {
        let a = Factor::base(10.0, vec![(0, vec![6.0, 4.0], vec![2.0, 2.0])]);
        let b = Factor::base(8.0, vec![(0, vec![4.0, 4.0], vec![2.0, 2.0])]);
        let j = a.join(&b, &keep_only(&[0]));
        assert_eq!(j.vars(), vec![0]);
        let d = j.dist(0).unwrap();
        assert_eq!(d.iter().sum::<f64>(), j.rows);
        // New MFV = product of the sides' MFVs.
        assert_eq!(j.mfv(0).unwrap(), vec![4.0, 4.0]);
    }

    #[test]
    fn residual_variable_scales_with_fanout() {
        // f1 carries var 1 (not shared); joining on var 0 doubles rows.
        let f1 = Factor::base(
            4.0,
            vec![
                (0, vec![4.0], vec![1.0]),
                (1, vec![3.0, 1.0], vec![2.0, 1.0]),
            ],
        );
        let f2 = Factor::base(8.0, vec![(0, vec![8.0], vec![2.0])]);
        let j = f1.join(&f2, &keep_only(&[1]));
        // bound on var0: min(4·2, 8·1, 32) = 8 → rows 8, fanout ×2.
        assert_eq!(j.rows, 8.0);
        let d1 = j.dist(1).unwrap();
        assert_eq!(d1, vec![6.0, 2.0]);
        // Residual MFV multiplied by the other side's max MFV (2).
        assert_eq!(j.mfv(1).unwrap(), vec![4.0, 2.0]);
    }

    #[test]
    fn join_is_symmetric_in_rows() {
        let a = Factor::base(
            12.0,
            vec![
                (0, vec![5.0, 7.0], vec![3.0, 4.0]),
                (1, vec![12.0], vec![5.0]),
            ],
        );
        let b = Factor::base(6.0, vec![(0, vec![2.0, 4.0], vec![1.0, 2.0])]);
        let ab = a.join(&b, &KeepVars::all());
        let ba = b.join(&a, &KeepVars::all());
        assert!((ab.rows - ba.rows).abs() < 1e-9);
        assert_eq!(ab.vars(), ba.vars());
    }

    #[test]
    fn two_shared_vars_cyclic_case() {
        // Both factors share vars 0 and 1 (paper Appendix Case 5 shape).
        let a = Factor::base(
            10.0,
            vec![(0, vec![10.0], vec![2.0]), (1, vec![10.0], vec![5.0])],
        );
        let b = Factor::base(
            20.0,
            vec![(0, vec![20.0], vec![4.0]), (1, vec![20.0], vec![2.0])],
        );
        let j = a.join(&b, &KeepVars::none());
        // Sequential: var0 → min(10·4, 20·2, 200) = 40.
        // var1 scaled: a-side 10→40, b-side 20→40;
        //   then min(40·2, 40·5, 1600) = 80.
        assert_eq!(j.rows, 80.0);
        // The genuine single-shared-var bound: the same factors joined on
        // var 0 alone. The var-1 elimination step can inflate that bound by
        // at most min(max V*₁ₐ, max V*₁ᵦ) = min(5, 2) = 2 — the sequential
        // composition must respect that cap.
        let a0 = Factor::base(10.0, vec![(0, vec![10.0], vec![2.0])]);
        let b0 = Factor::base(20.0, vec![(0, vec![20.0], vec![4.0])]);
        let j0 = a0.join(&b0, &KeepVars::none());
        assert_eq!(j0.rows, 40.0);
        assert!(
            j.rows <= j0.rows * 2.0,
            "cyclic bound {} exceeds single-var bound {} × min max-MFV 2",
            j.rows,
            j0.rows
        );
    }

    #[test]
    fn cross_product_when_disjoint() {
        let a = Factor::base(3.0, vec![(0, vec![3.0], vec![1.0])]);
        let b = Factor::base(4.0, vec![(1, vec![4.0], vec![2.0])]);
        let j = a.join(&b, &KeepVars::all());
        assert_eq!(j.rows, 12.0);
        assert_eq!(j.dist(0).unwrap(), vec![12.0]);
        assert_eq!(j.dist(1).unwrap(), vec![12.0]);
    }

    #[test]
    fn scalar_join_scales() {
        let a = Factor::scalar(5.0);
        let b = Factor::base(4.0, vec![(0, vec![4.0], vec![2.0])]);
        let j = a.join(&b, &KeepVars::all());
        assert_eq!(j.rows, 20.0);
    }

    #[test]
    fn estimated_fractional_masses_are_fine() {
        // Estimators produce fractional per-bin masses; bounds stay sane.
        let a = Factor::base(0.9, vec![(0, vec![0.6, 0.3], vec![8.0, 2.0])]);
        let b = Factor::base(100.0, vec![(0, vec![40.0, 60.0], vec![10.0, 10.0])]);
        let j = a.join(&b, &KeepVars::none());
        // bin0 min(0.6·10, 40·8, 24) = 6; bin1 min(0.3·10, 60·2, 18) = 3.
        assert!((j.rows - 9.0).abs() < 1e-9, "rows {}", j.rows);
    }

    #[test]
    fn negative_inputs_clamped() {
        let a = Factor::base(5.0, vec![(0, vec![-1.0, 5.0], vec![1.0, 1.0])]);
        let b = Factor::base(5.0, vec![(0, vec![2.0, 3.0], vec![1.0, 1.0])]);
        let j = a.join(&b, &KeepVars::none());
        assert!(j.rows >= 0.0);
        assert!(j.rows <= 15.0);
    }

    #[test]
    fn keepvars_inserts_and_checks() {
        let mut kv = KeepVars::none();
        assert!(!kv.contains(0));
        kv.insert(0);
        kv.insert(63);
        kv.insert(64);
        kv.insert(MAX_VARS - 1);
        assert!(kv.contains(0) && kv.contains(63) && kv.contains(64));
        assert!(kv.contains(MAX_VARS - 1));
        assert!(!kv.contains(1));
        assert!(KeepVars::all().contains(MAX_VARS - 1));
        assert_eq!(KeepVars::from_fn(4, |v| v % 2 == 0), keep_only(&[0, 2]));
    }

    #[test]
    fn arena_join_matches_standalone_join() {
        let a = Factor::base(
            12.0,
            vec![
                (0, vec![5.0, 7.0], vec![3.0, 4.0]),
                (1, vec![12.0], vec![5.0]),
            ],
        );
        let b = Factor::base(6.0, vec![(0, vec![2.0, 4.0], vec![1.0, 2.0])]);
        let keep = KeepVars::all();
        let direct = a.join(&b, &keep);

        let mut arena = FactorArena::default();
        let mut scratch = JoinScratch::default();
        scratch.begin();
        let ia = {
            scratch.begin();
            scratch.push_var(0, &[5.0, 7.0], &[3.0, 4.0]);
            scratch.push_var(1, &[12.0], &[5.0]);
            scratch.finish();
            arena.push_scratch(12.0, &scratch)
        };
        let ib = {
            scratch.begin();
            scratch.push_var(0, &[2.0, 4.0], &[1.0, 2.0]);
            scratch.finish();
            arena.push_scratch(6.0, &scratch)
        };
        let (id, rows) = arena.join(ia, ib, &keep, &mut scratch);
        assert_eq!(rows, direct.rows);
        let out = arena.get(id);
        assert_eq!(out.vars(), direct.vars());
        for v in out.vars() {
            assert_eq!(out.dist(v), direct.dist(v));
            assert_eq!(out.mfv(v), direct.mfv(v));
        }
    }

    #[test]
    fn warm_scratch_and_arena_do_not_grow() {
        let a = Factor::base(
            12.0,
            vec![
                (0, vec![5.0, 7.0], vec![3.0, 4.0]),
                (1, vec![12.0], vec![5.0]),
            ],
        );
        let b = Factor::base(6.0, vec![(0, vec![2.0, 4.0], vec![1.0, 2.0])]);
        let keep = KeepVars::all();
        let mut arena = FactorArena::default();
        let mut scratch = JoinScratch::default();
        // Warm-up round.
        scratch.begin();
        scratch.push_var(0, &[5.0, 7.0], &[3.0, 4.0]);
        scratch.push_var(1, &[12.0], &[5.0]);
        scratch.finish();
        let ia = arena.push_scratch(12.0, &scratch);
        scratch.begin();
        scratch.push_var(0, &[2.0, 4.0], &[1.0, 2.0]);
        scratch.finish();
        let ib = arena.push_scratch(6.0, &scratch);
        arena.join(ia, ib, &keep, &mut scratch);
        let _ = (a, b);
        // Steady state: same shapes must not grow anything.
        let (se, ae) = (scratch.grow_events(), arena.grow_events());
        arena.clear();
        scratch.begin();
        scratch.push_var(0, &[5.0, 7.0], &[3.0, 4.0]);
        scratch.push_var(1, &[12.0], &[5.0]);
        scratch.finish();
        let ia = arena.push_scratch(12.0, &scratch);
        scratch.begin();
        scratch.push_var(0, &[2.0, 4.0], &[1.0, 2.0]);
        scratch.finish();
        let ib = arena.push_scratch(6.0, &scratch);
        arena.join(ia, ib, &keep, &mut scratch);
        assert_eq!(scratch.grow_events(), se, "scratch grew on a warm pass");
        assert_eq!(arena.grow_events(), ae, "arena grew on a warm pass");
    }

    // ------------------------------------------- differential testing

    fn flat_of(rf: &RefFactor) -> Factor {
        let entries = rf
            .dists
            .iter()
            .map(|(&v, d)| (v, d.clone(), rf.mfvs[&v].clone()))
            .collect();
        Factor::base(rf.rows, entries)
    }

    fn assert_close(a: f64, b: f64, what: &str) {
        let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
        assert!((a - b).abs() <= tol, "{what}: flat {a} vs reference {b}");
    }

    fn assert_equivalent(flat: &Factor, rf: &RefFactor) {
        assert_close(flat.rows, rf.rows, "rows");
        assert_eq!(
            flat.vars(),
            rf.dists.keys().copied().collect::<Vec<_>>(),
            "var sets"
        );
        for (&v, d_ref) in &rf.dists {
            let d = flat.dist(v).unwrap();
            assert_eq!(d.len(), d_ref.len(), "dist len of var {v}");
            for (i, (&x, &y)) in d.iter().zip(d_ref).enumerate() {
                assert_close(x, y, &format!("dist[{i}] of var {v}"));
            }
            let m = flat.mfv(v).unwrap();
            let m_ref = &rf.mfvs[&v];
            assert_eq!(m.len(), m_ref.len(), "mfv len of var {v}");
            for (i, (&x, &y)) in m.iter().zip(m_ref).enumerate() {
                assert_close(x, y, &format!("mfv[{i}] of var {v}"));
            }
        }
    }

    /// Pairs of (mass, mfv) per bin; small magnitudes get snapped to exact
    /// zero so zero-mass bins are exercised, and a slice of the range is
    /// negative to exercise clamping.
    fn bin_pairs() -> impl Strategy<Value = Vec<(f64, f64)>> {
        prop::collection::vec(
            (-2.0f64..30.0, 0.0f64..8.0).prop_map(|(d, m)| {
                let d = if d.abs() < 0.7 { 0.0 } else { d };
                let m = if m < 0.5 { 0.0 } else { m };
                (d, m)
            }),
            1..6,
        )
    }

    fn ref_factor() -> impl Strategy<Value = RefFactor> {
        (
            0.0f64..100.0,
            prop::collection::hash_map(0usize..5, bin_pairs(), 1..4),
        )
            .prop_map(|(rows, vars)| {
                let entries = vars
                    .into_iter()
                    .map(|(v, pairs)| {
                        let (d, m): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
                        (v, d, m)
                    })
                    .collect();
                RefFactor::base(rows, entries)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 300, ..ProptestConfig::default() })]

        /// The flat join is numerically equivalent to the reference
        /// BTreeMap join: same rows, same surviving vars, same dists and
        /// MFVs within 1e-9 relative — for arbitrary var sets, bin counts,
        /// keep masks, and zero/negative masses.
        #[test]
        fn flat_join_matches_reference(
            ra in ref_factor(),
            rb in ref_factor(),
            keep_bits in 0u32..32,
        ) {
            let keep = KeepVars::from_fn(5, |v| keep_bits & (1 << v) != 0);
            let expected = ra.join(&rb, &keep);
            let got = flat_of(&ra).join(&flat_of(&rb), &keep);
            assert_equivalent(&got, &expected);
        }

        /// Equivalence survives chained joins, where lazy scales and MFV
        /// multiplicities accumulate across factors.
        #[test]
        fn flat_join_matches_reference_chained(
            ra in ref_factor(),
            rb in ref_factor(),
            rc in ref_factor(),
            keep1 in 0u32..32,
            keep2 in 0u32..32,
        ) {
            let k1 = KeepVars::from_fn(5, |v| keep1 & (1 << v) != 0);
            let k2 = KeepVars::from_fn(5, |v| keep2 & (1 << v) != 0);
            let expected = ra.join(&rb, &k1).join(&rc, &k2);
            let got = flat_of(&ra).join(&flat_of(&rb), &k1).join(&flat_of(&rc), &k2);
            assert_equivalent(&got, &expected);
        }

        /// The flat join preserves the upper-bound property on exact
        /// single-bin statistics (paper Eq. 5).
        #[test]
        fn flat_join_upper_bounds_exact_counts(
            left in prop::collection::vec(1u32..50, 1..20),
            right in prop::collection::vec(1u32..50, 1..20),
        ) {
            let n = left.len().min(right.len());
            let (left, right) = (&left[..n], &right[..n]);
            let truth: f64 = left.iter().zip(right).map(|(&l, &r)| l as f64 * r as f64).sum();
            let (dl, dr) = (
                left.iter().map(|&x| x as f64).sum::<f64>(),
                right.iter().map(|&x| x as f64).sum::<f64>(),
            );
            let (ml, mr) = (
                left.iter().copied().max().unwrap_or(1) as f64,
                right.iter().copied().max().unwrap_or(1) as f64,
            );
            let fa = Factor::base(dl, vec![(0, vec![dl], vec![ml])]);
            let fb = Factor::base(dr, vec![(0, vec![dr], vec![mr])]);
            let j = fa.join(&fb, &KeepVars::none());
            prop_assert!(j.rows >= truth - 1e-6, "bound {} < truth {}", j.rows, truth);
        }
    }
}
