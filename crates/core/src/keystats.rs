//! Per-bin join-key statistics: total counts and most-frequent-value counts.
//!
//! The probabilistic bound (paper Eq. 5) needs, for every join key and
//! every bin `i`, the offline **MFV count** `V*_i` — the count of the most
//! frequent value inside the bin — and the bin's total count. Both are
//! maintained incrementally under inserts (paper §4.3): the frequency map
//! is updated, the bin totals adjusted, and `V*` re-maximized.

use crate::binning::KeyFreq;
use fj_stats::KeyBinMap;
use fj_storage::{Column, Table};
use serde::{Deserialize, Serialize};

/// Per-bin `(total, MFV, NDV)` vectors (see [`KeyStats::bin_vectors`]).
pub(crate) type BinVectors = (Vec<f64>, Vec<f64>, Vec<f64>);

/// Offline statistics of one join-key column under a fixed bin map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeyStats {
    /// Total occurrences (rows, NULLs excluded) per bin.
    pub bin_total: Vec<f64>,
    /// Most-frequent-value count per bin (`V*_i`).
    pub bin_mfv: Vec<f64>,
    /// Distinct values per bin (diagnostics; enables NDV-based baselines).
    pub bin_ndv: Vec<f64>,
    /// Value→count frequency map (kept for GBSA and incremental updates).
    pub freq: KeyFreq,
}

impl KeyStats {
    /// Computes statistics for `column` under `bins`.
    pub fn build(column: &Column, bins: &KeyBinMap) -> Self {
        Self::from_freq(KeyFreq::count_column(column), bins)
    }

    /// Computes statistics from a pre-computed frequency map.
    pub fn from_freq(freq: KeyFreq, bins: &KeyBinMap) -> Self {
        let vectors = Self::bin_vectors(&freq, bins);
        Self::from_vectors(vectors, freq)
    }

    /// The per-bin `(total, MFV, NDV)` vectors of `freq` under `bins` —
    /// the borrow-only half of [`Self::from_freq`], so parallel training
    /// can compute vectors in worker tasks and move each frequency map
    /// into its [`KeyStats`] during serial assembly.
    pub(crate) fn bin_vectors(freq: &KeyFreq, bins: &KeyBinMap) -> BinVectors {
        let k = bins.k();
        let mut bin_total = vec![0.0; k];
        let mut bin_mfv = vec![0.0; k];
        let mut bin_ndv = vec![0.0; k];
        for (v, c) in freq.iter() {
            let b = bins.bin_of(v);
            bin_total[b] += c as f64;
            bin_ndv[b] += 1.0;
            if c as f64 > bin_mfv[b] {
                bin_mfv[b] = c as f64;
            }
        }
        (bin_total, bin_mfv, bin_ndv)
    }

    /// Assembles statistics from pre-computed bin vectors plus the
    /// frequency map they were computed from.
    pub(crate) fn from_vectors((bin_total, bin_mfv, bin_ndv): BinVectors, freq: KeyFreq) -> Self {
        KeyStats {
            bin_total,
            bin_mfv,
            bin_ndv,
            freq,
        }
    }

    /// Number of bins.
    pub fn k(&self) -> usize {
        self.bin_total.len()
    }

    /// Total non-null occurrences across bins.
    pub fn total(&self) -> f64 {
        self.bin_total.iter().sum()
    }

    /// Incorporates the new rows `first_new_row..` of `table`'s column
    /// `ci`, updating frequencies, totals, NDV, and MFV counts. New values
    /// are adopted into their fallback bin of `bins`.
    pub fn insert(&mut self, table: &Table, ci: usize, first_new_row: usize, bins: &mut KeyBinMap) {
        let column = table.column(ci);
        for r in first_new_row..table.nrows() {
            if let Some(v) = column.key_at(r) {
                let c = self.freq.add(v, 1);
                // Only genuinely-new values need adopting (pinning their
                // fallback assignment); repeats resolve with a read-only
                // lookup, keeping the per-row update cost flat.
                let b = if c == 1 {
                    bins.adopt(v)
                } else {
                    bins.bin_of(v)
                };
                if c == 1 {
                    self.bin_ndv[b] += 1.0;
                }
                self.bin_total[b] += 1.0;
                if c as f64 > self.bin_mfv[b] {
                    self.bin_mfv[b] = c as f64;
                }
            }
        }
    }

    /// Approximate heap size in bytes (model-size accounting). The
    /// frequency map dominates; per the paper the deployable statistics are
    /// the per-bin vectors, so both are reported separately.
    pub fn heap_bytes(&self) -> usize {
        self.bin_total.len() * 8 * 3
    }

    /// Bytes including the auxiliary frequency map kept for updates.
    pub fn heap_bytes_with_freq(&self) -> usize {
        self.heap_bytes() + self.freq.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_storage::{ColumnDef, Table, TableSchema, Value};
    use std::collections::HashMap;

    fn column(values: &[Option<i64>]) -> Table {
        let schema = TableSchema::new(vec![ColumnDef::key("id")]);
        let rows: Vec<Vec<Value>> = values
            .iter()
            .map(|v| vec![v.map(Value::Int).unwrap_or(Value::Null)])
            .collect();
        Table::from_rows("t", schema, &rows).unwrap()
    }

    fn bins2() -> KeyBinMap {
        // Values 1,2 → bin 0; 3,4 → bin 1.
        let map: HashMap<i64, u32> = [(1, 0), (2, 0), (3, 1), (4, 1)].into_iter().collect();
        KeyBinMap::new(2, map)
    }

    #[test]
    fn totals_mfv_ndv_per_bin() {
        let t = column(&[
            Some(1),
            Some(1),
            Some(1),
            Some(2),
            Some(3),
            Some(4),
            Some(4),
            None,
        ]);
        let s = KeyStats::build(t.column(0), &bins2());
        assert_eq!(s.bin_total, vec![4.0, 3.0]);
        assert_eq!(s.bin_mfv, vec![3.0, 2.0]);
        assert_eq!(s.bin_ndv, vec![2.0, 2.0]);
        assert_eq!(s.total(), 7.0, "NULLs excluded");
    }

    #[test]
    fn paper_figure5_mfv_summary() {
        // Figure 5: A.id counts a:8, b:4, c:1, f:3 in bin1 → MFV 8, total 16.
        let mut values = Vec::new();
        for (v, c) in [(1i64, 8), (2, 4), (3, 1), (4, 3)] {
            values.extend(std::iter::repeat_n(Some(v), c));
        }
        let t = column(&values);
        let map: HashMap<i64, u32> = [(1, 0), (2, 0), (3, 0), (4, 0)].into_iter().collect();
        let s = KeyStats::build(t.column(0), &KeyBinMap::new(1, map));
        assert_eq!(s.bin_total, vec![16.0]);
        assert_eq!(s.bin_mfv, vec![8.0]);
    }

    #[test]
    fn insert_updates_incrementally() {
        let mut t = column(&[Some(1), Some(2), Some(3)]);
        let mut bins = bins2();
        let mut s = KeyStats::build(t.column(0), &bins);
        assert_eq!(s.bin_mfv, vec![1.0, 1.0]);
        // Insert three more 1s and one new value 99.
        t.append_rows(&[
            vec![Value::Int(1)],
            vec![Value::Int(1)],
            vec![Value::Int(1)],
            vec![Value::Int(99)],
        ])
        .unwrap();
        s.insert(&t, 0, 3, &mut bins);
        assert_eq!(s.freq.get(1), 4);
        let b1 = bins.bin_of(1);
        assert_eq!(s.bin_mfv[b1], 4.0);
        // 99 was adopted into some bin and counted.
        let b99 = bins.bin_of(99);
        assert!(s.bin_total[b99] >= 1.0);
        assert_eq!(s.total(), 7.0);
    }

    #[test]
    fn incremental_equals_rebuild() {
        let mut t = column(&(0..50).map(|i| Some(i % 4 + 1)).collect::<Vec<_>>());
        let mut bins = bins2();
        let mut s = KeyStats::build(t.column(0), &bins);
        let new: Vec<Vec<Value>> = (0..30).map(|i| vec![Value::Int(i % 4 + 1)]).collect();
        t.append_rows(&new).unwrap();
        s.insert(&t, 0, 50, &mut bins);
        let rebuilt = KeyStats::build(t.column(0), &bins);
        assert_eq!(s.bin_total, rebuilt.bin_total);
        assert_eq!(s.bin_mfv, rebuilt.bin_mfv);
        assert_eq!(s.bin_ndv, rebuilt.bin_ndv);
    }

    #[test]
    fn empty_column() {
        let t = column(&[None, None]);
        let s = KeyStats::build(t.column(0), &bins2());
        assert_eq!(s.total(), 0.0);
        assert_eq!(s.bin_mfv, vec![0.0, 0.0]);
    }
}
