//! Model persistence.
//!
//! FactorJoin's deployable statistics — the per-group bin maps and the
//! per-key bin statistics — serialize to JSON. Single-table estimators are
//! *rebuilt* from the catalog on load: they train in well under a second at
//! paper scale (Figure 6), so shipping them would only complicate the
//! format. The saved file pins the binning, which is the part whose
//! reproducibility matters (bin selection is the expensive, data-dependent
//! step, and incremental updates must keep bins fixed, §4.3).

use crate::binning::{BinningStrategy, KeyFreq};
use crate::keystats::KeyStats;
use crate::model::{BaseEstimatorKind, FactorJoinConfig, FactorJoinModel};
use fj_stats::{BnConfig, KeyBinMap};
use fj_storage::{Catalog, KeyRef};
use serde_json::Value;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// On-disk representation of a trained model's statistics.
///
/// The JSON mapping is hand-rolled against [`serde_json::Value`] (the
/// vendored serde derives are no-ops, see `vendor/README.md`): integers
/// keyed maps are stored as sorted `[key, value]` pair arrays so the output
/// is deterministic and stays valid JSON.
#[derive(Debug)]
pub struct SavedModel {
    /// Format version.
    pub version: u32,
    /// Binning strategy used at training time.
    pub strategy: String,
    /// Estimator kind (`"bayesnet"`, `"sampling:<rate>"`, `"truescan"`).
    pub estimator: String,
    /// Seed for sampling estimators.
    pub seed: u64,
    /// Per-group bin maps.
    pub group_bins: Vec<KeyBinMap>,
    /// Join key → group id.
    pub group_of: HashMap<String, usize>,
    /// Join key → per-bin statistics.
    pub key_stats: HashMap<String, KeyStats>,
}

// ------------------------------------------------------- JSON conversion

fn err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

fn binmap_to_json(b: &KeyBinMap) -> Value {
    let mut pairs: Vec<(i64, u32)> = b.entries().collect();
    pairs.sort_unstable();
    Value::object([
        ("k".to_string(), Value::from(b.k())),
        (
            "map".to_string(),
            Value::Array(
                pairs
                    .into_iter()
                    .map(|(v, bin)| Value::Array(vec![Value::from(v), Value::from(bin)]))
                    .collect(),
            ),
        ),
    ])
}

fn binmap_from_json(v: &Value) -> std::io::Result<KeyBinMap> {
    let k = v["k"].as_u64().ok_or_else(|| err("bin map: bad k"))? as usize;
    let mut map = HashMap::new();
    for pair in v["map"].as_array().ok_or_else(|| err("bin map: bad map"))? {
        let key = pair[0].as_i64().ok_or_else(|| err("bin map: bad key"))?;
        let bin = pair[1].as_u64().ok_or_else(|| err("bin map: bad bin"))? as u32;
        if bin as usize >= k.max(1) {
            return Err(err(format!("bin map: bin {bin} out of range for k={k}")));
        }
        map.insert(key, bin);
    }
    if k == 0 {
        return Err(err("bin map: k must be positive"));
    }
    Ok(KeyBinMap::new(k, map))
}

fn f64s_to_json(xs: &[f64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::from(x)).collect())
}

fn f64s_from_json(v: &Value) -> std::io::Result<Vec<f64>> {
    v.as_array()
        .ok_or_else(|| err("expected number array"))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| err("expected number")))
        .collect()
}

fn keystats_to_json(s: &KeyStats) -> Value {
    let freq = s.freq.sorted_entries();
    Value::object([
        ("bin_total".to_string(), f64s_to_json(&s.bin_total)),
        ("bin_mfv".to_string(), f64s_to_json(&s.bin_mfv)),
        ("bin_ndv".to_string(), f64s_to_json(&s.bin_ndv)),
        (
            "freq".to_string(),
            Value::Array(
                freq.into_iter()
                    .map(|(v, c)| Value::Array(vec![Value::from(v), Value::from(c)]))
                    .collect(),
            ),
        ),
    ])
}

fn keystats_from_json(v: &Value) -> std::io::Result<KeyStats> {
    let mut freq = KeyFreq::default();
    for pair in v["freq"]
        .as_array()
        .ok_or_else(|| err("key stats: bad freq"))?
    {
        let value = pair[0]
            .as_i64()
            .ok_or_else(|| err("key stats: bad freq key"))?;
        let count = pair[1]
            .as_u64()
            .ok_or_else(|| err("key stats: bad freq count"))?;
        freq.set(value, count);
    }
    Ok(KeyStats {
        bin_total: f64s_from_json(&v["bin_total"])?,
        bin_mfv: f64s_from_json(&v["bin_mfv"])?,
        bin_ndv: f64s_from_json(&v["bin_ndv"])?,
        freq,
    })
}

fn saved_to_json(saved: &SavedModel) -> Value {
    Value::object([
        ("version".to_string(), Value::from(saved.version)),
        ("strategy".to_string(), Value::from(saved.strategy.clone())),
        (
            "estimator".to_string(),
            Value::from(saved.estimator.clone()),
        ),
        ("seed".to_string(), Value::from(saved.seed)),
        (
            "group_bins".to_string(),
            Value::Array(saved.group_bins.iter().map(binmap_to_json).collect()),
        ),
        (
            "group_of".to_string(),
            Value::object(
                saved
                    .group_of
                    .iter()
                    .map(|(k, &g)| (k.clone(), Value::from(g))),
            ),
        ),
        (
            "key_stats".to_string(),
            Value::object(
                saved
                    .key_stats
                    .iter()
                    .map(|(k, s)| (k.clone(), keystats_to_json(s))),
            ),
        ),
    ])
}

fn saved_from_json(v: &Value) -> std::io::Result<SavedModel> {
    let version = v["version"]
        .as_u64()
        .ok_or_else(|| err("missing version"))? as u32;
    if version != 1 {
        return Err(err(format!("unsupported model format version {version}")));
    }
    let strategy = v["strategy"]
        .as_str()
        .ok_or_else(|| err("missing strategy"))?
        .to_string();
    let estimator = v["estimator"]
        .as_str()
        .ok_or_else(|| err("missing estimator"))?
        .to_string();
    let seed = v["seed"].as_u64().ok_or_else(|| err("missing seed"))?;
    let group_bins = v["group_bins"]
        .as_array()
        .ok_or_else(|| err("missing group_bins"))?
        .iter()
        .map(binmap_from_json)
        .collect::<std::io::Result<Vec<_>>>()?;
    let mut group_of = HashMap::new();
    for (k, g) in v["group_of"]
        .as_object()
        .ok_or_else(|| err("missing group_of"))?
    {
        let gid = g.as_u64().ok_or_else(|| err("group_of: bad group id"))? as usize;
        if gid >= group_bins.len() {
            return Err(err(format!("group_of: group {gid} has no bin map")));
        }
        group_of.insert(k.clone(), gid);
    }
    let mut key_stats = HashMap::new();
    for (k, s) in v["key_stats"]
        .as_object()
        .ok_or_else(|| err("missing key_stats"))?
    {
        let stats = keystats_from_json(s)?;
        // Per-bin vectors must agree with each other and with the bin count
        // of the key's group, or estimation would index out of bounds later.
        if stats.bin_mfv.len() != stats.bin_total.len()
            || stats.bin_ndv.len() != stats.bin_total.len()
        {
            return Err(err(format!(
                "key stats {k:?}: per-bin vectors disagree in length"
            )));
        }
        if let Some(&gid) = group_of.get(k) {
            let expect = group_bins[gid].k();
            if stats.k() != expect {
                return Err(err(format!(
                    "key stats {k:?}: {} bins but group {gid} has {expect}",
                    stats.k()
                )));
            }
        }
        key_stats.insert(k.clone(), stats);
    }
    Ok(SavedModel {
        version,
        strategy,
        estimator,
        seed,
        group_bins,
        group_of,
        key_stats,
    })
}

fn key_to_string(k: &KeyRef) -> String {
    format!("{}.{}", k.table, k.column)
}

/// Writes `bytes`' producer output to `path` atomically: serialize into a
/// same-directory temp file, flush + `fsync`, then `rename` over the
/// target. A crash at any point leaves either the old file or the new one,
/// never a torn mix — `rename` within one directory is atomic on POSIX
/// filesystems, and the temp file must live in the same directory so the
/// rename cannot cross a mount. The directory itself is fsynced
/// best-effort afterwards so the rename survives a power cut.
fn write_atomic(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<std::fs::File>) -> std::io::Result<()>,
) -> std::io::Result<()> {
    static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| err("save path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        name.to_string_lossy(),
        std::process::id(),
        TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    ));
    let result = (|| {
        let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
        write(&mut w)?;
        w.flush()?;
        let file = w.into_inner().map_err(|e| e.into_error())?;
        // Durability point: the temp file's bytes must hit disk before the
        // rename publishes them, or a crash could expose an empty file
        // under the final name.
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Never leave a stray temp file behind on failure.
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Best-effort: persist the directory entry for the rename. Failure here
    // (e.g. platforms where directories cannot be opened) is not fatal —
    // the data file itself is already durable.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Serializes the model's statistics to `path` as JSON.
///
/// The write is crash-safe: the JSON is staged in a same-directory temp
/// file, fsynced, and renamed over `path`, so a kill or power loss
/// mid-save leaves the previous model file intact (`write_atomic` below).
pub fn save_model(model: &FactorJoinModel, path: &Path) -> std::io::Result<()> {
    let cfg = model.config();
    let estimator = match cfg.estimator {
        BaseEstimatorKind::BayesNet(_) => "bayesnet".to_string(),
        BaseEstimatorKind::Sampling { rate } => format!("sampling:{rate}"),
        BaseEstimatorKind::TrueScan => "truescan".to_string(),
    };
    let strategy = match cfg.strategy {
        BinningStrategy::Gbsa => "gbsa",
        BinningStrategy::EqualWidth => "equal-width",
        BinningStrategy::EqualDepth => "equal-depth",
    };
    // Walk the model's public accessors to collect the stats.
    let mut group_of = HashMap::new();
    let mut key_stats = HashMap::new();
    let mut max_gid = 0usize;
    for (kr, stats) in model.iter_key_stats() {
        let gid = model
            .group_of(kr)
            .expect("stats exist only for grouped keys");
        max_gid = max_gid.max(gid);
        group_of.insert(key_to_string(kr), gid);
        key_stats.insert(key_to_string(kr), stats.clone());
    }
    let group_bins: Vec<KeyBinMap> = (0..=max_gid).map(|g| model.group_bins(g).clone()).collect();
    let saved = SavedModel {
        version: 1,
        strategy: strategy.to_string(),
        estimator,
        seed: cfg.seed,
        group_bins,
        group_of,
        key_stats,
    };
    write_atomic(path, |w| serde_json::to_writer(w, &saved_to_json(&saved)))
}

/// Loads a saved model, rebuilding single-table estimators from `catalog`.
///
/// The catalog must have the same schema as at save time; data may have
/// changed (estimators retrain on the current data while the saved bins
/// and key statistics are restored verbatim).
pub fn load_model(path: &Path, catalog: &Catalog) -> std::io::Result<FactorJoinModel> {
    let file = std::fs::File::open(path)?;
    // A truncated file (torn non-atomic write, interrupted copy) fails JSON
    // parsing; surface it with the path so the operator knows which file to
    // restore rather than getting a bare "unexpected end of input".
    let value = serde_json::from_reader(BufReader::new(file)).map_err(|e| {
        err(format!(
            "model file {} is truncated or corrupt: {e}",
            path.display()
        ))
    })?;
    let saved = saved_from_json(&value)?;
    let estimator = if saved.estimator == "bayesnet" {
        BaseEstimatorKind::BayesNet(BnConfig::default())
    } else if saved.estimator == "truescan" {
        BaseEstimatorKind::TrueScan
    } else if let Some(rate) = saved.estimator.strip_prefix("sampling:") {
        BaseEstimatorKind::Sampling {
            rate: rate.parse().unwrap_or(0.01),
        }
    } else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unknown estimator {:?}", saved.estimator),
        ));
    };
    let strategy = match saved.strategy.as_str() {
        "gbsa" => BinningStrategy::Gbsa,
        "equal-width" => BinningStrategy::EqualWidth,
        "equal-depth" => BinningStrategy::EqualDepth,
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown strategy {other:?}"),
            ))
        }
    };
    let config = FactorJoinConfig {
        bin_budget: crate::binning::BinBudget::Uniform(
            saved.group_bins.first().map(KeyBinMap::k).unwrap_or(1),
        ),
        strategy,
        estimator,
        seed: saved.seed,
        threads: 0,
    };
    let mut group_of = HashMap::new();
    let mut key_stats = HashMap::new();
    for (key, gid) in &saved.group_of {
        let (table, column) = key
            .split_once('.')
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad key"))?;
        let kr = KeyRef::new(table, column);
        group_of.insert(kr.clone(), *gid);
        if let Some(s) = saved.key_stats.get(key) {
            key_stats.insert(kr, s.clone());
        }
    }
    Ok(FactorJoinModel::from_parts(
        config,
        group_of,
        saved.group_bins,
        key_stats,
        catalog,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinBudget;
    use fj_datagen::{stats_catalog, StatsConfig};
    use fj_query::parse_query;

    #[test]
    fn save_load_roundtrip_preserves_estimates() {
        let cat = stats_catalog(&StatsConfig {
            scale: 0.05,
            ..Default::default()
        });
        let cfg = FactorJoinConfig {
            bin_budget: BinBudget::Uniform(20),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        };
        let model = FactorJoinModel::train(&cat, cfg);
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id;",
        )
        .unwrap();
        let before = model.estimate(&q);

        let dir = std::env::temp_dir().join("fj_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path, &cat).unwrap();
        let after = loaded.estimate(&q);
        assert_eq!(before, after, "persisted bins must reproduce the bound");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("fj_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, b"{not json").unwrap();
        let cat = stats_catalog(&StatsConfig {
            scale: 0.02,
            ..Default::default()
        });
        assert!(load_model(&path, &cat).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_load_rejects_truncation() {
        let cat = stats_catalog(&StatsConfig {
            scale: 0.05,
            ..Default::default()
        });
        let cfg = FactorJoinConfig {
            bin_budget: BinBudget::Uniform(10),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        };
        let model = FactorJoinModel::train(&cat, cfg);
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id;",
        )
        .unwrap();
        let before = model.estimate(&q);

        let dir = std::env::temp_dir().join("fj_persist_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();

        // A successful save leaves no staging debris behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "temp files left after save: {strays:?}");

        // Simulate a crash mid-write of a *second* save: the writer died
        // after staging half the bytes but before the rename. The temp file
        // sits in the directory; the published model file is untouched.
        let good = std::fs::read(&path).unwrap();
        let torn = dir.join(".model.json.tmp.99999.0");
        std::fs::write(&torn, &good[..good.len() / 2]).unwrap();
        let loaded = load_model(&path, &cat).unwrap();
        assert_eq!(
            before,
            loaded.estimate(&q),
            "old model must survive a crashed save"
        );

        // Loading the torn file itself fails with a clear error.
        let e = match load_model(&torn, &cat) {
            Ok(_) => panic!("torn file must not load"),
            Err(e) => e,
        };
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            e.to_string().contains("truncated or corrupt"),
            "unhelpful truncation error: {e}"
        );

        // An empty file (crashed before any bytes) is rejected the same way.
        let empty = dir.join("empty.json");
        std::fs::write(&empty, b"").unwrap();
        assert!(load_model(&empty, &cat).is_err());

        // And a later save still replaces the file cleanly.
        save_model(&model, &path).unwrap();
        assert_eq!(before, load_model(&path, &cat).unwrap().estimate(&q));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saved_file_is_json_with_version() {
        let cat = stats_catalog(&StatsConfig {
            scale: 0.02,
            ..Default::default()
        });
        let model = FactorJoinModel::train(
            &cat,
            FactorJoinConfig {
                bin_budget: BinBudget::Uniform(5),
                estimator: BaseEstimatorKind::Sampling { rate: 0.5 },
                ..Default::default()
            },
        );
        let dir = std::env::temp_dir().join("fj_persist_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["version"], 1);
        assert_eq!(v["estimator"], "sampling:0.5");
        std::fs::remove_file(&path).ok();
    }
}
