//! Model persistence.
//!
//! FactorJoin's deployable statistics — the per-group bin maps and the
//! per-key bin statistics — serialize to JSON. Single-table estimators are
//! *rebuilt* from the catalog on load: they train in well under a second at
//! paper scale (Figure 6), so shipping them would only complicate the
//! format. The saved file pins the binning, which is the part whose
//! reproducibility matters (bin selection is the expensive, data-dependent
//! step, and incremental updates must keep bins fixed, §4.3).

use crate::binning::BinningStrategy;
use crate::keystats::KeyStats;
use crate::model::{BaseEstimatorKind, FactorJoinConfig, FactorJoinModel};
use fj_stats::{BnConfig, KeyBinMap};
use fj_storage::{Catalog, KeyRef};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// On-disk representation of a trained model's statistics.
#[derive(Debug, Serialize, Deserialize)]
pub struct SavedModel {
    /// Format version.
    pub version: u32,
    /// Binning strategy used at training time.
    pub strategy: String,
    /// Estimator kind ("bayesnet", "sampling:<rate>", "truescan").
    pub estimator: String,
    /// Seed for sampling estimators.
    pub seed: u64,
    /// Per-group bin maps.
    pub group_bins: Vec<KeyBinMap>,
    /// Join key → group id.
    pub group_of: HashMap<String, usize>,
    /// Join key → per-bin statistics.
    pub key_stats: HashMap<String, KeyStats>,
}

fn key_to_string(k: &KeyRef) -> String {
    format!("{}.{}", k.table, k.column)
}

/// Serializes the model's statistics to `path` as JSON.
pub fn save_model(model: &FactorJoinModel, path: &Path) -> std::io::Result<()> {
    let cfg = model.config();
    let estimator = match cfg.estimator {
        BaseEstimatorKind::BayesNet(_) => "bayesnet".to_string(),
        BaseEstimatorKind::Sampling { rate } => format!("sampling:{rate}"),
        BaseEstimatorKind::TrueScan => "truescan".to_string(),
    };
    let strategy = match cfg.strategy {
        BinningStrategy::Gbsa => "gbsa",
        BinningStrategy::EqualWidth => "equal-width",
        BinningStrategy::EqualDepth => "equal-depth",
    };
    // Walk the model's public accessors to collect the stats.
    let mut group_of = HashMap::new();
    let mut key_stats = HashMap::new();
    let mut max_gid = 0usize;
    for (kr, stats) in model.iter_key_stats() {
        let gid = model.group_of(kr).expect("stats exist only for grouped keys");
        max_gid = max_gid.max(gid);
        group_of.insert(key_to_string(kr), gid);
        key_stats.insert(key_to_string(kr), stats.clone());
    }
    let group_bins: Vec<KeyBinMap> =
        (0..=max_gid).map(|g| model.group_bins(g).clone()).collect();
    let saved = SavedModel {
        version: 1,
        strategy: strategy.to_string(),
        estimator,
        seed: cfg.seed,
        group_bins,
        group_of,
        key_stats,
    };
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    serde_json::to_writer(&mut w, &saved)?;
    w.flush()
}

/// Loads a saved model, rebuilding single-table estimators from `catalog`.
///
/// The catalog must have the same schema as at save time; data may have
/// changed (estimators retrain on the current data while the saved bins
/// and key statistics are restored verbatim).
pub fn load_model(path: &Path, catalog: &Catalog) -> std::io::Result<FactorJoinModel> {
    let file = std::fs::File::open(path)?;
    let saved: SavedModel = serde_json::from_reader(BufReader::new(file))?;
    let estimator = if saved.estimator == "bayesnet" {
        BaseEstimatorKind::BayesNet(BnConfig::default())
    } else if saved.estimator == "truescan" {
        BaseEstimatorKind::TrueScan
    } else if let Some(rate) = saved.estimator.strip_prefix("sampling:") {
        BaseEstimatorKind::Sampling { rate: rate.parse().unwrap_or(0.01) }
    } else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unknown estimator {:?}", saved.estimator),
        ));
    };
    let strategy = match saved.strategy.as_str() {
        "gbsa" => BinningStrategy::Gbsa,
        "equal-width" => BinningStrategy::EqualWidth,
        "equal-depth" => BinningStrategy::EqualDepth,
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown strategy {other:?}"),
            ))
        }
    };
    let config = FactorJoinConfig {
        bin_budget: crate::binning::BinBudget::Uniform(
            saved.group_bins.first().map(KeyBinMap::k).unwrap_or(1),
        ),
        strategy,
        estimator,
        seed: saved.seed,
    };
    let mut group_of = HashMap::new();
    let mut key_stats = HashMap::new();
    for (key, gid) in &saved.group_of {
        let (table, column) = key
            .split_once('.')
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad key"))?;
        let kr = KeyRef::new(table, column);
        group_of.insert(kr.clone(), *gid);
        if let Some(s) = saved.key_stats.get(key) {
            key_stats.insert(kr, s.clone());
        }
    }
    Ok(FactorJoinModel::from_parts(
        config,
        group_of,
        saved.group_bins,
        key_stats,
        catalog,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinBudget;
    use fj_datagen::{stats_catalog, StatsConfig};
    use fj_query::parse_query;

    #[test]
    fn save_load_roundtrip_preserves_estimates() {
        let cat = stats_catalog(&StatsConfig { scale: 0.05, ..Default::default() });
        let cfg = FactorJoinConfig {
            bin_budget: BinBudget::Uniform(20),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        };
        let model = FactorJoinModel::train(&cat, cfg);
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id;",
        )
        .unwrap();
        let before = model.estimate(&q);

        let dir = std::env::temp_dir().join("fj_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path, &cat).unwrap();
        let after = loaded.estimate(&q);
        assert_eq!(before, after, "persisted bins must reproduce the bound");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("fj_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, b"{not json").unwrap();
        let cat = stats_catalog(&StatsConfig { scale: 0.02, ..Default::default() });
        assert!(load_model(&path, &cat).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saved_file_is_json_with_version() {
        let cat = stats_catalog(&StatsConfig { scale: 0.02, ..Default::default() });
        let model = FactorJoinModel::train(
            &cat,
            FactorJoinConfig {
                bin_budget: BinBudget::Uniform(5),
                estimator: BaseEstimatorKind::Sampling { rate: 0.5 },
                ..Default::default()
            },
        );
        let dir = std::env::temp_dir().join("fj_persist_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["version"], 1);
        assert_eq!(v["estimator"], "sampling:0.5");
        std::fs::remove_file(&path).ok();
    }
}
