//! Model persistence: the binary `.fjm` format plus a JSON debug export.
//!
//! FactorJoin's deployable statistics — the per-group bin maps and the
//! per-key bin statistics — persist in **two formats behind one API**:
//!
//! * **Binary `.fjm`** ([`binary`]) — the production format: versioned,
//!   checksummed, little-endian sections whose layout mirrors the
//!   in-memory flat slabs, so load is validate + bulk copy rather than
//!   parse. This is what [`save_model`] writes by default.
//! * **JSON** ([`save_model_json`]) — the debug export: human-readable,
//!   diff-able, hand-editable for fixtures. ~an order of magnitude larger
//!   and slower to load (`bench-training` records both cold-load times
//!   and CI gates the ratio).
//!
//! The format choice is explicit on save ([`save_model`] dispatches on the
//! path extension: `.json` → JSON, anything else → binary) and **sniffed
//! on load**: [`load_model`] reads the first bytes and accepts either
//! format regardless of extension — `.fjm` files start with the
//! [`binary::MAGIC`] signature, which no JSON document can (JSON starts
//! with `{` or whitespace), so the dispatch is unambiguous.
//!
//! In both formats, single-table estimators are *rebuilt* from the catalog
//! on load: they train in well under a second at paper scale (Figure 6),
//! so shipping them would only complicate the formats. The saved file pins
//! the binning, which is the part whose reproducibility matters (bin
//! selection is the expensive, data-dependent step, and incremental
//! updates must keep bins fixed, §4.3). All writes are crash-safe via
//! [`write_atomic`]-style staging (same-dir temp + fsync + rename).

pub mod binary;

use crate::binning::{BinningStrategy, KeyFreq};
use crate::keystats::KeyStats;
use crate::model::{BaseEstimatorKind, FactorJoinConfig, FactorJoinModel};
use fj_stats::{BnConfig, KeyBinMap};
use fj_storage::{Catalog, KeyRef};
use serde_json::Value;
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::path::Path;

/// On-disk representation of a trained model's statistics — the common
/// intermediate both the binary `.fjm` codec and the JSON export encode
/// from and decode to, so the two formats cannot drift apart semantically.
///
/// The JSON mapping is hand-rolled against [`serde_json::Value`] (the
/// vendored serde derives are no-ops, see `vendor/README.md`): integers
/// keyed maps are stored as sorted `[key, value]` pair arrays so the output
/// is deterministic and stays valid JSON.
#[derive(Debug)]
pub struct SavedModel {
    /// Format version.
    pub version: u32,
    /// Binning strategy used at training time.
    pub strategy: String,
    /// Estimator kind (`"bayesnet"`, `"sampling:<rate>"`, `"truescan"`).
    pub estimator: String,
    /// Seed for sampling estimators.
    pub seed: u64,
    /// Per-group bin maps.
    pub group_bins: Vec<KeyBinMap>,
    /// Join key → group id.
    pub group_of: HashMap<String, usize>,
    /// Join key → per-bin statistics.
    pub key_stats: HashMap<String, KeyStats>,
}

// ------------------------------------------------------- JSON conversion

fn err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

fn binmap_to_json(b: &KeyBinMap) -> Value {
    let mut pairs: Vec<(i64, u32)> = b.entries().collect();
    pairs.sort_unstable();
    Value::object([
        ("k".to_string(), Value::from(b.k())),
        (
            "map".to_string(),
            Value::Array(
                pairs
                    .into_iter()
                    .map(|(v, bin)| Value::Array(vec![Value::from(v), Value::from(bin)]))
                    .collect(),
            ),
        ),
    ])
}

fn binmap_from_json(v: &Value) -> std::io::Result<KeyBinMap> {
    let k = v["k"].as_u64().ok_or_else(|| err("bin map: bad k"))? as usize;
    let mut map = HashMap::new();
    for pair in v["map"].as_array().ok_or_else(|| err("bin map: bad map"))? {
        let key = pair[0].as_i64().ok_or_else(|| err("bin map: bad key"))?;
        let bin = pair[1].as_u64().ok_or_else(|| err("bin map: bad bin"))? as u32;
        if bin as usize >= k.max(1) {
            return Err(err(format!("bin map: bin {bin} out of range for k={k}")));
        }
        map.insert(key, bin);
    }
    if k == 0 {
        return Err(err("bin map: k must be positive"));
    }
    Ok(KeyBinMap::new(k, map))
}

fn f64s_to_json(xs: &[f64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::from(x)).collect())
}

fn f64s_from_json(v: &Value) -> std::io::Result<Vec<f64>> {
    v.as_array()
        .ok_or_else(|| err("expected number array"))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| err("expected number")))
        .collect()
}

fn keystats_to_json(s: &KeyStats) -> Value {
    let freq = s.freq.sorted_entries();
    Value::object([
        ("bin_total".to_string(), f64s_to_json(&s.bin_total)),
        ("bin_mfv".to_string(), f64s_to_json(&s.bin_mfv)),
        ("bin_ndv".to_string(), f64s_to_json(&s.bin_ndv)),
        (
            "freq".to_string(),
            Value::Array(
                freq.into_iter()
                    .map(|(v, c)| Value::Array(vec![Value::from(v), Value::from(c)]))
                    .collect(),
            ),
        ),
    ])
}

fn keystats_from_json(v: &Value) -> std::io::Result<KeyStats> {
    let mut freq = KeyFreq::default();
    for pair in v["freq"]
        .as_array()
        .ok_or_else(|| err("key stats: bad freq"))?
    {
        let value = pair[0]
            .as_i64()
            .ok_or_else(|| err("key stats: bad freq key"))?;
        let count = pair[1]
            .as_u64()
            .ok_or_else(|| err("key stats: bad freq count"))?;
        freq.set(value, count);
    }
    Ok(KeyStats {
        bin_total: f64s_from_json(&v["bin_total"])?,
        bin_mfv: f64s_from_json(&v["bin_mfv"])?,
        bin_ndv: f64s_from_json(&v["bin_ndv"])?,
        freq,
    })
}

fn saved_to_json(saved: &SavedModel) -> Value {
    Value::object([
        ("version".to_string(), Value::from(saved.version)),
        ("strategy".to_string(), Value::from(saved.strategy.clone())),
        (
            "estimator".to_string(),
            Value::from(saved.estimator.clone()),
        ),
        ("seed".to_string(), Value::from(saved.seed)),
        (
            "group_bins".to_string(),
            Value::Array(saved.group_bins.iter().map(binmap_to_json).collect()),
        ),
        (
            "group_of".to_string(),
            Value::object(
                saved
                    .group_of
                    .iter()
                    .map(|(k, &g)| (k.clone(), Value::from(g))),
            ),
        ),
        (
            "key_stats".to_string(),
            Value::object(
                saved
                    .key_stats
                    .iter()
                    .map(|(k, s)| (k.clone(), keystats_to_json(s))),
            ),
        ),
    ])
}

fn saved_from_json(v: &Value) -> std::io::Result<SavedModel> {
    let version = v["version"]
        .as_u64()
        .ok_or_else(|| err("missing version"))? as u32;
    if version != 1 {
        return Err(err(format!("unsupported model format version {version}")));
    }
    let strategy = v["strategy"]
        .as_str()
        .ok_or_else(|| err("missing strategy"))?
        .to_string();
    let estimator = v["estimator"]
        .as_str()
        .ok_or_else(|| err("missing estimator"))?
        .to_string();
    let seed = v["seed"].as_u64().ok_or_else(|| err("missing seed"))?;
    let group_bins = v["group_bins"]
        .as_array()
        .ok_or_else(|| err("missing group_bins"))?
        .iter()
        .map(binmap_from_json)
        .collect::<std::io::Result<Vec<_>>>()?;
    let mut group_of = HashMap::new();
    for (k, g) in v["group_of"]
        .as_object()
        .ok_or_else(|| err("missing group_of"))?
    {
        let gid = g.as_u64().ok_or_else(|| err("group_of: bad group id"))? as usize;
        if gid >= group_bins.len() {
            return Err(err(format!("group_of: group {gid} has no bin map")));
        }
        group_of.insert(k.clone(), gid);
    }
    let mut key_stats = HashMap::new();
    for (k, s) in v["key_stats"]
        .as_object()
        .ok_or_else(|| err("missing key_stats"))?
    {
        let stats = keystats_from_json(s)?;
        // Per-bin vectors must agree with each other and with the bin count
        // of the key's group, or estimation would index out of bounds later.
        if stats.bin_mfv.len() != stats.bin_total.len()
            || stats.bin_ndv.len() != stats.bin_total.len()
        {
            return Err(err(format!(
                "key stats {k:?}: per-bin vectors disagree in length"
            )));
        }
        if let Some(&gid) = group_of.get(k) {
            let expect = group_bins[gid].k();
            if stats.k() != expect {
                return Err(err(format!(
                    "key stats {k:?}: {} bins but group {gid} has {expect}",
                    stats.k()
                )));
            }
        }
        key_stats.insert(k.clone(), stats);
    }
    Ok(SavedModel {
        version,
        strategy,
        estimator,
        seed,
        group_bins,
        group_of,
        key_stats,
    })
}

fn key_to_string(k: &KeyRef) -> String {
    format!("{}.{}", k.table, k.column)
}

impl SavedModel {
    /// Snapshots a trained model's persistable statistics (bins, group
    /// assignments, per-key stats, config fingerprint) via its public
    /// accessors. Both the binary and JSON savers start here.
    pub fn from_model(model: &FactorJoinModel) -> SavedModel {
        let cfg = model.config();
        let estimator = match cfg.estimator {
            BaseEstimatorKind::BayesNet(_) => "bayesnet".to_string(),
            BaseEstimatorKind::Sampling { rate } => format!("sampling:{rate}"),
            BaseEstimatorKind::TrueScan => "truescan".to_string(),
        };
        let strategy = match cfg.strategy {
            BinningStrategy::Gbsa => "gbsa",
            BinningStrategy::EqualWidth => "equal-width",
            BinningStrategy::EqualDepth => "equal-depth",
        };
        let mut group_of = HashMap::new();
        let mut key_stats = HashMap::new();
        let mut max_gid = 0usize;
        for (kr, stats) in model.iter_key_stats() {
            let gid = model
                .group_of(kr)
                .expect("stats exist only for grouped keys");
            max_gid = max_gid.max(gid);
            group_of.insert(key_to_string(kr), gid);
            key_stats.insert(key_to_string(kr), stats.clone());
        }
        let group_bins: Vec<KeyBinMap> =
            (0..=max_gid).map(|g| model.group_bins(g).clone()).collect();
        SavedModel {
            version: 1,
            strategy: strategy.to_string(),
            estimator,
            seed: cfg.seed,
            group_bins,
            group_of,
            key_stats,
        }
    }

    /// Reconstructs a servable model from saved statistics, rebuilding
    /// single-table estimators from `catalog`. Both load paths end here.
    pub fn into_model(self, catalog: &Catalog) -> std::io::Result<FactorJoinModel> {
        let estimator = if self.estimator == "bayesnet" {
            BaseEstimatorKind::BayesNet(BnConfig::default())
        } else if self.estimator == "truescan" {
            BaseEstimatorKind::TrueScan
        } else if let Some(rate) = self.estimator.strip_prefix("sampling:") {
            BaseEstimatorKind::Sampling {
                rate: rate.parse().unwrap_or(0.01),
            }
        } else {
            return Err(err(format!("unknown estimator {:?}", self.estimator)));
        };
        let strategy = match self.strategy.as_str() {
            "gbsa" => BinningStrategy::Gbsa,
            "equal-width" => BinningStrategy::EqualWidth,
            "equal-depth" => BinningStrategy::EqualDepth,
            other => return Err(err(format!("unknown strategy {other:?}"))),
        };
        let config = FactorJoinConfig {
            bin_budget: crate::binning::BinBudget::Uniform(
                self.group_bins.first().map(KeyBinMap::k).unwrap_or(1),
            ),
            strategy,
            estimator,
            seed: self.seed,
            threads: 0,
        };
        let mut group_of = HashMap::new();
        let mut key_stats = HashMap::new();
        for (key, gid) in &self.group_of {
            let (table, column) = key.split_once('.').ok_or_else(|| err("bad key"))?;
            let kr = KeyRef::new(table, column);
            group_of.insert(kr.clone(), *gid);
            if let Some(s) = self.key_stats.get(key) {
                key_stats.insert(kr, s.clone());
            }
        }
        Ok(FactorJoinModel::from_parts(
            config,
            group_of,
            self.group_bins,
            key_stats,
            catalog,
        ))
    }
}

/// Writes `bytes`' producer output to `path` atomically: serialize into a
/// same-directory temp file, flush + `fsync`, then `rename` over the
/// target. A crash at any point leaves either the old file or the new one,
/// never a torn mix — `rename` within one directory is atomic on POSIX
/// filesystems, and the temp file must live in the same directory so the
/// rename cannot cross a mount. The directory itself is fsynced
/// best-effort afterwards so the rename survives a power cut.
fn write_atomic(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<std::fs::File>) -> std::io::Result<()>,
) -> std::io::Result<()> {
    static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| err("save path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        name.to_string_lossy(),
        std::process::id(),
        TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    ));
    let result = (|| {
        let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
        write(&mut w)?;
        w.flush()?;
        let file = w.into_inner().map_err(|e| e.into_error())?;
        // Durability point: the temp file's bytes must hit disk before the
        // rename publishes them, or a crash could expose an empty file
        // under the final name.
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Never leave a stray temp file behind on failure.
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Best-effort: persist the directory entry for the rename. Failure here
    // (e.g. platforms where directories cannot be opened) is not fatal —
    // the data file itself is already durable.
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Serializes the model's statistics to `path`, picking the format from
/// the extension: `.json` → the JSON debug export, anything else (the
/// `.fjm` convention included) → the binary format.
///
/// Either way the write is crash-safe: bytes are staged in a
/// same-directory temp file, fsynced, and renamed over `path`, so a kill
/// or power loss mid-save leaves the previous model file intact
/// (`write_atomic` below).
pub fn save_model(model: &FactorJoinModel, path: &Path) -> std::io::Result<()> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("json") => save_model_json(model, path),
        _ => binary::save_model_binary(model, path),
    }
}

/// Serializes the model's statistics to `path` as JSON, regardless of
/// extension — the human-readable debug export (crash-safe like
/// [`save_model`]).
pub fn save_model_json(model: &FactorJoinModel, path: &Path) -> std::io::Result<()> {
    let saved = SavedModel::from_model(model);
    write_atomic(path, |w| serde_json::to_writer(w, &saved_to_json(&saved)))
}

/// Loads a saved model, rebuilding single-table estimators from `catalog`.
///
/// Accepts **both formats** regardless of extension by sniffing the first
/// bytes: a file starting with [`binary::MAGIC`] decodes as `.fjm`
/// binary; anything else is parsed as the JSON export (valid JSON can
/// never start with the magic — its first byte has the high bit set).
///
/// The catalog must have the same schema as at save time; data may have
/// changed (estimators retrain on the current data while the saved bins
/// and key statistics are restored verbatim).
pub fn load_model(path: &Path, catalog: &Catalog) -> std::io::Result<FactorJoinModel> {
    load_saved(path)?.into_model(catalog)
}

/// Reads and fully validates a model file's persisted statistics without
/// rebuilding estimators — the format-sniffing read stage of
/// [`load_model`], exposed so tooling (and `bench-training`) can measure
/// or inspect the persistence formats in isolation.
pub fn load_saved(path: &Path) -> std::io::Result<SavedModel> {
    let bytes = std::fs::read(path)?;
    if bytes.starts_with(&binary::MAGIC) {
        // Typed rejection taxonomy lives in `binary::PersistError`; name
        // the file here so the operator knows which one to restore.
        binary::decode(&bytes).map_err(|e| err(format!("model file {}: {e}", path.display())))
    } else {
        // A truncated file (torn non-atomic write, interrupted copy) fails
        // JSON parsing; surface it with the path so the operator sees which
        // file to restore rather than a bare "unexpected end of input".
        let text = std::str::from_utf8(&bytes).map_err(|_| {
            err(format!(
                "model file {} is truncated or corrupt: not UTF-8 and not .fjm binary",
                path.display()
            ))
        })?;
        let value = serde_json::from_str(text).map_err(|e| {
            err(format!(
                "model file {} is truncated or corrupt: {e}",
                path.display()
            ))
        })?;
        saved_from_json(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinBudget;
    use fj_datagen::{stats_catalog, StatsConfig};
    use fj_query::parse_query;

    #[test]
    fn save_load_roundtrip_preserves_estimates() {
        let cat = stats_catalog(&StatsConfig {
            scale: 0.05,
            ..Default::default()
        });
        let cfg = FactorJoinConfig {
            bin_budget: BinBudget::Uniform(20),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        };
        let model = FactorJoinModel::train(&cat, cfg);
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id;",
        )
        .unwrap();
        let before = model.estimate(&q);

        let dir = std::env::temp_dir().join("fj_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let loaded = load_model(&path, &cat).unwrap();
        let after = loaded.estimate(&q);
        assert_eq!(before, after, "persisted bins must reproduce the bound");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("fj_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, b"{not json").unwrap();
        let cat = stats_catalog(&StatsConfig {
            scale: 0.02,
            ..Default::default()
        });
        assert!(load_model(&path, &cat).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_load_rejects_truncation() {
        let cat = stats_catalog(&StatsConfig {
            scale: 0.05,
            ..Default::default()
        });
        let cfg = FactorJoinConfig {
            bin_budget: BinBudget::Uniform(10),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        };
        let model = FactorJoinModel::train(&cat, cfg);
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id;",
        )
        .unwrap();
        let before = model.estimate(&q);

        let dir = std::env::temp_dir().join("fj_persist_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();

        // A successful save leaves no staging debris behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "temp files left after save: {strays:?}");

        // Simulate a crash mid-write of a *second* save: the writer died
        // after staging half the bytes but before the rename. The temp file
        // sits in the directory; the published model file is untouched.
        let good = std::fs::read(&path).unwrap();
        let torn = dir.join(".model.json.tmp.99999.0");
        std::fs::write(&torn, &good[..good.len() / 2]).unwrap();
        let loaded = load_model(&path, &cat).unwrap();
        assert_eq!(
            before,
            loaded.estimate(&q),
            "old model must survive a crashed save"
        );

        // Loading the torn file itself fails with a clear error.
        let e = match load_model(&torn, &cat) {
            Ok(_) => panic!("torn file must not load"),
            Err(e) => e,
        };
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            e.to_string().contains("truncated or corrupt"),
            "unhelpful truncation error: {e}"
        );

        // An empty file (crashed before any bytes) is rejected the same way.
        let empty = dir.join("empty.json");
        std::fs::write(&empty, b"").unwrap();
        assert!(load_model(&empty, &cat).is_err());

        // And a later save still replaces the file cleanly.
        save_model(&model, &path).unwrap();
        assert_eq!(before, load_model(&path, &cat).unwrap().estimate(&q));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saved_file_is_json_with_version() {
        let cat = stats_catalog(&StatsConfig {
            scale: 0.02,
            ..Default::default()
        });
        let model = FactorJoinModel::train(
            &cat,
            FactorJoinConfig {
                bin_budget: BinBudget::Uniform(5),
                estimator: BaseEstimatorKind::Sampling { rate: 0.5 },
                ..Default::default()
            },
        );
        let dir = std::env::temp_dir().join("fj_persist_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["version"], 1);
        assert_eq!(v["estimator"], "sampling:0.5");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_dispatches_on_extension_and_load_sniffs_magic() {
        let cat = stats_catalog(&StatsConfig {
            scale: 0.02,
            ..Default::default()
        });
        let model = FactorJoinModel::train(
            &cat,
            FactorJoinConfig {
                bin_budget: BinBudget::Uniform(8),
                estimator: BaseEstimatorKind::TrueScan,
                ..Default::default()
            },
        );
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id;",
        )
        .unwrap();
        let before = model.estimate(&q);

        let dir = std::env::temp_dir().join("fj_persist_dispatch");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("model.json");
        let fjm_path = dir.join("model.fjm");
        save_model(&model, &json_path).unwrap();
        save_model(&model, &fjm_path).unwrap();

        // Extension dispatch: .json produced a JSON document, .fjm the
        // binary signature.
        let json_bytes = std::fs::read(&json_path).unwrap();
        let fjm_bytes = std::fs::read(&fjm_path).unwrap();
        assert_eq!(json_bytes[0], b'{');
        assert!(fjm_bytes.starts_with(&binary::MAGIC));

        // Magic sniffing: both load through the same entry point, and to
        // prove sniffing beats extension, load the binary bytes from a
        // mislabeled .json path.
        let mislabeled = dir.join("mislabeled.json");
        std::fs::write(&mislabeled, &fjm_bytes).unwrap();
        for p in [&json_path, &fjm_path, &mislabeled] {
            let loaded = load_model(p, &cat).unwrap();
            let got = loaded.estimate(&q);
            assert_eq!(
                before.to_bits(),
                got.to_bits(),
                "estimates diverged via {}",
                p.display()
            );
        }

        // save -> load -> save is byte-identical for the binary format.
        let reloaded = load_model(&fjm_path, &cat).unwrap();
        let second = dir.join("model2.fjm");
        save_model(&reloaded, &second).unwrap();
        assert_eq!(
            fjm_bytes,
            std::fs::read(&second).unwrap(),
            "binary save->load->save must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_fjm_writes_are_rejected_with_clear_errors() {
        let cat = stats_catalog(&StatsConfig {
            scale: 0.02,
            ..Default::default()
        });
        let model = FactorJoinModel::train(
            &cat,
            FactorJoinConfig {
                bin_budget: BinBudget::Uniform(6),
                estimator: BaseEstimatorKind::TrueScan,
                ..Default::default()
            },
        );
        let dir = std::env::temp_dir().join("fj_persist_torn_fjm");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.fjm");
        save_model(&model, &path).unwrap();

        // `.fjm` saves go through the same `write_atomic` staging as JSON:
        // a successful save leaves no temp debris behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "temp files left after save: {strays:?}");

        // Truncate at the header, mid-table, every section boundary, and
        // mid-section: every torn prefix must fail loudly with an
        // InvalidData error naming the file — never load a wrong model.
        let good = std::fs::read(&path).unwrap();
        let mut cuts = vec![0, 7, 12, 30, good.len() - 1];
        for i in 0..4 {
            let e = 24 + i * 32;
            let off = u64::from_le_bytes(good[e + 8..e + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(good[e + 16..e + 24].try_into().unwrap()) as usize;
            cuts.extend([off, off + len / 2]);
        }
        let torn_path = dir.join("torn.fjm");
        for cut in cuts {
            std::fs::write(&torn_path, &good[..cut]).unwrap();
            let e = match load_model(&torn_path, &cat) {
                Ok(_) => panic!("torn prefix of {cut} bytes must not load"),
                Err(e) => e,
            };
            assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "cut at {cut}");
            assert!(
                e.to_string().contains("torn.fjm"),
                "error must name the file: {e}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
