//! `.fjm` — the versioned, checksummed, little-endian binary model format.
//!
//! The JSON export re-parses and re-validates every factor on load; at
//! scale 10 that is ~17 MB of text between a cold process and its first
//! estimate. This format instead mirrors the **in-memory flat slabs** on
//! disk — the open-addressing `KeyFreq` (i64→u64) and `KeyBinMap`
//! (i64→u32) tables and the per-bin `f64` statistics vectors are written
//! verbatim — so load is *validate + bulk copy*, not parse. Every
//! multi-byte field is little-endian and every array sits at an 8-byte
//! aligned offset, so a future mmap-based loader could reference sections
//! in place.
//!
//! ## Layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  89 46 4A 4D 0D 0A 1A 0A   ("\x89FJM\r\n\x1a\n")
//! 8       2     format major version (u16) — readers reject a mismatch
//! 10      2     format minor version (u16) — forward-compatible
//! 12      4     endian mark 0x0A0B0C0D — byte-swapped file ⇒ WrongEndian
//! 16      4     section count (≤ 64)
//! 20      4     reserved (0)
//! 24      32·n  section table: { id u32, reserved u32, offset u64,
//!                                len u64, crc32 u32, reserved u32 }
//! …       …     section payloads, each starting 8-byte aligned
//! ```
//!
//! Sections (all offsets absolute, payload lengths exact, CRC-32/IEEE over
//! the exact payload bytes):
//!
//! | id | section      | contents |
//! |---:|--------------|----------|
//! | 1  | `META`       | binning strategy, estimator kind (+ sampling rate as raw `f64` bits), seed |
//! | 2  | `GROUP_BINS` | per key group: `k`, then the raw `KeyBinMap` slabs (`keys: i64[cap]`, `bins: u32[cap]`, `len`) |
//! | 3  | `KEYS`       | sorted `table.column` names with their group ids |
//! | 4  | `KEY_STATS`  | per key: `bin_total/bin_mfv/bin_ndv: f64[k]` + raw `KeyFreq` slabs |
//!
//! The magic is PNG-style on purpose: the high bit catches 7-bit strips,
//! and the embedded `\r\n` + `\x1a` catch text-mode newline translation.
//!
//! ## Versioning policy
//!
//! * **Major** — incompatible layout change. A reader rejects any file
//!   whose major differs from its own ([`PersistError::UnsupportedMajor`]).
//! * **Minor** — forward-compatible addition: a newer writer may append
//!   new sections (unknown ids are skipped) or extend a section's payload
//!   (readers ignore trailing payload bytes). A reader therefore accepts
//!   any minor, including ones newer than itself, as long as the four
//!   required sections decode.
//! * Byte-swapped (big-endian) files and foreign files are rejected up
//!   front with [`PersistError::WrongEndian`] / [`PersistError::BadMagic`].
//!
//! ## Hostile-input discipline
//!
//! Decoding never trusts a length before checking it against the bytes
//! actually present: every array count is validated against the remaining
//! payload *before* any allocation (a section claiming 2⁶⁰ entries fails
//! with [`PersistError::HostileLength`], it does not OOM), every section's
//! `offset + len` is overflow-checked against the file, and the slab
//! rebuilders (`KeyFreq::from_raw_parts` / `KeyBinMap::from_raw_parts`)
//! re-validate the open-addressing invariants so probe loops always
//! terminate. The byte-mutation fuzz suite below holds the decoder to the
//! same contract as the wire codec: arbitrary bytes produce `Ok` or a
//! typed error — never a panic, never an unbounded allocation.

use super::SavedModel;
use crate::binning::KeyFreq;
use crate::keystats::KeyStats;
use crate::model::FactorJoinModel;
use fj_stats::KeyBinMap;
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

/// First eight bytes of every `.fjm` file.
pub const MAGIC: [u8; 8] = *b"\x89FJM\r\n\x1a\n";

/// Major format version written by this build; readers reject any other.
pub const FORMAT_MAJOR: u16 = 1;

/// Minor format version written by this build; readers accept any minor
/// (see the versioning policy in the module docs).
pub const FORMAT_MINOR: u16 = 0;

/// Endianness canary: written little-endian, so a byte-swapped file is
/// detected before any other field is interpreted.
const ENDIAN_MARK: u32 = 0x0A0B_0C0D;

/// Hard cap on the section count — far above the four the format defines,
/// but low enough that a hostile header cannot make the table walk slow.
const MAX_SECTIONS: u32 = 64;

const HEADER_LEN: usize = 24;
const SECTION_ENTRY_LEN: usize = 32;

/// Section id of the model metadata (strategy / estimator / seed).
pub const SEC_META: u32 = 1;
/// Section id of the per-group `KeyBinMap` slabs.
pub const SEC_GROUP_BINS: u32 = 2;
/// Section id of the join-key name table.
pub const SEC_KEYS: u32 = 3;
/// Section id of the per-key statistics (bin vectors + `KeyFreq` slabs).
pub const SEC_KEY_STATS: u32 = 4;

const REQUIRED_SECTIONS: [u32; 4] = [SEC_META, SEC_GROUP_BINS, SEC_KEYS, SEC_KEY_STATS];

fn section_name(id: u32) -> &'static str {
    match id {
        SEC_META => "META",
        SEC_GROUP_BINS => "GROUP_BINS",
        SEC_KEYS => "KEYS",
        SEC_KEY_STATS => "KEY_STATS",
        _ => "unknown",
    }
}

// ------------------------------------------------------------------ errors

/// A structurally invalid, corrupt, torn, or foreign model file.
///
/// Every rejection path of the binary decoder is a named variant so an
/// operator can tell a wrong file (`BadMagic`), a wrong build
/// (`UnsupportedMajor`), a torn write (`Truncated`/`SectionOutOfBounds`),
/// and bit rot (`ChecksumMismatch`) apart from the error alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The file does not start with the `.fjm` magic bytes.
    BadMagic,
    /// The endianness canary is byte-swapped — the file was written by a
    /// (hypothetical) big-endian encoder.
    WrongEndian,
    /// The file's major format version differs from this build's.
    UnsupportedMajor {
        /// Major version found in the file.
        found: u16,
        /// Major version this build supports.
        supported: u16,
    },
    /// The file ended before the named structure was complete.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// The section table is self-inconsistent (bad count, duplicate id,
    /// overflowing extent).
    BadSectionTable {
        /// Why the table was rejected.
        reason: String,
    },
    /// A section's `offset + len` extends past the end of the file — the
    /// signature of a torn or truncated write.
    SectionOutOfBounds {
        /// Section id whose extent is out of bounds.
        id: u32,
    },
    /// A required section is absent.
    MissingSection {
        /// The absent section's id.
        id: u32,
    },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// Section id whose checksum failed.
        id: u32,
    },
    /// A length field claims more elements than the remaining payload
    /// could possibly hold — rejected before any allocation.
    HostileLength {
        /// The field whose length was hostile.
        what: &'static str,
        /// Claimed element count.
        wanted: u64,
        /// Elements the remaining payload could actually hold.
        available: u64,
    },
    /// A field decoded but failed semantic validation.
    Invalid {
        /// What was wrong.
        what: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not an .fjm model file (bad magic)"),
            PersistError::WrongEndian => {
                write!(f, "model file was written byte-swapped (wrong endianness)")
            }
            PersistError::UnsupportedMajor { found, supported } => write!(
                f,
                "unsupported model format major version {found} (this build reads {supported})"
            ),
            PersistError::Truncated { what } => {
                write!(f, "model file truncated while reading {what}")
            }
            PersistError::BadSectionTable { reason } => {
                write!(f, "bad section table: {reason}")
            }
            PersistError::SectionOutOfBounds { id } => write!(
                f,
                "section {id} ({}) extends past the end of the file (torn or truncated write)",
                section_name(*id)
            ),
            PersistError::MissingSection { id } => {
                write!(
                    f,
                    "required section {id} ({}) is missing",
                    section_name(*id)
                )
            }
            PersistError::ChecksumMismatch { id } => write!(
                f,
                "section {id} ({}) failed its CRC-32 check (corrupt payload)",
                section_name(*id)
            ),
            PersistError::HostileLength {
                what,
                wanted,
                available,
            } => write!(
                f,
                "{what} claims {wanted} elements but at most {available} fit the payload"
            ),
            PersistError::Invalid { what } => write!(f, "invalid model data: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<PersistError> for std::io::Error {
    fn from(e: PersistError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

fn invalid(what: impl Into<String>) -> PersistError {
    PersistError::Invalid { what: what.into() }
}

// ------------------------------------------------------------------- crc32

/// CRC-32/IEEE lookup tables for slice-by-8, built at compile time.
/// `CRC_TABLES[0]` is the classic byte-at-a-time table; table `k` gives
/// the CRC contribution of a byte `k` positions earlier in the stream.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
};

/// CRC-32/IEEE of `bytes` (the checksum PNG and gzip use), computed
/// slice-by-8: sections are megabytes of slab data and the checksum pass
/// must not dominate the load the format exists to make fast.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes(ch[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(ch[4..8].try_into().unwrap());
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ----------------------------------------------------------------- encoder

/// Little-endian section-payload builder; `align8` keeps every array start
/// 8-byte aligned relative to the (8-byte-aligned) section start.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    fn align8(&mut self) {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }
    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

fn encode_meta(saved: &SavedModel) -> Result<Vec<u8>, PersistError> {
    let strategy: u8 = match saved.strategy.as_str() {
        "gbsa" => 0,
        "equal-width" => 1,
        "equal-depth" => 2,
        other => return Err(invalid(format!("unknown strategy {other:?}"))),
    };
    let (estimator, rate): (u8, f64) = if saved.estimator == "bayesnet" {
        (0, 0.0)
    } else if let Some(r) = saved.estimator.strip_prefix("sampling:") {
        let rate: f64 = r
            .parse()
            .map_err(|_| invalid(format!("bad sampling rate {r:?}")))?;
        (1, rate)
    } else if saved.estimator == "truescan" {
        (2, 0.0)
    } else {
        return Err(invalid(format!("unknown estimator {:?}", saved.estimator)));
    };
    let mut e = Enc::default();
    e.bytes(&[strategy, estimator, 0, 0, 0, 0, 0, 0]);
    e.f64(rate);
    e.u64(saved.seed);
    Ok(e.finish())
}

fn encode_group_bins(saved: &SavedModel) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(saved.group_bins.len() as u64);
    for map in &saved.group_bins {
        let (k, keys, bins, len) = map.raw_parts();
        e.u64(k as u64);
        e.u64(keys.len() as u64);
        e.u64(len as u64);
        for &v in keys {
            e.i64(v);
        }
        for &b in bins {
            e.u32(b);
        }
        e.align8();
    }
    e.finish()
}

/// Canonical key order: sorted by full `table.column` name, so identical
/// statistics always serialize to identical bytes regardless of hash-map
/// iteration order.
fn sorted_keys(saved: &SavedModel) -> Vec<&String> {
    let mut names: Vec<&String> = saved.group_of.keys().collect();
    names.sort();
    names
}

fn encode_keys(saved: &SavedModel, names: &[&String]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(names.len() as u64);
    for name in names {
        e.u64(saved.group_of[*name] as u64);
        e.u32(name.len() as u32);
        e.u32(0); // reserved / pad
        e.bytes(name.as_bytes());
        e.align8();
    }
    e.finish()
}

fn encode_key_stats(saved: &SavedModel, names: &[&String]) -> Vec<u8> {
    let present: Vec<(usize, &KeyStats)> = names
        .iter()
        .enumerate()
        .filter_map(|(i, name)| saved.key_stats.get(*name).map(|s| (i, s)))
        .collect();
    let mut e = Enc::default();
    e.u64(present.len() as u64);
    for (index, stats) in present {
        let (fkeys, fcounts, flen) = stats.freq.raw_parts();
        e.u64(index as u64);
        e.u64(stats.k() as u64);
        e.u64(fkeys.len() as u64);
        e.u64(flen as u64);
        for &x in &stats.bin_total {
            e.f64(x);
        }
        for &x in &stats.bin_mfv {
            e.f64(x);
        }
        for &x in &stats.bin_ndv {
            e.f64(x);
        }
        for &v in fkeys {
            e.i64(v);
        }
        for &c in fcounts {
            e.u64(c);
        }
    }
    e.finish()
}

/// Serializes `saved` into the `.fjm` byte layout (see module docs).
///
/// Deterministic: the same statistics always produce the same bytes (keys
/// are written in sorted order; slab layouts are deterministic functions
/// of the insert sequence), which is what makes save→load→save
/// byte-identity a testable contract.
pub fn encode(saved: &SavedModel) -> Result<Vec<u8>, PersistError> {
    let names = sorted_keys(saved);
    let sections: [(u32, Vec<u8>); 4] = [
        (SEC_META, encode_meta(saved)?),
        (SEC_GROUP_BINS, encode_group_bins(saved)),
        (SEC_KEYS, encode_keys(saved, &names)),
        (SEC_KEY_STATS, encode_key_stats(saved, &names)),
    ];
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_MAJOR.to_le_bytes());
    out.extend_from_slice(&FORMAT_MINOR.to_le_bytes());
    out.extend_from_slice(&ENDIAN_MARK.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    let table_at = out.len();
    out.resize(table_at + SECTION_ENTRY_LEN * sections.len(), 0);
    for (i, (id, payload)) in sections.iter().enumerate() {
        while out.len() % 8 != 0 {
            out.push(0);
        }
        let offset = out.len() as u64;
        let crc = crc32(payload);
        out.extend_from_slice(payload);
        let e = table_at + i * SECTION_ENTRY_LEN;
        out[e..e + 4].copy_from_slice(&id.to_le_bytes());
        out[e + 8..e + 16].copy_from_slice(&offset.to_le_bytes());
        out[e + 16..e + 24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        out[e + 24..e + 28].copy_from_slice(&crc.to_le_bytes());
    }
    Ok(out)
}

// ----------------------------------------------------------------- decoder

/// Bounds-checked little-endian cursor over one section payload. Every
/// read states *what* it was reading so truncation errors name the field.
struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        if n > self.remaining() {
            return Err(PersistError::Truncated { what });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn align8(&mut self) {
        // Padding inside a section is relative to the section start, which
        // the file layout keeps 8-byte aligned; skipping past the end is
        // harmless (the next read reports truncation).
        self.at = self.buf.len().min((self.at + 7) & !7);
    }

    /// Reads an element count and pre-validates it against the remaining
    /// payload (`elem_size` bytes per element) **before** the caller
    /// allocates anything — the no-OOM-on-hostile-length guard.
    fn count(&mut self, what: &'static str, elem_size: usize) -> Result<usize, PersistError> {
        let n = self.u64(what)?;
        let available = (self.remaining() / elem_size.max(1)) as u64;
        if n > available {
            return Err(PersistError::HostileLength {
                what,
                wanted: n,
                available,
            });
        }
        Ok(n as usize)
    }

    fn f64s(&mut self, n: usize, what: &'static str) -> Result<Vec<f64>, PersistError> {
        let raw = self.take(n * 8, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    fn i64s(&mut self, n: usize, what: &'static str) -> Result<Vec<i64>, PersistError> {
        let raw = self.take(n * 8, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn u64s(&mut self, n: usize, what: &'static str) -> Result<Vec<u64>, PersistError> {
        let raw = self.take(n * 8, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn u32s(&mut self, n: usize, what: &'static str) -> Result<Vec<u32>, PersistError> {
        let raw = self.take(n * 4, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

fn decode_meta(payload: &[u8]) -> Result<(String, String, u64), PersistError> {
    let mut d = Dec::new(payload);
    let head = d.take(8, "META header")?;
    let strategy = match head[0] {
        0 => "gbsa",
        1 => "equal-width",
        2 => "equal-depth",
        t => return Err(invalid(format!("unknown strategy tag {t}"))),
    };
    let est_tag = head[1];
    let rate = d.f64("META sampling rate")?;
    let seed = d.u64("META seed")?;
    let estimator = match est_tag {
        0 => "bayesnet".to_string(),
        1 => {
            if !(rate.is_finite() && rate > 0.0 && rate <= 1.0) {
                return Err(invalid(format!("sampling rate {rate} outside (0, 1]")));
            }
            format!("sampling:{rate}")
        }
        2 => "truescan".to_string(),
        t => return Err(invalid(format!("unknown estimator tag {t}"))),
    };
    Ok((strategy.to_string(), estimator, seed))
}

fn decode_group_bins(payload: &[u8]) -> Result<Vec<KeyBinMap>, PersistError> {
    let mut d = Dec::new(payload);
    // Each group record is at least 24 bytes (k + cap + len), which bounds
    // the count before the Vec below reserves anything.
    let n = d.count("GROUP_BINS group count", 24)?;
    let mut out = Vec::with_capacity(n);
    for gi in 0..n {
        let k = d.u64("group bin count")?;
        let cap = d.count("group slab capacity", 12)?; // 8 key + 4 bin bytes
        let len = d.u64("group assigned count")?;
        let keys = d.i64s(cap, "group slab keys")?;
        let bins = d.u32s(cap, "group slab bins")?;
        d.align8();
        let map = KeyBinMap::from_raw_parts(k as usize, keys, bins, len as usize)
            .map_err(|e| invalid(format!("group {gi} bin map: {e}")))?;
        out.push(map);
    }
    Ok(out)
}

fn decode_keys(payload: &[u8], num_groups: usize) -> Result<Vec<(String, usize)>, PersistError> {
    let mut d = Dec::new(payload);
    // Each key record is at least 16 bytes (gid + name length + pad).
    let n = d.count("KEYS key count", 16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let gid = d.u64("key group id")? as usize;
        let name_len = d.u32("key name length")? as usize;
        let _reserved = d.u32("key name pad")?;
        let raw = d.take(name_len, "key name bytes")?;
        d.align8();
        let name = std::str::from_utf8(raw)
            .map_err(|_| invalid("key name is not UTF-8"))?
            .to_string();
        if gid >= num_groups {
            return Err(invalid(format!(
                "key {name:?}: group {gid} has no bin map (only {num_groups} groups)"
            )));
        }
        out.push((name, gid));
    }
    Ok(out)
}

fn decode_key_stats(
    payload: &[u8],
    keys: &[(String, usize)],
    group_bins: &[KeyBinMap],
) -> Result<HashMap<String, KeyStats>, PersistError> {
    let mut d = Dec::new(payload);
    // Each stats record is at least 32 bytes (index + k + cap + len).
    let n = d.count("KEY_STATS record count", 32)?;
    let mut out = HashMap::with_capacity(n.min(keys.len()));
    let mut prev_index: Option<usize> = None;
    for _ in 0..n {
        let index = d.u64("stats key index")? as usize;
        if index >= keys.len() {
            return Err(invalid(format!(
                "stats record references key {index} but only {} keys exist",
                keys.len()
            )));
        }
        if prev_index.is_some_and(|p| index <= p) {
            return Err(invalid(
                "stats records out of order (duplicate or unsorted key index)",
            ));
        }
        prev_index = Some(index);
        let (name, gid) = &keys[index];
        let k = d.count("stats bin count", 24)?; // 3 × f64 per bin
        let fcap = d.count("stats freq capacity", 16)?; // 8 key + 8 count bytes
        let flen = d.u64("stats freq len")?;
        let bin_total = d.f64s(k, "stats bin totals")?;
        let bin_mfv = d.f64s(k, "stats bin MFVs")?;
        let bin_ndv = d.f64s(k, "stats bin NDVs")?;
        let fkeys = d.i64s(fcap, "stats freq keys")?;
        let fcounts = d.u64s(fcap, "stats freq counts")?;
        let freq = KeyFreq::from_raw_parts(fkeys, fcounts, flen as usize)
            .map_err(|e| invalid(format!("key {name:?} frequency slab: {e}")))?;
        // Same cross-check as the JSON loader: per-bin vectors must agree
        // with the key's group, or estimation would index out of bounds.
        let expect = group_bins[*gid].k();
        if k != expect {
            return Err(invalid(format!(
                "key {name:?}: {k} bins but group {gid} has {expect}"
            )));
        }
        out.insert(
            name.clone(),
            KeyStats {
                bin_total,
                bin_mfv,
                bin_ndv,
                freq,
            },
        );
    }
    Ok(out)
}

/// Parses `.fjm` bytes into a [`SavedModel`], validating magic, version,
/// endianness, the section table, every per-section CRC, and every length
/// field (see module docs for the exact rejection taxonomy).
pub fn decode(bytes: &[u8]) -> Result<SavedModel, PersistError> {
    if bytes.len() >= 8 && bytes[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(if bytes.len() < 8 && !MAGIC.starts_with(bytes) {
            PersistError::BadMagic
        } else {
            PersistError::Truncated { what: "header" }
        });
    }
    // Endianness before version: a byte-swapped file swaps the version
    // fields too, and "wrong endian" is the more actionable diagnosis.
    let endian = &bytes[12..16];
    if endian != ENDIAN_MARK.to_le_bytes() {
        if endian == ENDIAN_MARK.to_be_bytes() {
            return Err(PersistError::WrongEndian);
        }
        return Err(invalid("endianness canary corrupt"));
    }
    let major = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    if major != FORMAT_MAJOR {
        return Err(PersistError::UnsupportedMajor {
            found: major,
            supported: FORMAT_MAJOR,
        });
    }
    // The minor version is deliberately not checked — see the policy.
    let section_count = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    if section_count > MAX_SECTIONS {
        return Err(PersistError::BadSectionTable {
            reason: format!("{section_count} sections exceeds the {MAX_SECTIONS} cap"),
        });
    }
    let table_end = HEADER_LEN + section_count as usize * SECTION_ENTRY_LEN;
    if bytes.len() < table_end {
        return Err(PersistError::Truncated {
            what: "section table",
        });
    }
    let mut sections: HashMap<u32, &[u8]> = HashMap::new();
    for i in 0..section_count as usize {
        let e = HEADER_LEN + i * SECTION_ENTRY_LEN;
        let id = u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap());
        let offset = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[e + 24..e + 28].try_into().unwrap());
        let end = offset
            .checked_add(len)
            .ok_or_else(|| PersistError::BadSectionTable {
                reason: format!("section {id} extent overflows"),
            })?;
        if end > bytes.len() as u64 {
            return Err(PersistError::SectionOutOfBounds { id });
        }
        let payload = &bytes[offset as usize..end as usize];
        if crc32(payload) != crc {
            return Err(PersistError::ChecksumMismatch { id });
        }
        if REQUIRED_SECTIONS.contains(&id) && sections.insert(id, payload).is_some() {
            return Err(PersistError::BadSectionTable {
                reason: format!("duplicate section {id}"),
            });
        }
        // Unknown section ids are skipped: that is how a future minor
        // version stays readable by this build.
    }
    for id in REQUIRED_SECTIONS {
        if !sections.contains_key(&id) {
            return Err(PersistError::MissingSection { id });
        }
    }
    let (strategy, estimator, seed) = decode_meta(sections[&SEC_META])?;
    let group_bins = decode_group_bins(sections[&SEC_GROUP_BINS])?;
    let keys = decode_keys(sections[&SEC_KEYS], group_bins.len())?;
    let key_stats = decode_key_stats(sections[&SEC_KEY_STATS], &keys, &group_bins)?;
    Ok(SavedModel {
        version: 1,
        strategy,
        estimator,
        seed,
        group_bins,
        group_of: keys.into_iter().collect(),
        key_stats,
    })
}

/// Serializes the model's statistics to `path` in the binary `.fjm`
/// format, crash-safely (same-dir temp + fsync + rename via
/// `write_atomic`, exactly like the JSON export).
pub fn save_model_binary(model: &FactorJoinModel, path: &Path) -> std::io::Result<()> {
    let bytes = encode(&SavedModel::from_model(model)).map_err(std::io::Error::from)?;
    super::write_atomic(path, |w| w.write_all(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same mixer as `fj_service::fault::splitmix64` (inlined — fj-core
    /// must not depend on the service crate): keeps the fuzz sweep
    /// deterministic and replayable from a printed seed.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A small but structurally complete SavedModel: two groups, three
    /// keys, one key deliberately without stats (the JSON format allows
    /// that, so the binary format must round-trip it too).
    fn sample_saved() -> SavedModel {
        let mut m0 = HashMap::new();
        for v in 0..40i64 {
            m0.insert(v * 7, (v % 4) as u32);
        }
        let mut m1 = HashMap::new();
        for v in 0..17i64 {
            m1.insert(v * 3 - 5, (v % 3) as u32);
        }
        let mut freq_a = KeyFreq::default();
        for v in 0..25i64 {
            freq_a.set(v * 7, (v as u64 % 9) + 1);
        }
        let freq_b = KeyFreq::default();
        let stats = |k: usize, freq: &KeyFreq| KeyStats {
            bin_total: (0..k).map(|i| i as f64 * 1.5 + 0.25).collect(),
            bin_mfv: (0..k).map(|i| i as f64 + 0.125).collect(),
            bin_ndv: (0..k).map(|i| (i + 1) as f64).collect(),
            freq: freq.clone(),
        };
        let mut group_of = HashMap::new();
        group_of.insert("posts.id".to_string(), 0);
        group_of.insert("comments.post_id".to_string(), 0);
        group_of.insert("users.id".to_string(), 1);
        let mut key_stats = HashMap::new();
        key_stats.insert("posts.id".to_string(), stats(4, &freq_a));
        key_stats.insert("comments.post_id".to_string(), stats(4, &freq_b));
        // "users.id" has a group but no stats on purpose.
        SavedModel {
            version: 1,
            strategy: "gbsa".to_string(),
            estimator: "sampling:0.25".to_string(),
            seed: 42,
            group_bins: vec![KeyBinMap::new(4, m0), KeyBinMap::new(3, m1)],
            group_of,
            key_stats,
        }
    }

    /// Reads a well-formed file's section table back into (id, payload)
    /// pairs, so tests can reframe files with sections added, dropped,
    /// duplicated, or corrupted.
    fn split_sections(bytes: &[u8]) -> Vec<(u32, Vec<u8>)> {
        let n = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        (0..n)
            .map(|i| {
                let e = HEADER_LEN + i * SECTION_ENTRY_LEN;
                let id = u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap());
                let off = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
                let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
                (id, bytes[off..off + len].to_vec())
            })
            .collect()
    }

    /// Reassembles a file from scratch with arbitrary version fields and
    /// section list — the tool for version-skew and table-shape tests.
    fn assemble(major: u16, minor: u16, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&major.to_le_bytes());
        out.extend_from_slice(&minor.to_le_bytes());
        out.extend_from_slice(&ENDIAN_MARK.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        let table_at = out.len();
        out.resize(table_at + SECTION_ENTRY_LEN * sections.len(), 0);
        for (i, (id, payload)) in sections.iter().enumerate() {
            while out.len() % 8 != 0 {
                out.push(0);
            }
            let offset = out.len() as u64;
            let crc = crc32(payload);
            out.extend_from_slice(payload);
            let e = table_at + i * SECTION_ENTRY_LEN;
            out[e..e + 4].copy_from_slice(&id.to_le_bytes());
            out[e + 8..e + 16].copy_from_slice(&offset.to_le_bytes());
            out[e + 16..e + 24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
            out[e + 24..e + 28].copy_from_slice(&crc.to_le_bytes());
        }
        out
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_layout_is_as_documented() {
        let bytes = encode(&sample_saved()).unwrap();
        assert_eq!(&bytes[..8], &MAGIC);
        assert_eq!(
            u16::from_le_bytes(bytes[8..10].try_into().unwrap()),
            FORMAT_MAJOR
        );
        assert_eq!(
            u16::from_le_bytes(bytes[10..12].try_into().unwrap()),
            FORMAT_MINOR
        );
        assert_eq!(&bytes[12..16], &ENDIAN_MARK.to_le_bytes());
        assert_eq!(u32::from_le_bytes(bytes[16..20].try_into().unwrap()), 4);
        // Every section payload starts 8-byte aligned (mmap-friendliness).
        for i in 0..4 {
            let e = HEADER_LEN + i * SECTION_ENTRY_LEN;
            let off = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap());
            assert_eq!(off % 8, 0, "section {i} not aligned");
        }
    }

    #[test]
    fn encode_decode_reencode_is_byte_identical() {
        let saved = sample_saved();
        let bytes = encode(&saved).unwrap();
        let decoded = decode(&bytes).unwrap();
        let again = encode(&decoded).unwrap();
        assert_eq!(bytes, again, "save -> load -> save must be byte-identical");
        // And the decode is semantically faithful, not just re-encodable.
        assert_eq!(decoded.strategy, saved.strategy);
        assert_eq!(decoded.estimator, saved.estimator);
        assert_eq!(decoded.seed, saved.seed);
        assert_eq!(decoded.group_of, saved.group_of);
        assert_eq!(decoded.key_stats.len(), saved.key_stats.len());
        for (name, stats) in &saved.key_stats {
            let d = &decoded.key_stats[name];
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&d.bin_total), bits(&stats.bin_total));
            assert_eq!(bits(&d.bin_mfv), bits(&stats.bin_mfv));
            assert_eq!(bits(&d.bin_ndv), bits(&stats.bin_ndv));
            assert_eq!(d.freq.sorted_entries(), stats.freq.sorted_entries());
        }
        for (a, b) in decoded.group_bins.iter().zip(&saved.group_bins) {
            assert_eq!(a.k(), b.k());
            let sorted = |m: &KeyBinMap| {
                let mut v: Vec<(i64, u32)> = m.entries().collect();
                v.sort_unstable();
                v
            };
            assert_eq!(sorted(a), sorted(b));
        }
    }

    #[test]
    fn wrong_magic_is_a_named_error() {
        let mut bytes = encode(&sample_saved()).unwrap();
        bytes[0] ^= 0x40;
        assert_eq!(decode(&bytes).unwrap_err(), PersistError::BadMagic);
        // A JSON model file can never be mistaken for binary.
        assert_eq!(
            decode(b"{\"version\":1}").unwrap_err(),
            PersistError::BadMagic
        );
        // Nor can a 7-bit-stripped copy of a real file (PNG-magic trick).
        let mut stripped = encode(&sample_saved()).unwrap();
        for b in &mut stripped {
            *b &= 0x7F;
        }
        assert_eq!(decode(&stripped).unwrap_err(), PersistError::BadMagic);
    }

    #[test]
    fn byte_swapped_file_is_a_named_error() {
        let mut bytes = encode(&sample_saved()).unwrap();
        bytes[12..16].copy_from_slice(&ENDIAN_MARK.to_be_bytes());
        assert_eq!(decode(&bytes).unwrap_err(), PersistError::WrongEndian);
    }

    #[test]
    fn future_major_is_rejected_future_minor_is_tolerated() {
        let sections = split_sections(&encode(&sample_saved()).unwrap());
        // Major bump: reject by policy, naming both versions.
        let v2 = assemble(FORMAT_MAJOR + 1, 0, &sections);
        assert_eq!(
            decode(&v2).unwrap_err(),
            PersistError::UnsupportedMajor {
                found: FORMAT_MAJOR + 1,
                supported: FORMAT_MAJOR,
            }
        );
        // Minor bump with an unknown extra section and a META payload
        // extended by a hypothetical new field: still loads.
        let mut skewed = sections.clone();
        for (id, payload) in &mut skewed {
            if *id == SEC_META {
                payload.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
            }
        }
        skewed.push((99, b"from the future".to_vec()));
        let future = assemble(FORMAT_MAJOR, FORMAT_MINOR + 1, &skewed);
        let decoded = decode(&future).expect("future-minor file must load");
        assert_eq!(decoded.estimator, "sampling:0.25");
        assert_eq!(decoded.group_of.len(), 3);
    }

    #[test]
    fn missing_and_duplicate_sections_are_named_errors() {
        let sections = split_sections(&encode(&sample_saved()).unwrap());
        let without_stats: Vec<_> = sections
            .iter()
            .filter(|(id, _)| *id != SEC_KEY_STATS)
            .cloned()
            .collect();
        assert_eq!(
            decode(&assemble(FORMAT_MAJOR, FORMAT_MINOR, &without_stats)).unwrap_err(),
            PersistError::MissingSection { id: SEC_KEY_STATS }
        );
        let mut doubled = sections.clone();
        doubled.push(sections[0].clone());
        assert!(matches!(
            decode(&assemble(FORMAT_MAJOR, FORMAT_MINOR, &doubled)),
            Err(PersistError::BadSectionTable { .. })
        ));
    }

    #[test]
    fn truncation_at_every_boundary_is_a_clear_error() {
        let bytes = encode(&sample_saved()).unwrap();
        // Cut points: every header byte, every table-entry edge, every
        // section start / midpoint / end-minus-one. (All prefixes would be
        // O(n^2) CRC work; boundaries are where the interesting states are,
        // and the fuzz test samples the rest.)
        let mut cuts: Vec<usize> = (0..HEADER_LEN.min(bytes.len())).collect();
        for i in 0..4 {
            let e = HEADER_LEN + i * SECTION_ENTRY_LEN;
            cuts.extend([e, e + SECTION_ENTRY_LEN]);
            let off = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
            cuts.extend([off, off + len / 2, (off + len).saturating_sub(1)]);
        }
        cuts.push(bytes.len() - 1);
        for cut in cuts {
            let torn = &bytes[..cut.min(bytes.len())];
            let got = decode(torn);
            assert!(got.is_err(), "prefix of {cut} bytes decoded: {got:?}");
            // Torn files must be *diagnosed* as torn, not as something else.
            assert!(
                matches!(
                    got,
                    Err(PersistError::BadMagic
                        | PersistError::Truncated { .. }
                        | PersistError::SectionOutOfBounds { .. })
                ),
                "prefix of {cut} bytes gave an unexpected diagnosis: {got:?}"
            );
        }
    }

    #[test]
    fn payload_corruption_fails_the_checksum() {
        let bytes = encode(&sample_saved()).unwrap();
        let first_off = {
            let e = HEADER_LEN;
            u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize
        };
        // Flip one bit in each section's payload region; each must be
        // caught by that section's CRC before any field is interpreted.
        for target in [first_off, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[target] ^= 0x01;
            assert!(
                matches!(decode(&corrupt), Err(PersistError::ChecksumMismatch { .. })),
                "flipping byte {target} was not caught by CRC"
            );
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        let base = split_sections(&encode(&sample_saved()).unwrap());
        let with = |id: u32, payload: Vec<u8>| {
            let swapped: Vec<_> = base
                .iter()
                .map(|(i, p)| (*i, if *i == id { payload.clone() } else { p.clone() }))
                .collect();
            assemble(FORMAT_MAJOR, FORMAT_MINOR, &swapped)
        };
        // GROUP_BINS claiming u64::MAX groups in an 8-byte payload.
        let huge_groups = with(SEC_GROUP_BINS, u64::MAX.to_le_bytes().to_vec());
        assert!(
            matches!(
                decode(&huge_groups),
                Err(PersistError::HostileLength {
                    wanted: u64::MAX,
                    ..
                })
            ),
            "hostile group count not pre-validated: {:?}",
            decode(&huge_groups)
        );
        // One group whose slab capacity claims 2^60 entries.
        let mut p = Vec::new();
        p.extend_from_slice(&1u64.to_le_bytes()); // group count
        p.extend_from_slice(&4u64.to_le_bytes()); // k
        p.extend_from_slice(&(1u64 << 60).to_le_bytes()); // capacity: hostile
        let huge_cap = with(SEC_GROUP_BINS, p);
        assert!(matches!(
            decode(&huge_cap),
            Err(PersistError::HostileLength { .. })
        ));
        // KEYS claiming a name longer than the payload.
        let mut p = Vec::new();
        p.extend_from_slice(&1u64.to_le_bytes()); // key count
        p.extend_from_slice(&0u64.to_le_bytes()); // gid
        p.extend_from_slice(&u32::MAX.to_le_bytes()); // name length: hostile
        p.extend_from_slice(&0u32.to_le_bytes()); // pad
        assert!(matches!(
            decode(&with(SEC_KEYS, p)),
            Err(PersistError::Truncated { .. })
        ));
        // KEY_STATS record with a hostile bin count.
        let mut p = Vec::new();
        p.extend_from_slice(&1u64.to_le_bytes()); // record count
        p.extend_from_slice(&0u64.to_le_bytes()); // key index
        p.extend_from_slice(&(1u64 << 59).to_le_bytes()); // k: hostile
        assert!(matches!(
            decode(&with(SEC_KEY_STATS, p)),
            Err(PersistError::HostileLength { .. })
        ));
    }

    #[test]
    fn invalid_slabs_and_tags_are_rejected() {
        let base = split_sections(&encode(&sample_saved()).unwrap());
        let with = |id: u32, payload: Vec<u8>| {
            let swapped: Vec<_> = base
                .iter()
                .map(|(i, p)| (*i, if *i == id { payload.clone() } else { p.clone() }))
                .collect();
            assemble(FORMAT_MAJOR, FORMAT_MINOR, &swapped)
        };
        // META with an unknown strategy tag.
        let mut meta = vec![9u8, 0, 0, 0, 0, 0, 0, 0];
        meta.extend_from_slice(&0u64.to_le_bytes());
        meta.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode(&with(SEC_META, meta)),
            Err(PersistError::Invalid { .. })
        ));
        // A group slab whose len disagrees with its occupancy
        // (cap=0 but len=1): must be caught by from_raw_parts.
        let mut p = Vec::new();
        p.extend_from_slice(&1u64.to_le_bytes()); // group count
        p.extend_from_slice(&4u64.to_le_bytes()); // k
        p.extend_from_slice(&0u64.to_le_bytes()); // capacity 0
        p.extend_from_slice(&1u64.to_le_bytes()); // len 1: inconsistent
        assert!(matches!(
            decode(&with(SEC_GROUP_BINS, p)),
            Err(PersistError::Invalid { .. })
        ));
        // A KEYS entry referencing a nonexistent group.
        let mut p = Vec::new();
        p.extend_from_slice(&1u64.to_le_bytes()); // key count
        p.extend_from_slice(&77u64.to_le_bytes()); // gid out of range
        p.extend_from_slice(&4u32.to_le_bytes()); // name length
        p.extend_from_slice(&0u32.to_le_bytes()); // pad
        p.extend_from_slice(b"a.b!");
        while p.len() % 8 != 0 {
            p.push(0);
        }
        assert!(matches!(
            decode(&with(SEC_KEYS, p)),
            Err(PersistError::Invalid { .. })
        ));
    }

    /// The wire-codec discipline applied to the model file: arbitrary
    /// mutations of a valid file must decode to Ok or a typed error —
    /// never a panic (and length pre-validation means never an OOM; a
    /// hostile length would abort the test process, which counts as a
    /// failure here).
    #[test]
    fn seeded_byte_mutation_fuzz_never_panics() {
        let good = encode(&sample_saved()).unwrap();
        for seed in 0..64u64 {
            let mut rng = seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0x9E37;
            for round in 0..64 {
                let mut bytes = good.clone();
                // 1-8 byte flips anywhere in the file.
                let flips = (splitmix64(&mut rng) % 8 + 1) as usize;
                for _ in 0..flips {
                    let at = (splitmix64(&mut rng) as usize) % bytes.len();
                    bytes[at] ^= (splitmix64(&mut rng) % 255 + 1) as u8;
                }
                // Sometimes also truncate or extend.
                match splitmix64(&mut rng) % 4 {
                    0 => {
                        let keep = (splitmix64(&mut rng) as usize) % (bytes.len() + 1);
                        bytes.truncate(keep);
                    }
                    1 => {
                        let extra = (splitmix64(&mut rng) % 64) as usize;
                        bytes.extend(std::iter::repeat_n(0xAA, extra));
                    }
                    _ => {}
                }
                let outcome = std::panic::catch_unwind(|| decode(&bytes).map(|_| ()));
                assert!(
                    outcome.is_ok(),
                    "decode panicked on seed {seed} round {round} ({} bytes)",
                    bytes.len()
                );
            }
        }
    }
}
