//! The FactorJoin model: offline training and online estimation.

use crate::binning::{build_group_bins, BinBudget, BinningStrategy, KeyFreq};
use crate::factor::{Factor, FactorArena, FactorId, JoinScratch, KeepVars};
use crate::keystats::KeyStats;
use fj_par::WorkerPool;
use fj_query::{connected_subplans_into, Query, QueryGraph, SubplanMask};
use fj_stats::{
    BaseTableEstimator, BayesNetEstimator, BnConfig, ExactEstimator, KeyBinMap, SamplingEstimator,
    TableBins, TableProfile,
};
use fj_storage::{Catalog, Column, KeyRef, Table, TableSchema};
use std::collections::HashMap;
use std::time::Instant;

/// Which single-table estimator backs the model (paper Table 7 ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaseEstimatorKind {
    /// Chow-Liu-tree Bayesian network (BayesCard stand-in) — the paper's
    /// choice for STATS-CEB.
    BayesNet(BnConfig),
    /// Uniform sampling with the given rate — the paper's choice for
    /// IMDB-JOB (supports `LIKE` and disjunctions).
    Sampling {
        /// Sampling fraction in (0, 1].
        rate: f64,
    },
    /// Exact scanning ("TrueScan"): tight bounds, high estimation latency.
    TrueScan,
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct FactorJoinConfig {
    /// Bins per equivalent key group (paper default k = 100).
    pub bin_budget: BinBudget,
    /// Binning strategy (paper default GBSA).
    pub strategy: BinningStrategy,
    /// Single-table estimator.
    pub estimator: BaseEstimatorKind,
    /// Seed for the sampling estimator.
    pub seed: u64,
    /// Worker threads for the offline build (0 = all available cores,
    /// 1 = fully serial). The trained model is **bit-identical** for every
    /// thread count — parallelism only fans out independent per-key,
    /// per-group, and per-table work (see `tests/parallel_train.rs`).
    pub threads: usize,
}

impl Default for FactorJoinConfig {
    fn default() -> Self {
        FactorJoinConfig {
            bin_budget: BinBudget::Uniform(100),
            strategy: BinningStrategy::Gbsa,
            estimator: BaseEstimatorKind::BayesNet(BnConfig::default()),
            seed: 42,
            threads: 0,
        }
    }
}

/// Offline-training metadata (paper Figure 6 reports these).
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
    /// Deployable model size in bytes (estimators + bins + per-bin stats).
    pub model_bytes: usize,
    /// Number of equivalent key groups found in the schema.
    pub num_groups: usize,
    /// Bins allocated to each group.
    pub bins_per_group: Vec<usize>,
    /// Worker threads the build fanned out to (1 = serial).
    pub threads: usize,
}

/// Reusable buffers for progressive sub-plan estimation.
///
/// Owning one of these across queries (see [`SubplanEstimator`]) makes
/// [`FactorJoinModel::estimate_subplans_with`] allocation-free per
/// sub-plan: joined factors live in a [`FactorArena`], joins run through a
/// [`JoinScratch`], base-table profiles refill a reused [`TableProfile`],
/// and the per-mask cache index keeps its table. Every buffer growth is
/// counted, so tests can assert the steady state allocates nothing.
#[derive(Debug, Default)]
pub struct EstimationScratch {
    join: JoinScratch,
    arena: FactorArena,
    mask_index: HashMap<SubplanMask, FactorId>,
    masks: Vec<SubplanMask>,
    base_ids: Vec<Option<FactorId>>,
    profile: TableProfile,
    key_order: Vec<(usize, usize)>,
    ones: Vec<f64>,
    grow_events: u64,
}

impl EstimationScratch {
    /// Total buffer-growth events since construction, across all internal
    /// buffers. Stays constant once the scratch has warmed up on the
    /// largest query shape — the "zero per-sub-plan heap allocation"
    /// contract of the hot path.
    pub fn grow_events(&self) -> u64 {
        self.grow_events + self.join.grow_events() + self.arena.grow_events()
    }

    fn note_mask_index_growth(&mut self) {
        if self.mask_index.len() == self.mask_index.capacity() {
            self.grow_events += 1;
        }
    }
}

/// An estimation session: a trained model plus owned scratch buffers.
///
/// The model itself is immutable (and shareable) after training; all
/// mutable online state lives here. Create one per worker/thread and feed
/// it queries — after the first few queries the session stops allocating.
pub struct SubplanEstimator<'m> {
    model: &'m FactorJoinModel,
    scratch: EstimationScratch,
}

impl SubplanEstimator<'_> {
    /// Progressive sub-plan estimation through the session scratch (paper
    /// §5.2); see [`FactorJoinModel::estimate_subplans`].
    pub fn estimate_subplans(&mut self, query: &Query, min_size: u32) -> Vec<(SubplanMask, f64)> {
        self.model
            .estimate_subplans_with(&mut self.scratch, query, min_size)
    }

    /// Buffer-growth events so far (see [`EstimationScratch::grow_events`]).
    pub fn grow_events(&self) -> u64 {
        self.scratch.grow_events()
    }

    /// The wrapped model.
    pub fn model(&self) -> &FactorJoinModel {
        self.model
    }
}

/// A trained FactorJoin model.
pub struct FactorJoinModel {
    config: FactorJoinConfig,
    group_of: HashMap<KeyRef, usize>,
    group_bins: Vec<KeyBinMap>,
    key_stats: HashMap<KeyRef, KeyStats>,
    table_bins: HashMap<String, TableBins>,
    estimators: HashMap<String, Box<dyn BaseTableEstimator>>,
    schemas: HashMap<String, TableSchema>,
    report: TrainingReport,
}

impl FactorJoinModel {
    /// Trains the model on `catalog` (paper Figure 4, offline phase).
    ///
    /// The build fans out across `config.threads` workers (0 = all cores)
    /// in three waves — per-key frequency profiling, per-group binning +
    /// per-key statistics, per-table estimator fits — with the guarantee
    /// that every thread count produces the **same model bit for bit**:
    /// each task is a pure function of its slice of the catalog, and all
    /// cross-task assembly happens serially in canonical order.
    pub fn train(catalog: &Catalog, config: FactorJoinConfig) -> Self {
        let start = Instant::now();
        let pool = WorkerPool::new(config.threads);
        let groups = catalog.equivalent_key_groups();
        let num_groups = groups.len();

        // Wave 1 — frequency map of every join key, one task per key. The
        // flat key order (groups in id order, members in group order) is
        // the canonical order every later stage indexes by.
        let flat_keys: Vec<&KeyRef> = groups.iter().flat_map(|g| g.keys.iter()).collect();
        let mut group_start = Vec::with_capacity(num_groups);
        {
            let mut at = 0usize;
            for g in &groups {
                group_start.push(at);
                at += g.keys.len();
            }
        }
        let freqs: Vec<KeyFreq> = pool.run_indexed(flat_keys.len(), |i| {
            let kr = flat_keys[i];
            let table = catalog.table(&kr.table).expect("group keys exist");
            let ci = table
                .schema()
                .index_of(&kr.column)
                .expect("group keys exist");
            profile_key_freq(table.column(ci))
        });

        // Wave 2a — bin each group from its members' frequency maps, one
        // task per group.
        let group_bins: Vec<KeyBinMap> = pool.run_indexed(num_groups, |gi| {
            let g = &groups[gi];
            let k = config.bin_budget.bins_for(g.id, num_groups);
            let member_freqs: Vec<&KeyFreq> = (0..g.keys.len())
                .map(|j| &freqs[group_start[gi] + j])
                .collect();
            build_group_bins(&member_freqs, k, config.strategy)
        });
        let bins_per_group: Vec<usize> = group_bins.iter().map(KeyBinMap::k).collect();

        // Wave 2b — per-bin statistics of every key under its group's
        // bins, one task per key.
        let gid_of_flat: Vec<usize> = groups
            .iter()
            .flat_map(|g| std::iter::repeat_n(g.id, g.keys.len()))
            .collect();
        let stat_vectors = pool.run_indexed(flat_keys.len(), |i| {
            KeyStats::bin_vectors(&freqs[i], &group_bins[gid_of_flat[i]])
        });

        // Serial assembly in canonical order. Each key's frequency map
        // moves into its `KeyStats` (groups partition the keys), so
        // training never clones the potentially large per-key maps.
        let mut group_of = HashMap::new();
        let mut key_stats = HashMap::new();
        for ((kr, freq), (gid, vectors)) in flat_keys
            .iter()
            .zip(freqs)
            .zip(gid_of_flat.iter().zip(stat_vectors))
        {
            group_of.insert((*kr).clone(), *gid);
            key_stats.insert((*kr).clone(), KeyStats::from_vectors(vectors, freq));
        }

        // Per-table bin sets, then one estimator fit per table (wave 3 —
        // the dominant cost: Chow-Liu trees and CPTs for BayesNet models).
        let table_bins = assemble_table_bins(catalog, &group_of, &group_bins);
        let (estimators, schemas) = build_estimators(catalog, &table_bins, &config, &pool);

        let mut model = FactorJoinModel {
            config,
            group_of,
            group_bins,
            key_stats,
            table_bins,
            estimators,
            schemas,
            report: TrainingReport {
                train_seconds: 0.0,
                model_bytes: 0,
                num_groups,
                bins_per_group,
                threads: pool.threads(),
            },
        };
        model.report.model_bytes = model.model_bytes();
        model.report.train_seconds = start.elapsed().as_secs_f64();
        model
    }

    /// Training metadata.
    pub fn report(&self) -> &TrainingReport {
        &self.report
    }

    /// Training configuration.
    pub fn config(&self) -> &FactorJoinConfig {
        &self.config
    }

    /// Bin map of a key group (for baselines sharing the binning layer).
    pub fn group_bins(&self, gid: usize) -> &KeyBinMap {
        &self.group_bins[gid]
    }

    /// Group id of a join key, if it is part of a declared relation.
    pub fn group_of(&self, key: &KeyRef) -> Option<usize> {
        self.group_of.get(key).copied()
    }

    /// Per-key offline statistics.
    pub fn key_stats(&self, key: &KeyRef) -> Option<&KeyStats> {
        self.key_stats.get(key)
    }

    /// Iterates over all (key, statistics) pairs (used by persistence).
    pub fn iter_key_stats(&self) -> impl Iterator<Item = (&KeyRef, &KeyStats)> {
        self.key_stats.iter()
    }

    /// Reassembles a model from persisted statistics, rebuilding the
    /// single-table estimators against `catalog` (in parallel, like
    /// [`Self::train`]).
    pub(crate) fn from_parts(
        config: FactorJoinConfig,
        group_of: HashMap<KeyRef, usize>,
        group_bins: Vec<KeyBinMap>,
        key_stats: HashMap<KeyRef, KeyStats>,
        catalog: &Catalog,
    ) -> Self {
        let start = Instant::now();
        let pool = WorkerPool::new(config.threads);
        let table_bins = assemble_table_bins(catalog, &group_of, &group_bins);
        let (estimators, schemas) = build_estimators(catalog, &table_bins, &config, &pool);
        let num_groups = group_bins.len();
        let bins_per_group = group_bins.iter().map(KeyBinMap::k).collect();
        let mut model = FactorJoinModel {
            config,
            group_of,
            group_bins,
            key_stats,
            table_bins,
            estimators,
            schemas,
            report: TrainingReport {
                train_seconds: 0.0,
                model_bytes: 0,
                num_groups,
                bins_per_group,
                threads: pool.threads(),
            },
        };
        model.report.model_bytes = model.model_bytes();
        model.report.train_seconds = start.elapsed().as_secs_f64();
        model
    }

    /// The single-table estimator of `table` (for baselines and tests).
    pub fn estimator(&self, table: &str) -> Option<&dyn BaseTableEstimator> {
        self.estimators.get(table).map(|b| b.as_ref())
    }

    /// The bin maps of `table`'s join keys.
    pub fn table_bins(&self, table: &str) -> Option<&TableBins> {
        self.table_bins.get(table)
    }

    /// Deployable model size: estimators, bin maps, per-bin statistics.
    pub fn model_bytes(&self) -> usize {
        let est: usize = self.estimators.values().map(|e| e.model_bytes()).sum();
        let bins: usize = self.group_bins.iter().map(KeyBinMap::heap_bytes).sum();
        let stats: usize = self.key_stats.values().map(KeyStats::heap_bytes).sum();
        est + bins + stats
    }

    /// Opens an estimation session over this model (owned scratch buffers;
    /// see [`SubplanEstimator`]).
    pub fn subplan_estimator(&self) -> SubplanEstimator<'_> {
        SubplanEstimator {
            model: self,
            scratch: EstimationScratch::default(),
        }
    }

    /// Builds the base factor of alias `alias` into `scratch.join`'s output
    /// buffers, profiling its filter once for all adjacent variables.
    /// Returns the alias's estimated (filtered) row count.
    fn build_base_factor(
        &self,
        query: &Query,
        graph: &QueryGraph,
        alias: usize,
        scratch: &mut EstimationScratch,
    ) -> f64 {
        let tref = &query.tables()[alias];
        let schema = &self.schemas[&tref.table];
        let est = &self.estimators[&tref.table];

        // Distinct key columns of this alias, with their variables.
        let keys = graph.alias_keys(alias);
        let name_refs: Vec<&str> = keys
            .iter()
            .map(|&(c, _)| schema.column(c).name.as_str())
            .collect();
        let EstimationScratch {
            join,
            profile,
            key_order,
            ones,
            ..
        } = scratch;
        est.profile_into(query.filter(alias), &name_refs, profile);

        // Group keys per var: a var may have several member columns within
        // this alias (e.g. movie_id and linked_movie_id equated); combine
        // with elementwise min — a valid upper bound for "all members
        // equal". Key distributions are consumed straight out of the
        // profile buffer; MFV counts straight out of the trained KeyStats.
        key_order.clear();
        key_order.extend(keys.iter().enumerate().map(|(idx, &(_, var))| (var, idx)));
        key_order.sort_unstable();
        join.begin();
        let mut prev_var = usize::MAX;
        for &(var, idx) in key_order.iter() {
            let dist: &[f64] = &profile.key_dists[idx];
            let kr = KeyRef::new(&tref.table, name_refs[idx]);
            let mfv: &[f64] = match self.key_stats.get(&kr) {
                Some(s) => &s.bin_mfv,
                None => {
                    if ones.len() < dist.len() {
                        ones.resize(dist.len(), 1.0);
                    }
                    &ones[..dist.len()]
                }
            };
            if var == prev_var {
                join.min_combine_last(dist, mfv);
            } else {
                join.push_var(var, dist, mfv);
                prev_var = var;
            }
        }
        join.finish();
        profile.rows.max(0.0)
    }

    /// Builds the base factor of alias `i` as an owned [`Factor`] (cold
    /// paths: direct estimation, tests).
    fn base_factor(
        &self,
        query: &Query,
        graph: &QueryGraph,
        alias: usize,
        scratch: &mut EstimationScratch,
    ) -> Factor {
        let rows = self.build_base_factor(query, graph, alias, scratch);
        Factor::from_scratch(rows, &scratch.join)
    }

    /// Estimates the probabilistic cardinality bound of `query` (paper
    /// Figure 4, online phase): build the factor graph, then fold factors
    /// along the join graph with the bound-preserving join.
    pub fn estimate(&self, query: &Query) -> f64 {
        let n = query.num_tables();
        if n == 0 {
            return 0.0;
        }
        let graph = QueryGraph::analyze(query);
        if n == 1 {
            return self.estimators[&query.tables()[0].table].estimate_filter(query.filter(0));
        }
        let mut scratch = EstimationScratch::default();
        let mut factors: Vec<Factor> = (0..n)
            .map(|i| self.base_factor(query, &graph, i, &mut scratch))
            .collect();

        // Fold smallest-first along adjacency, eliminating variables whose
        // member aliases are all joined.
        let mut joined: u64 = 0;
        let order_start = (0..n)
            .min_by(|&a, &b| {
                factors[a]
                    .rows
                    .partial_cmp(&factors[b].rows)
                    .expect("rows are finite")
            })
            .expect("non-empty query");
        joined |= 1 << order_start;
        let mut acc = std::mem::replace(&mut factors[order_start], Factor::scalar(0.0));
        while joined.count_ones() < n as u32 {
            let next = (0..n)
                .filter(|&i| joined & (1 << i) == 0)
                .min_by_key(|&i| {
                    let adjacent = graph.neighbors(i).iter().any(|&nb| joined & (1 << nb) != 0);
                    (!adjacent, factors[i].rows as i64)
                })
                .expect("remaining alias exists");
            joined |= 1 << next;
            let keep = keep_for_mask(&graph, joined);
            acc = acc.join_with(&factors[next], &keep, &mut scratch.join);
            if acc.rows == 0.0 {
                return 0.0;
            }
        }
        acc.rows
    }

    /// Progressively estimates every connected sub-plan of `query` with at
    /// least `min_size` aliases (paper §5.2): each sub-plan is one factor
    /// join away from a cached smaller sub-plan, so the whole set costs
    /// little more than the final query alone.
    ///
    /// Allocates fresh scratch per call; hold a [`SubplanEstimator`] (or
    /// call [`Self::estimate_subplans_with`]) to reuse buffers across
    /// queries on hot paths.
    pub fn estimate_subplans(&self, query: &Query, min_size: u32) -> Vec<(SubplanMask, f64)> {
        let mut scratch = EstimationScratch::default();
        self.estimate_subplans_with(&mut scratch, query, min_size)
    }

    /// [`Self::estimate_subplans`] through caller-owned scratch buffers.
    ///
    /// After the base factors of a query are built, the per-sub-plan work —
    /// split lookup, keep-set construction, factor join, cache insert — is
    /// free of heap allocation on a warm scratch (asserted by the
    /// scratch-reuse tests via [`EstimationScratch::grow_events`]).
    pub fn estimate_subplans_with(
        &self,
        scratch: &mut EstimationScratch,
        query: &Query,
        min_size: u32,
    ) -> Vec<(SubplanMask, f64)> {
        let n = query.num_tables();
        let graph = QueryGraph::analyze(query);
        scratch.arena.clear();
        scratch.mask_index.clear();
        {
            let cap = scratch.masks.capacity();
            connected_subplans_into(query, 1, &mut scratch.masks);
            if scratch.masks.capacity() != cap {
                scratch.grow_events += 1;
            }
        }
        if scratch.base_ids.capacity() < n {
            scratch.grow_events += 1;
        }
        scratch.base_ids.clear();
        scratch.base_ids.resize(n, None);
        let mut out = Vec::with_capacity(scratch.masks.len());

        for mi in 0..scratch.masks.len() {
            let mask = scratch.masks[mi];
            if mask.count_ones() == 1 {
                // Base factors, including exact single-table row estimates.
                let i = mask.trailing_zeros() as usize;
                let rows = self.build_base_factor(query, &graph, i, scratch);
                let id = scratch.arena.push_scratch(rows, &scratch.join);
                scratch.base_ids[i] = Some(id);
                scratch.note_mask_index_growth();
                scratch.mask_index.insert(mask, id);
                out.push((mask, rows));
            } else {
                // Split off one alias whose removal keeps the rest cached.
                let (rest, alias) = split_mask(mask, &scratch.mask_index);
                let keep = keep_for_mask(&graph, mask);
                let EstimationScratch {
                    join,
                    arena,
                    mask_index,
                    base_ids,
                    ..
                } = scratch;
                let rest_id = mask_index[&rest];
                let base_id = base_ids[alias].expect("singletons come first");
                let (id, rows) = arena.join(rest_id, base_id, &keep, join);
                scratch.note_mask_index_growth();
                scratch.mask_index.insert(mask, id);
                out.push((mask, rows));
            }
        }
        out.retain(|(m, _)| m.count_ones() >= min_size);
        out
    }

    /// Incorporates rows `first_new_row..` of the updated `table` (paper
    /// §4.3): bins stay fixed, per-bin statistics and the single-table
    /// estimator update incrementally.
    pub fn insert(&mut self, table: &Table, first_new_row: usize) {
        self.insert_inner(table, first_new_row);
        self.report.model_bytes = self.model_bytes();
    }

    /// One table's worth of [`Self::insert`] without the model-size
    /// refresh (batched by [`Self::apply_insert`]).
    fn insert_inner(&mut self, table: &Table, first_new_row: usize) {
        let name = table.name().to_string();
        // Update key statistics for this table's join keys.
        let keys: Vec<KeyRef> = self
            .key_stats
            .keys()
            .filter(|kr| kr.table == name)
            .cloned()
            .collect();
        for kr in keys {
            let ci = table
                .schema()
                .index_of(&kr.column)
                .expect("schema unchanged");
            let gid = self.group_of[&kr];
            // Adopt new values into the group map so the per-key stats and
            // the estimator bins agree on fallback assignments.
            let stats = self.key_stats.get_mut(&kr).expect("key exists");
            stats.insert(table, ci, first_new_row, &mut self.group_bins[gid]);
        }
        if let Some(est) = self.estimators.get_mut(&name) {
            est.insert(table, first_new_row);
        }
    }

    /// Applies a staged batch of inserts in `O(|delta|)` (paper §4.3): for
    /// every staged table, the new rows `first_new_row..` of the (already
    /// appended-to) `catalog` are routed through the **existing** stable
    /// bin maps — `KeyBinMap::bin_of` assigns unseen values their
    /// deterministic fallback bin — and the per-bin totals, MFV counts,
    /// NDVs, and the single-table estimators update in place. Bins are
    /// never re-selected, which is exactly the paper's stale-bound trade:
    /// updates are cheap, and the bound degrades only as far as the frozen
    /// binning drifts from the new data distribution.
    pub fn apply_insert(&mut self, catalog: &Catalog, delta: &ModelDelta) {
        for (name, first_new_row) in &delta.entries {
            let table = catalog.table(name).expect("delta names a catalog table");
            self.insert_inner(table, *first_new_row);
        }
        self.report.model_bytes = self.model_bytes();
    }

    /// [`Self::apply_insert`] on a copy: clones the trained statistics,
    /// applies the delta, and returns the updated model, leaving `self`
    /// untouched. This is the hot-swap path — the served model stays live
    /// behind its `Arc` while the copy absorbs the update, then
    /// `ModelRegistry::apply_insert` (fj-service) publishes the copy
    /// atomically.
    pub fn updated_with(&self, catalog: &Catalog, delta: &ModelDelta) -> Self {
        let mut updated = self.clone();
        updated.apply_insert(catalog, delta);
        updated
    }
}

impl Clone for FactorJoinModel {
    /// Deep copy; the boxed single-table estimators clone through
    /// [`BaseTableEstimator::clone_box`].
    fn clone(&self) -> Self {
        FactorJoinModel {
            config: self.config.clone(),
            group_of: self.group_of.clone(),
            group_bins: self.group_bins.clone(),
            key_stats: self.key_stats.clone(),
            table_bins: self.table_bins.clone(),
            estimators: self
                .estimators
                .iter()
                .map(|(name, est)| (name.clone(), est.clone_box()))
                .collect(),
            schemas: self.schemas.clone(),
            report: self.report.clone(),
        }
    }
}

/// A staged batch of table inserts, applied to a model in `O(|delta|)` by
/// [`FactorJoinModel::apply_insert`] (paper §4.3).
///
/// The delta records *where the new rows start*, not the rows themselves:
/// append rows to the catalog's tables first, [`ModelDelta::record`] each
/// table's old length, then apply against that catalog. One delta can
/// stage inserts into many tables (the paper's STATS update replays all
/// post-2014 tuples across the whole schema).
#[derive(Debug, Clone, Default)]
pub struct ModelDelta {
    /// `(table name, first new row)` per staged table, in record order.
    entries: Vec<(String, usize)>,
    /// Total staged rows (for reporting; not used by apply).
    rows: usize,
}

impl ModelDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages the rows `first_new_row..` of `table` (already appended).
    pub fn record(&mut self, table: &Table, first_new_row: usize) {
        self.rows += table.nrows().saturating_sub(first_new_row);
        self.entries.push((table.name().to_string(), first_new_row));
    }

    /// Number of staged tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total rows staged across tables.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The staged `(table, first_new_row)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (&str, usize)> {
        self.entries.iter().map(|(t, f)| (t.as_str(), *f))
    }
}

/// The variables that must survive a join producing `mask`: those with a
/// member alias outside the mask (some not-yet-joined alias still
/// references them). Shared by the model's fold and by baselines that
/// reuse the bound-preserving join (e.g. PessEst).
pub fn keep_for_mask(graph: &QueryGraph, mask: SubplanMask) -> KeepVars {
    let mut kv = KeepVars::none();
    for var in graph.vars() {
        if var.members.iter().any(|cr| mask & (1 << cr.alias) == 0) {
            kv.insert(var.id);
        }
    }
    kv
}

/// Finds `(rest, alias)` with `mask = rest | bit(alias)` and `rest` cached.
fn split_mask(mask: SubplanMask, cache: &HashMap<SubplanMask, FactorId>) -> (SubplanMask, usize) {
    let mut rest = mask;
    while rest != 0 {
        let bit = rest & rest.wrapping_neg();
        let candidate = mask & !bit;
        if cache.contains_key(&candidate) {
            return (candidate, bit.trailing_zeros() as usize);
        }
        rest &= rest - 1;
    }
    panic!("connected sub-plan must have a cached connected predecessor");
}

fn build_estimator(
    kind: &BaseEstimatorKind,
    table: &Table,
    bins: &TableBins,
    seed: u64,
) -> Box<dyn BaseTableEstimator> {
    match kind {
        BaseEstimatorKind::BayesNet(cfg) => Box::new(BayesNetEstimator::build(table, bins, *cfg)),
        BaseEstimatorKind::Sampling { rate } => {
            Box::new(SamplingEstimator::build(table, bins, *rate, seed))
        }
        BaseEstimatorKind::TrueScan => Box::new(ExactEstimator::build(table, bins)),
    }
}

/// Counts every non-null key of `column` into a flat frequency map — the
/// unit of wave-1 training parallelism.
fn profile_key_freq(column: &Column) -> KeyFreq {
    KeyFreq::count_column(column)
}

/// Collects each table's join-key bin maps, with an (empty) entry for
/// every catalog table so estimator construction finds its bins. Each
/// group's map is deep-copied **once** and then `Arc`-shared across all
/// referencing tables (and, transitively, their estimators): the shared
/// copies are frozen snapshots — incremental inserts mutate only the
/// model's own `group_bins`, whose adopt-pinned assignments agree with the
/// snapshots' deterministic fallback by construction.
fn assemble_table_bins(
    catalog: &Catalog,
    group_of: &HashMap<KeyRef, usize>,
    group_bins: &[KeyBinMap],
) -> HashMap<String, TableBins> {
    let shared: Vec<std::sync::Arc<KeyBinMap>> = group_bins
        .iter()
        .map(|b| std::sync::Arc::new(b.clone()))
        .collect();
    let mut table_bins: HashMap<String, TableBins> = catalog
        .tables()
        .map(|t| (t.name().to_string(), TableBins::new()))
        .collect();
    for (kr, &gid) in group_of {
        table_bins
            .entry(kr.table.clone())
            .or_default()
            .insert_shared(&kr.column, std::sync::Arc::clone(&shared[gid]));
    }
    table_bins
}

/// Fits one single-table estimator per catalog table across the pool —
/// wave 3 of training, and the dominant cost for learned estimators
/// (Chow-Liu structure search + CPT counting per table).
#[allow(clippy::type_complexity)]
fn build_estimators(
    catalog: &Catalog,
    table_bins: &HashMap<String, TableBins>,
    config: &FactorJoinConfig,
    pool: &WorkerPool,
) -> (
    HashMap<String, Box<dyn BaseTableEstimator>>,
    HashMap<String, TableSchema>,
) {
    let tables: Vec<&Table> = catalog.tables().collect();
    let built: Vec<(String, Box<dyn BaseTableEstimator>)> = pool.run_indexed(tables.len(), |i| {
        let table = tables[i];
        let bins = &table_bins[table.name()];
        (
            table.name().to_string(),
            build_estimator(&config.estimator, table, bins, config.seed),
        )
    });
    let schemas = tables
        .iter()
        .map(|t| (t.name().to_string(), t.schema().clone()))
        .collect();
    (built.into_iter().collect(), schemas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::reference::RefFactor;
    use fj_datagen::{stats_catalog, stats_ceb_workload, StatsConfig, WorkloadConfig};
    use fj_exec::TrueCardEngine;
    use fj_query::parse_query;

    fn tiny_catalog() -> Catalog {
        stats_catalog(&StatsConfig {
            scale: 0.05,
            ..Default::default()
        })
    }

    fn truescan_config(k: usize) -> FactorJoinConfig {
        FactorJoinConfig {
            bin_budget: BinBudget::Uniform(k),
            strategy: BinningStrategy::Gbsa,
            estimator: BaseEstimatorKind::TrueScan,
            seed: 1,
            threads: 1,
        }
    }

    #[test]
    fn training_report_is_populated() {
        let cat = tiny_catalog();
        let model = FactorJoinModel::train(&cat, FactorJoinConfig::default());
        let r = model.report();
        assert_eq!(r.num_groups, 2);
        assert_eq!(r.bins_per_group.len(), 2);
        assert!(r.model_bytes > 0);
        assert!(r.train_seconds >= 0.0);
    }

    #[test]
    fn single_table_estimate_matches_estimator() {
        let cat = tiny_catalog();
        let model = FactorJoinModel::train(&cat, truescan_config(20));
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id AND p.score > 0;",
        )
        .unwrap();
        let subs = model.estimate_subplans(&q, 1);
        let single = subs.iter().find(|(m, _)| *m == 0b01).unwrap().1;
        let exact = fj_query::filtered_count(cat.table("posts").unwrap(), q.filter(0)) as f64;
        assert_eq!(single, exact, "TrueScan single-table estimates are exact");
    }

    #[test]
    fn two_table_bound_dominates_truth_with_truescan() {
        // With exact single-table statistics the two-table bound is a
        // genuine upper bound (paper §4.1).
        let cat = tiny_catalog();
        let model = FactorJoinModel::train(&cat, truescan_config(50));
        for sql in [
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id;",
            "SELECT COUNT(*) FROM users u, badges b WHERE u.id = b.user_id AND u.reputation > 50;",
            "SELECT COUNT(*) FROM posts p, votes v WHERE p.id = v.post_id AND p.score >= 1;",
        ] {
            let q = parse_query(&cat, sql).unwrap();
            let bound = model.estimate(&q);
            let truth = TrueCardEngine::new(&cat, &q).full_cardinality();
            assert!(
                bound >= truth * 0.999,
                "{sql}: bound {bound} < truth {truth}"
            );
        }
    }

    #[test]
    fn more_bins_tighten_the_bound() {
        let cat = tiny_catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id;",
        )
        .unwrap();
        let truth = TrueCardEngine::new(&cat, &q).full_cardinality();
        let bounds: Vec<f64> = [1usize, 10, 100]
            .iter()
            .map(|&k| FactorJoinModel::train(&cat, truescan_config(k)).estimate(&q))
            .collect();
        assert!(
            bounds[0] >= bounds[1] * 0.999 && bounds[1] >= bounds[2] * 0.999,
            "bounds should shrink with k: {bounds:?}"
        );
        assert!(bounds[2] >= truth * 0.999, "k=100 still an upper bound");
        // k=1 is loose but finite.
        assert!(bounds[0].is_finite());
    }

    #[test]
    fn progressive_full_query_matches_direct_estimate() {
        let cat = tiny_catalog();
        let model = FactorJoinModel::train(&cat, truescan_config(30));
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM users u, posts p, comments c \
             WHERE u.id = p.owner_user_id AND p.id = c.post_id AND u.reputation > 10;",
        )
        .unwrap();
        let subs = model.estimate_subplans(&q, 1);
        assert_eq!(subs.len(), 6);
        let full = subs.iter().find(|(m, _)| *m == 0b111).unwrap().1;
        let direct = model.estimate(&q);
        // Same factor folds modulo order; both are valid bounds and should
        // agree within a small factor.
        let ratio = (full / direct).max(direct / full);
        assert!(ratio < 2.0, "progressive {full} vs direct {direct}");
    }

    #[test]
    fn workload_bounds_mostly_dominate_truth() {
        // Paper Figure 7: FactorJoin upper-bounds > 90% of sub-plans. With
        // the exact (TrueScan) base estimator we check the same property on
        // a small workload.
        let cat = tiny_catalog();
        let model = FactorJoinModel::train(&cat, truescan_config(50));
        let wl = stats_ceb_workload(&cat, &WorkloadConfig::tiny(3));
        let mut total = 0usize;
        let mut upper = 0usize;
        for q in &wl {
            let mut eng = TrueCardEngine::new(&cat, q);
            for (mask, est) in model.estimate_subplans(q, 2) {
                let truth = eng.cardinality(mask);
                total += 1;
                if est >= truth * 0.999 {
                    upper += 1;
                }
            }
        }
        let frac = upper as f64 / total as f64;
        assert!(
            frac >= 0.9,
            "only {upper}/{total} sub-plans upper-bounded ({frac:.2})"
        );
    }

    #[test]
    fn self_join_and_cyclic_queries_estimate() {
        let cat = tiny_catalog();
        let model = FactorJoinModel::train(&cat, truescan_config(20));
        // Self join of postLinks through posts (two aliases of postLinks).
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM postLinks l1, postLinks l2 \
             WHERE l1.related_post_id = l2.post_id;",
        )
        .unwrap();
        let bound = model.estimate(&q);
        let truth = TrueCardEngine::new(&cat, &q).full_cardinality();
        assert!(
            bound >= truth * 0.999,
            "self-join bound {bound} < truth {truth}"
        );
        // Cyclic: two join conditions between the same pair of aliases.
        let q2 = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, postLinks l \
             WHERE p.id = l.post_id AND p.id = l.related_post_id;",
        )
        .unwrap();
        let b2 = model.estimate(&q2);
        let t2 = TrueCardEngine::new(&cat, &q2).full_cardinality();
        assert!(b2 >= t2 * 0.999, "cyclic bound {b2} < truth {t2}");
    }

    #[test]
    fn bayesnet_and_sampling_models_give_reasonable_estimates() {
        let cat = tiny_catalog();
        let q = parse_query(
            &cat,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id AND p.score > 0;",
        )
        .unwrap();
        let truth = TrueCardEngine::new(&cat, &q).full_cardinality();
        for kind in [
            BaseEstimatorKind::BayesNet(BnConfig::default()),
            BaseEstimatorKind::Sampling { rate: 0.2 },
        ] {
            let model = FactorJoinModel::train(
                &cat,
                FactorJoinConfig {
                    estimator: kind,
                    ..truescan_config(50)
                },
            );
            let est = model.estimate(&q);
            let q_err = (est.max(1.0) / truth.max(1.0)).max(truth.max(1.0) / est.max(1.0));
            assert!(
                q_err < 30.0,
                "{kind:?}: estimate {est} vs truth {truth} (q={q_err:.1})"
            );
        }
    }

    #[test]
    fn incremental_insert_tracks_growth() {
        use fj_datagen::stats_catalog_split_by_date;
        let cfg = StatsConfig {
            scale: 0.05,
            ..Default::default()
        };
        let (mut base, inserts) = stats_catalog_split_by_date(&cfg, 1825);
        let mut model = FactorJoinModel::train(&base, truescan_config(30));
        let q = parse_query(
            &base,
            "SELECT COUNT(*) FROM posts p, comments c WHERE p.id = c.post_id;",
        )
        .unwrap();
        let before = model.estimate(&q);
        for (tname, rows) in &inserts {
            let first = base.table(tname).unwrap().nrows();
            base.table_mut(tname).unwrap().append_rows(rows).unwrap();
            let table = base.table(tname).unwrap().clone();
            model.insert(&table, first);
        }
        let after = model.estimate(&q);
        let truth = TrueCardEngine::new(&base, &q).full_cardinality();
        assert!(after > before, "estimate should grow after inserts");
        assert!(
            after >= truth * 0.95,
            "updated bound {after} should still dominate truth {truth}"
        );
    }

    #[test]
    fn estimation_latency_is_small() {
        // Paper: ~10k sub-plans per second even for big queries; here we
        // just sanity-check that a workload's sub-plans estimate quickly.
        let cat = tiny_catalog();
        let model = FactorJoinModel::train(&cat, FactorJoinConfig::default());
        let wl = stats_ceb_workload(&cat, &WorkloadConfig::tiny(9));
        let mut session = model.subplan_estimator();
        let start = Instant::now();
        let mut count = 0usize;
        for q in &wl {
            count += session.estimate_subplans(q, 1).len();
        }
        let per_sec = count as f64 / start.elapsed().as_secs_f64();
        assert!(
            per_sec > 200.0,
            "only {per_sec:.0} sub-plans/s (debug build)"
        );
    }

    // ------------------------------------- flat/lazy path invariants

    /// Reference (BTreeMap, eager-rescale) progressive estimation: same
    /// split/cache/keep logic as `estimate_subplans_with`, but every join
    /// goes through the original implementation.
    fn ref_estimate_subplans(
        model: &FactorJoinModel,
        q: &Query,
        min_size: u32,
    ) -> Vec<(SubplanMask, f64)> {
        fn ref_of(f: &Factor) -> RefFactor {
            let entries = f
                .vars()
                .into_iter()
                .map(|v| (v, f.dist(v).unwrap(), f.mfv(v).unwrap()))
                .collect();
            RefFactor::base(f.rows, entries)
        }
        let n = q.num_tables();
        let graph = QueryGraph::analyze(q);
        let masks = fj_query::connected_subplans(q, 1);
        let mut scratch = EstimationScratch::default();
        let mut cache: HashMap<SubplanMask, RefFactor> = HashMap::new();
        let mut base: Vec<Option<RefFactor>> = vec![None; n];
        let mut out = Vec::new();
        for &mask in &masks {
            if mask.count_ones() == 1 {
                let i = mask.trailing_zeros() as usize;
                let f = model.base_factor(q, &graph, i, &mut scratch);
                let rf = ref_of(&f);
                out.push((mask, rf.rows));
                base[i] = Some(rf.clone());
                cache.insert(mask, rf);
            } else {
                let (rest, alias) = {
                    let mut rest = mask;
                    loop {
                        assert!(rest != 0, "cached predecessor exists");
                        let bit = rest & rest.wrapping_neg();
                        let candidate = mask & !bit;
                        if cache.contains_key(&candidate) {
                            break (candidate, bit.trailing_zeros() as usize);
                        }
                        rest &= rest - 1;
                    }
                };
                let keep = keep_for_mask(&graph, mask);
                let j = cache[&rest].join(base[alias].as_ref().unwrap(), &keep);
                out.push((mask, j.rows));
                cache.insert(mask, j);
            }
        }
        out.retain(|(m, _)| m.count_ones() >= min_size);
        out
    }

    /// Lazy scaling and arena caching never change the progressive
    /// estimates: every sub-plan of a generated STATS-CEB workload gets the
    /// same bound (≤ 1e-9 relative) as the eager reference implementation.
    #[test]
    fn flat_subplan_estimates_match_reference_on_workload() {
        let cat = tiny_catalog();
        let model = FactorJoinModel::train(&cat, truescan_config(25));
        let wl = stats_ceb_workload(&cat, &WorkloadConfig::tiny(7));
        let mut session = model.subplan_estimator();
        for q in &wl {
            let flat = session.estimate_subplans(q, 1);
            let reference = ref_estimate_subplans(&model, q, 1);
            assert_eq!(flat.len(), reference.len());
            for ((m1, e1), (m2, e2)) in flat.iter().zip(&reference) {
                assert_eq!(m1, m2, "mask order");
                let tol = 1e-9 * e1.abs().max(e2.abs()).max(1.0);
                assert!(
                    (e1 - e2).abs() <= tol,
                    "mask {m1:b}: flat {e1} vs reference {e2}"
                );
            }
        }
    }

    /// The scratch-reuse contract: once warmed on a workload, re-running
    /// the same workload performs zero buffer growths — i.e. the per-mask
    /// join path allocates nothing.
    #[test]
    fn warm_session_does_not_allocate() {
        let cat = tiny_catalog();
        let model = FactorJoinModel::train(&cat, truescan_config(30));
        let wl = stats_ceb_workload(&cat, &WorkloadConfig::tiny(4));
        let mut session = model.subplan_estimator();
        for q in &wl {
            session.estimate_subplans(q, 1);
        }
        let warm = session.grow_events();
        for _ in 0..3 {
            for q in &wl {
                session.estimate_subplans(q, 1);
            }
        }
        assert_eq!(
            session.grow_events(),
            warm,
            "estimation buffers grew on a warm session"
        );
    }

    /// The reusable-session path returns exactly what the allocate-per-call
    /// path returns.
    #[test]
    fn session_matches_one_shot_estimates() {
        let cat = tiny_catalog();
        let model = FactorJoinModel::train(&cat, truescan_config(20));
        let wl = stats_ceb_workload(&cat, &WorkloadConfig::tiny(2));
        let mut session = model.subplan_estimator();
        for q in &wl {
            assert_eq!(
                session.estimate_subplans(q, 2),
                model.estimate_subplans(q, 2)
            );
        }
    }
}
