//! # factorjoin — cardinality estimation for join queries
//!
//! A from-scratch Rust implementation of **FactorJoin** (Wu et al., SIGMOD
//! 2023): a framework that estimates the cardinality of arbitrary equi-join
//! queries — chain, star, self, and cyclic joins with complex base-table
//! filters — using **only single-table statistics**.
//!
//! ## How it works
//!
//! *Offline* ([`FactorJoinModel::train`]):
//! 1. derive the *equivalent key groups* from the schema's join relations;
//! 2. partition each group's key domain into `k` bins with the greedy bin
//!    selection algorithm ([`binning::BinningStrategy::Gbsa`], paper §4.2),
//!    optionally splitting a global bin budget across groups by workload
//!    frequency;
//! 3. record each join key's per-bin **total** and **most-frequent-value
//!    (MFV)** counts ([`keystats::KeyStats`]);
//! 4. train a single-table estimator per table (Bayesian network, sampling,
//!    or exact scan — `fj-stats`).
//!
//! *Online* ([`FactorJoinModel::estimate`] /
//! [`FactorJoinModel::estimate_subplans`]):
//! translate the query into a factor graph whose variables are the query's
//! equivalent key groups and whose factors carry each table's *conditional*
//! binned key distributions, then run bound-preserving variable elimination
//! (paper Eq. 5 and Appendix A.3): eliminating a variable combines the
//! adjacent factors per bin as `min_f(d_f[i]/V*_f[i]) · Π_f V*_f[i]`,
//! yielding a **probabilistic upper bound** on the cardinality. Sub-plan
//! estimates reuse cached joined factors (paper §5.2), so all sub-plans of
//! a query cost barely more than the query itself.
//!
//! ## Quick example
//!
//! ```no_run
//! use factorjoin::{FactorJoinConfig, FactorJoinModel};
//! # fn get_catalog() -> fj_storage::Catalog { unimplemented!() }
//! # fn get_query(c: &fj_storage::Catalog) -> fj_query::Query { unimplemented!() }
//! let catalog = get_catalog();
//! let model = FactorJoinModel::train(&catalog, FactorJoinConfig::default());
//! let query = get_query(&catalog);
//! let bound = model.estimate(&query);
//! println!("estimated cardinality ≤ {bound}");
//! ```

#![warn(missing_docs)]

pub mod binning;
pub mod factor;
pub mod freq;
pub mod keystats;
pub mod model;
pub mod persist;

pub use binning::{build_group_bins, BinBudget, BinningStrategy};
pub use factor::{Factor, FactorArena, FactorId, JoinScratch, KeepVars, MAX_VARS};
pub use freq::KeyFreq;
pub use keystats::KeyStats;
pub use model::{
    keep_for_mask, BaseEstimatorKind, EstimationScratch, FactorJoinConfig, FactorJoinModel,
    ModelDelta, SubplanEstimator, TrainingReport,
};
pub use persist::binary::{save_model_binary, PersistError};
pub use persist::{load_model, load_saved, save_model, save_model_json, SavedModel};
