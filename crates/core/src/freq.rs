//! Flat open-addressing frequency counter for join-key values.
//!
//! Key-frequency profiling is the inner loop of offline training: one
//! counter bump per non-null row of every join-key column. The std
//! `HashMap` pays SipHash plus bucket indirection per bump; this map is the
//! training-side sibling of the estimation path's flat factor slabs (PR 2):
//! two parallel flat arrays (`keys`, `counts`), a multiply-rotate hash, and
//! linear probing. A count of zero marks an empty slot, which the public
//! API preserves by never storing zero counts.
//!
//! `fj_stats::KeyBinMap` carries a sibling slab specialized for i64→bin
//! lookups (different sentinel and hash-bit split; fj-stats cannot depend
//! on this crate) — a probe/grow fix here likely applies there too.
//!
//! Iteration order is slot order — arbitrary but **deterministic**: it
//! depends only on the sequence of inserts, never on pointer addresses or
//! per-process seeds. Serial and parallel training build each key's map
//! with the identical insert sequence, which is one of the pillars of the
//! bit-identical parallel build (see `crates/core/tests/parallel_train.rs`).

/// Value → occurrence-count map over `i64` join keys (see module docs).
#[derive(Debug, Clone, Default)]
pub struct KeyFreq {
    /// Slot keys; meaningful only where `counts` is non-zero.
    keys: Vec<i64>,
    /// Slot counts; `0` = empty slot (real entries are always ≥ 1).
    counts: Vec<u64>,
    /// Number of occupied slots.
    len: usize,
}

impl KeyFreq {
    /// An empty map (allocates nothing until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts every non-null key of `column` — the shared profiling loop
    /// of model training (wave 1), per-key statistics, and the JoinHist
    /// baseline.
    pub fn count_column(column: &fj_storage::Column) -> Self {
        let mut f = Self::default();
        for r in 0..column.len() {
            if let Some(v) = column.key_at(r) {
                f.add(v, 1);
            }
        }
        f
    }

    /// An empty map pre-sized for about `n` distinct values.
    pub fn with_capacity(n: usize) -> Self {
        let mut f = Self::default();
        if n > 0 {
            f.grow_to((n * 8 / 7 + 1).next_power_of_two().max(8));
        }
        f
    }

    /// Number of distinct values recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no values have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The count of `value` (0 when absent).
    #[inline]
    pub fn get(&self, value: i64) -> u64 {
        if self.counts.is_empty() {
            return 0;
        }
        let mask = self.keys.len() - 1;
        let mut slot = (hash(value) as usize) & mask;
        loop {
            let c = self.counts[slot];
            if c == 0 {
                return 0;
            }
            if self.keys[slot] == value {
                return c;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Adds `delta` occurrences of `value`, returning the new count.
    #[inline]
    pub fn add(&mut self, value: i64, delta: u64) -> u64 {
        if delta == 0 {
            return self.get(value);
        }
        if self.counts.is_empty() || self.len * 8 >= self.keys.len() * 7 {
            self.grow_to((self.keys.len() * 2).max(8));
        }
        let mask = self.keys.len() - 1;
        let mut slot = (hash(value) as usize) & mask;
        loop {
            let c = self.counts[slot];
            if c == 0 {
                self.keys[slot] = value;
                self.counts[slot] = delta;
                self.len += 1;
                return delta;
            }
            if self.keys[slot] == value {
                self.counts[slot] = c + delta;
                return c + delta;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Records the count of a not-yet-seen `value` outright (persistence
    /// restore path; zero counts are dropped, they mean "absent").
    pub fn set(&mut self, value: i64, count: u64) {
        if count == 0 {
            return;
        }
        debug_assert_eq!(self.get(value), 0, "set expects a fresh value");
        self.add(value, count);
    }

    /// Iterates over `(value, count)` pairs in slot order (deterministic
    /// for a given insert sequence; see module docs).
    pub fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.keys
            .iter()
            .zip(&self.counts)
            .filter(|&(_, &c)| c > 0)
            .map(|(&v, &c)| (v, c))
    }

    /// All `(value, count)` pairs sorted by value (canonical order for
    /// persistence and differential tests).
    pub fn sorted_entries(&self) -> Vec<(i64, u64)> {
        let mut out: Vec<(i64, u64)> = self.iter().collect();
        out.sort_unstable();
        out
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.keys.len() * 8 + self.counts.len() * 8
    }

    /// The raw open-addressing slabs as `(keys, counts, len)` — written
    /// verbatim by the binary persistence format so load is a bulk copy.
    pub fn raw_parts(&self) -> (&[i64], &[u64], usize) {
        (&self.keys, &self.counts, self.len)
    }

    /// Rebuilds a map from raw slabs (inverse of [`Self::raw_parts`]),
    /// validating the invariants the probing code relies on — same
    /// discipline as `fj_stats::KeyBinMap::from_raw_parts`: equal-length
    /// power-of-two slabs, `len` matching the occupied (non-zero-count)
    /// slots, and occupancy within the `7/8` growth bound so probe loops
    /// terminate. Slot placement is trusted (the writer used the identical
    /// hash); integrity against corruption is the caller's CRC.
    pub fn from_raw_parts(keys: Vec<i64>, counts: Vec<u64>, len: usize) -> Result<Self, String> {
        if keys.len() != counts.len() {
            return Err(format!(
                "slab length mismatch: {} keys vs {} counts",
                keys.len(),
                counts.len()
            ));
        }
        let cap = keys.len();
        if cap != 0 && !cap.is_power_of_two() {
            return Err(format!("slab capacity {cap} is not a power of two"));
        }
        let occupied = counts.iter().filter(|&&c| c > 0).count();
        if occupied != len {
            return Err(format!("{occupied} occupied slots but len says {len}"));
        }
        if cap != 0 && len * 8 > cap * 7 {
            return Err(format!(
                "over-full table: {len} entries in {cap} slots breaks probe termination"
            ));
        }
        Ok(KeyFreq { keys, counts, len })
    }

    fn grow_to(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two());
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_counts = std::mem::replace(&mut self.counts, vec![0; cap]);
        let mask = cap - 1;
        for (k, c) in old_keys.into_iter().zip(old_counts) {
            if c == 0 {
                continue;
            }
            let mut slot = (hash(k) as usize) & mask;
            while self.counts[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = k;
            self.counts[slot] = c;
        }
    }
}

/// Fibonacci-style multiply-rotate mix — same family as the `KeyBinMap`
/// fallback hash; one multiply and a rotate, no per-process seed.
#[inline]
fn hash(v: i64) -> u64 {
    (v as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(23)
}

impl FromIterator<(i64, u64)> for KeyFreq {
    fn from_iter<T: IntoIterator<Item = (i64, u64)>>(iter: T) -> Self {
        let mut f = KeyFreq::new();
        for (v, c) in iter {
            f.add(v, c);
        }
        f
    }
}

impl PartialEq for KeyFreq {
    /// Set equality: same value→count pairs, regardless of slot layout.
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|(v, c)| other.get(v) == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_len() {
        let mut f = KeyFreq::new();
        assert_eq!(f.get(5), 0);
        assert!(f.is_empty());
        assert_eq!(f.add(5, 1), 1);
        assert_eq!(f.add(5, 2), 3);
        assert_eq!(f.add(-9, 1), 1);
        assert_eq!(f.get(5), 3);
        assert_eq!(f.get(-9), 1);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn grows_past_many_distinct_values() {
        let mut f = KeyFreq::new();
        for v in 0..10_000i64 {
            f.add(v * 31, (v % 7 + 1) as u64);
        }
        assert_eq!(f.len(), 10_000);
        for v in 0..10_000i64 {
            assert_eq!(f.get(v * 31), (v % 7 + 1) as u64, "value {v}");
        }
        assert_eq!(f.get(1), 0);
    }

    #[test]
    fn iter_covers_all_entries_and_sorted_is_canonical() {
        let f: KeyFreq = [(3, 1u64), (-7, 4), (100, 2)].into_iter().collect();
        let mut seen: Vec<(i64, u64)> = f.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(-7, 4), (3, 1), (100, 2)]);
        assert_eq!(f.sorted_entries(), seen);
    }

    #[test]
    fn set_restores_counts() {
        let mut f = KeyFreq::new();
        f.set(42, 17);
        f.set(43, 1);
        f.set(44, 0); // no-op
        assert_eq!(f.get(42), 17);
        assert_eq!(f.get(44), 0);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn equality_is_layout_independent() {
        // Same entries, inserted in different orders (→ different slot
        // layouts after growth), still compare equal.
        let a: KeyFreq = (0..1000).map(|v| (v, (v % 5 + 1) as u64)).collect();
        let b: KeyFreq = (0..1000).rev().map(|v| (v, (v % 5 + 1) as u64)).collect();
        assert_eq!(a, b);
        let mut c = b.clone();
        c.add(5000, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn iteration_is_deterministic_for_a_given_insert_sequence() {
        let build = || {
            let mut f = KeyFreq::new();
            for v in 0..500i64 {
                f.add((v * 9173) % 613, 1);
            }
            f
        };
        let a: Vec<(i64, u64)> = build().iter().collect();
        let b: Vec<(i64, u64)> = build().iter().collect();
        assert_eq!(a, b, "same insert sequence must give same slot order");
    }

    #[test]
    fn extreme_keys() {
        let mut f = KeyFreq::new();
        f.add(i64::MAX, 1);
        f.add(i64::MIN, 2);
        f.add(0, 3);
        assert_eq!(f.get(i64::MAX), 1);
        assert_eq!(f.get(i64::MIN), 2);
        assert_eq!(f.get(0), 3);
    }

    #[test]
    fn raw_parts_roundtrip_is_slab_identical() {
        let mut f = KeyFreq::new();
        for v in 0..2000i64 {
            f.add((v * 7919) % 997, 1 + (v % 13) as u64);
        }
        let (keys, counts, len) = f.raw_parts();
        let back = KeyFreq::from_raw_parts(keys.to_vec(), counts.to_vec(), len).unwrap();
        assert_eq!(back, f);
        let (k2, c2, l2) = back.raw_parts();
        assert_eq!((k2, c2, l2), (keys, counts, len), "slabs copied verbatim");
    }

    #[test]
    fn from_raw_parts_rejects_invalid_slabs() {
        assert!(KeyFreq::from_raw_parts(vec![0; 8], vec![0; 4], 0).is_err());
        assert!(KeyFreq::from_raw_parts(vec![0; 6], vec![0; 6], 0).is_err());
        assert!(KeyFreq::from_raw_parts(vec![0; 8], vec![0; 8], 2).is_err());
        assert!(KeyFreq::from_raw_parts(vec![0; 8], vec![1; 8], 8).is_err());
        let empty = KeyFreq::from_raw_parts(vec![], vec![], 0).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn with_capacity_avoids_regrowth() {
        let mut f = KeyFreq::with_capacity(100);
        let bytes = f.heap_bytes();
        for v in 0..100 {
            f.add(v, 1);
        }
        assert_eq!(f.heap_bytes(), bytes, "pre-sized map must not regrow");
    }
}
