//! Bin selection for equivalent key groups (paper §4.2, Algorithm 2).
//!
//! A bin set partitions the *value set* of one equivalent key group. Bound
//! tightness hinges on within-bin count variance: if every value in a bin
//! occurs equally often on every member key, the MFV bound is exact. GBSA
//! greedily minimizes that variance across all member keys; equal-width and
//! equal-depth binning are provided for the Table 6 ablation.

use fj_stats::KeyBinMap;
use std::collections::HashMap;

pub use crate::freq::KeyFreq;

/// Binning strategies evaluated in paper Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinningStrategy {
    /// Greedy Bin Selection Algorithm — minimizes within-bin count variance
    /// across all member keys (the paper's contribution).
    Gbsa,
    /// Equal-width ranges over the value domain.
    EqualWidth,
    /// Equal-depth (equal total frequency mass) over the sorted domain.
    EqualDepth,
}

/// Per-group bin budget: either a uniform `k` per group or a global budget
/// split proportionally to workload join-pattern frequencies (paper §4.2,
/// "Deciding k based on query workloads").
#[derive(Debug, Clone)]
pub enum BinBudget {
    /// Every group gets the same number of bins.
    Uniform(usize),
    /// A total budget `total` split as `k_i = total · n_i / Σ n_j` given
    /// per-group workload weights `n_i` (missing groups weigh 1).
    Workload {
        /// Total bins across all groups.
        total: usize,
        /// group id → frequency weight.
        weights: HashMap<usize, f64>,
    },
}

impl BinBudget {
    /// Bins for group `gid` of `num_groups`.
    pub fn bins_for(&self, gid: usize, num_groups: usize) -> usize {
        match self {
            BinBudget::Uniform(k) => (*k).max(1),
            BinBudget::Workload { total, weights } => {
                let w = |g: usize| weights.get(&g).copied().unwrap_or(1.0).max(1e-9);
                let sum: f64 = (0..num_groups).map(w).sum();
                (((*total as f64) * w(gid) / sum).round() as usize).max(1)
            }
        }
    }
}

/// Builds the value→bin map for one key group from its member keys'
/// frequency maps. `freqs` must be non-empty; `k` is clamped to the number
/// of distinct values.
pub fn build_group_bins(freqs: &[&KeyFreq], k: usize, strategy: BinningStrategy) -> KeyBinMap {
    assert!(!freqs.is_empty(), "a key group has at least one member");
    // The group domain is the union of member domains.
    let mut domain: Vec<i64> = freqs
        .iter()
        .flat_map(|f| f.iter().map(|(v, _)| v))
        .collect::<std::collections::HashSet<i64>>()
        .into_iter()
        .collect();
    domain.sort_unstable();
    if domain.is_empty() {
        return KeyBinMap::single_bin();
    }
    let k = k.clamp(1, domain.len());
    let assign = match strategy {
        BinningStrategy::EqualWidth => equal_width(&domain, k),
        BinningStrategy::EqualDepth => equal_depth(&domain, freqs, k),
        BinningStrategy::Gbsa => gbsa(&domain, freqs, k),
    };
    KeyBinMap::new(k, assign)
}

fn equal_width(domain: &[i64], k: usize) -> HashMap<i64, u32> {
    let (lo, hi) = (domain[0], *domain.last().expect("non-empty"));
    let width = ((hi - lo) as f64 + 1.0) / k as f64;
    domain
        .iter()
        .map(|&v| {
            let b = (((v - lo) as f64) / width).floor() as usize;
            (v, b.min(k - 1) as u32)
        })
        .collect()
}

fn equal_depth(domain: &[i64], freqs: &[&KeyFreq], k: usize) -> HashMap<i64, u32> {
    let total_count = |v: i64| -> u64 { freqs.iter().map(|f| f.get(v)).sum() };
    let total: u64 = domain.iter().map(|&v| total_count(v)).sum();
    let per = (total as f64 / k as f64).max(1.0);
    let mut out = HashMap::with_capacity(domain.len());
    let mut acc = 0f64;
    let mut bin = 0u32;
    for &v in domain {
        out.insert(v, bin);
        acc += total_count(v) as f64;
        if acc >= per * (bin as f64 + 1.0) && (bin as usize) < k - 1 {
            bin += 1;
        }
    }
    out
}

/// Greedy Bin Selection Algorithm (paper Algorithm 2).
///
/// 1. Sort member keys by domain size (descending — the widest key, usually
///    the PK side, seeds the bins).
/// 2. Spend half the budget on minimum-variance bins for the first key:
///    sort values by that key's count and cut into equal-population chunks,
///    so each bin holds values of similar frequency.
/// 3. For each remaining key: apply the current bins, rank bins by that
///    key's within-bin count variance, and dichotomize the worst
///    `remaining/2` bins by that key's counts; halve the remaining budget.
fn gbsa(domain: &[i64], freqs: &[&KeyFreq], k: usize) -> HashMap<i64, u32> {
    // Order member keys by descending domain size.
    let mut order: Vec<usize> = (0..freqs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(freqs[i].len()));

    // Bins as vectors of values.
    let mut bins: Vec<Vec<i64>>;
    let first = freqs[order[0]];
    let k_init = if freqs.len() == 1 { k } else { (k / 2).max(1) };
    bins = min_variance_bins(domain, first, k_init);
    let mut remaining = k.saturating_sub(bins.len());

    for &j in order.iter().skip(1) {
        if remaining == 0 {
            break;
        }
        let fj = freqs[j];
        // Rank current bins by their variance under key j.
        let mut ranked: Vec<(f64, usize)> = bins
            .iter()
            .enumerate()
            .filter(|(_, b)| b.len() > 1)
            .map(|(i, b)| (count_variance(b, fj), i))
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("variance is finite"));
        let splits = (remaining / 2).max(1).min(ranked.len()).min(remaining);
        // Collect indices first: splitting appends new bins at the end.
        let targets: Vec<usize> = ranked.iter().take(splits).map(|&(_, i)| i).collect();
        let mut used = 0;
        for i in targets {
            if let Some((a, b)) = min_variance_dichotomy(&bins[i], fj) {
                bins[i] = a;
                bins.push(b);
                used += 1;
            }
        }
        remaining -= used;
    }

    // While budget remains (e.g. duplicate-free groups), split the largest
    // bins by the first key's counts.
    while remaining > 0 {
        let (idx, _) = match bins
            .iter()
            .enumerate()
            .filter(|(_, b)| b.len() > 1)
            .max_by_key(|(_, b)| b.len())
        {
            Some((i, b)) => (i, b.len()),
            None => break,
        };
        match min_variance_dichotomy(&bins[idx], first) {
            Some((a, b)) => {
                bins[idx] = a;
                bins.push(b);
                remaining -= 1;
            }
            None => break,
        }
    }

    let mut out = HashMap::with_capacity(domain.len());
    for (bi, b) in bins.iter().enumerate() {
        for &v in b {
            out.insert(v, bi as u32);
        }
    }
    out
}

/// Minimum-variance binning of a single key: sort values by count and cut
/// into `k` equal-population chunks (similar counts share a bin).
fn min_variance_bins(domain: &[i64], freq: &KeyFreq, k: usize) -> Vec<Vec<i64>> {
    let mut by_count: Vec<i64> = domain.to_vec();
    by_count.sort_by_key(|&v| (freq.get(v), v));
    let k = k.clamp(1, by_count.len());
    let per = by_count.len().div_ceil(k);
    by_count.chunks(per).map(|c| c.to_vec()).collect()
}

/// Variance of key counts within a bin.
fn count_variance(bin: &[i64], freq: &KeyFreq) -> f64 {
    if bin.len() < 2 {
        return 0.0;
    }
    let counts: Vec<f64> = bin.iter().map(|&v| freq.get(v) as f64).collect();
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<f64>() / n;
    counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n
}

/// Splits a bin into two halves of the count-sorted order (minimizing the
/// larger half's variance under `freq`). Returns `None` for unsplittable
/// singleton bins.
fn min_variance_dichotomy(bin: &[i64], freq: &KeyFreq) -> Option<(Vec<i64>, Vec<i64>)> {
    if bin.len() < 2 {
        return None;
    }
    let mut sorted: Vec<i64> = bin.to_vec();
    sorted.sort_by_key(|&v| (freq.get(v), v));
    let mid = sorted.len() / 2;
    let right = sorted.split_off(mid);
    Some((sorted, right))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freq(pairs: &[(i64, u64)]) -> KeyFreq {
        pairs.iter().copied().collect()
    }

    fn bins_of(map: &KeyBinMap, domain: &[i64]) -> Vec<Vec<i64>> {
        let mut out = vec![Vec::new(); map.k()];
        for &v in domain {
            out[map.bin_of(v)].push(v);
        }
        out
    }

    #[test]
    fn every_value_gets_exactly_one_bin() {
        let f = freq(&[(1, 10), (2, 1), (3, 100), (4, 1), (5, 50), (6, 2)]);
        for strat in [
            BinningStrategy::Gbsa,
            BinningStrategy::EqualWidth,
            BinningStrategy::EqualDepth,
        ] {
            let map = build_group_bins(&[&f], 3, strat);
            assert_eq!(map.k(), 3, "{strat:?}");
            let bins = bins_of(&map, &[1, 2, 3, 4, 5, 6]);
            let total: usize = bins.iter().map(Vec::len).sum();
            assert_eq!(total, 6, "{strat:?}: partition covers the domain");
        }
    }

    #[test]
    fn equal_width_splits_ranges() {
        let f = freq(&[(0, 1), (5, 1), (10, 1), (15, 1), (20, 1), (29, 1)]);
        let map = build_group_bins(&[&f], 3, BinningStrategy::EqualWidth);
        assert_eq!(map.bin_of(0), 0);
        assert_eq!(map.bin_of(5), 0);
        assert_eq!(map.bin_of(10), 1);
        assert_eq!(map.bin_of(29), 2);
    }

    #[test]
    fn equal_depth_balances_mass() {
        // Value 1 carries 90% of the mass → it gets a bin almost alone.
        let f = freq(&[(1, 900), (2, 25), (3, 25), (4, 25), (5, 25)]);
        let map = build_group_bins(&[&f], 2, BinningStrategy::EqualDepth);
        let b1 = map.bin_of(1);
        assert!(
            [2, 3, 4, 5].iter().all(|&v| map.bin_of(v) != b1),
            "heavy value should be isolated"
        );
    }

    #[test]
    fn gbsa_groups_similar_counts() {
        // Counts: {1,2}:100, {3,4}:10, {5,6}:1 — GBSA with k=3 should
        // recover exactly these groups (zero within-bin variance).
        let f = freq(&[(1, 100), (2, 100), (3, 10), (4, 10), (5, 1), (6, 1)]);
        let map = build_group_bins(&[&f], 3, BinningStrategy::Gbsa);
        assert_eq!(map.bin_of(1), map.bin_of(2));
        assert_eq!(map.bin_of(3), map.bin_of(4));
        assert_eq!(map.bin_of(5), map.bin_of(6));
        assert_ne!(map.bin_of(1), map.bin_of(3));
        assert_ne!(map.bin_of(3), map.bin_of(5));
    }

    #[test]
    fn gbsa_refines_for_second_key() {
        // Key A (PK): every value count 1 → any binning has zero variance.
        // Key B (FK): values 1..8, counts 1,1,1,1,100,100,100,100.
        // GBSA must separate the heavy B values from the light ones.
        let a: KeyFreq = (1..=8).map(|v| (v, 1u64)).collect();
        let b = freq(&[
            (1, 1),
            (2, 1),
            (3, 1),
            (4, 1),
            (5, 100),
            (6, 100),
            (7, 100),
            (8, 100),
        ]);
        let map = build_group_bins(&[&a, &b], 4, BinningStrategy::Gbsa);
        // No bin mixes a count-1 and a count-100 value of B.
        let bins = bins_of(&map, &[1, 2, 3, 4, 5, 6, 7, 8]);
        for bin in bins.iter().filter(|bn| !bn.is_empty()) {
            let heavy = bin.iter().filter(|&&v| b.get(v) >= 100).count();
            assert!(
                heavy == 0 || heavy == bin.len(),
                "bin {bin:?} mixes heavy and light B values"
            );
        }
    }

    #[test]
    fn gbsa_variance_beats_equal_width_on_skew() {
        // Zipf-ish counts over an interleaved domain: equal-width mixes
        // heavy and light values; GBSA should achieve lower total variance.
        let f: KeyFreq = (0..200)
            .map(|v| {
                (
                    v,
                    if v % 10 == 0 {
                        1000u64
                    } else {
                        (v % 7 + 1) as u64
                    },
                )
            })
            .collect();
        let domain: Vec<i64> = (0..200).collect();
        let var_of = |map: &KeyBinMap| -> f64 {
            bins_of(map, &domain)
                .iter()
                .filter(|b| !b.is_empty())
                .map(|b| count_variance(b, &f))
                .sum()
        };
        let gb = build_group_bins(&[&f], 20, BinningStrategy::Gbsa);
        let ew = build_group_bins(&[&f], 20, BinningStrategy::EqualWidth);
        assert!(
            var_of(&gb) < var_of(&ew) / 10.0,
            "gbsa {} vs equal-width {}",
            var_of(&gb),
            var_of(&ew)
        );
    }

    #[test]
    fn k_clamps_to_domain_size() {
        let f = freq(&[(1, 5), (2, 5)]);
        let map = build_group_bins(&[&f], 100, BinningStrategy::Gbsa);
        assert!(map.k() <= 2);
    }

    #[test]
    fn single_bin_budget() {
        let f = freq(&[(1, 5), (2, 7), (3, 2)]);
        let map = build_group_bins(&[&f], 1, BinningStrategy::Gbsa);
        assert_eq!(map.k(), 1);
        assert_eq!(map.bin_of(1), 0);
        assert_eq!(map.bin_of(3), 0);
    }

    #[test]
    fn budget_split_by_workload() {
        let weights: HashMap<usize, f64> = [(0, 3.0), (1, 1.0)].into_iter().collect();
        let b = BinBudget::Workload {
            total: 200,
            weights,
        };
        assert_eq!(b.bins_for(0, 2), 150);
        assert_eq!(b.bins_for(1, 2), 50);
        let u = BinBudget::Uniform(42);
        assert_eq!(u.bins_for(0, 5), 42);
        assert_eq!(u.bins_for(4, 5), 42);
    }

    #[test]
    fn multi_member_union_domain() {
        let a = freq(&[(1, 1), (2, 1)]);
        let b = freq(&[(2, 5), (3, 5)]);
        let map = build_group_bins(&[&a, &b], 2, BinningStrategy::EqualDepth);
        // All of 1, 2, 3 are assigned.
        for v in [1, 2, 3] {
            assert!(map.bin_of(v) < 2);
        }
    }

    #[test]
    fn bins_partition_domain_for_all_strategies_and_budgets() {
        // Skewed frequency map: every domain value must land in exactly one
        // bin below k, for every strategy and a sweep of budgets.
        let f: KeyFreq = (0..97).map(|v| (v * 3, (1 + v % 13) as u64 * 7)).collect();
        let domain: Vec<i64> = f.iter().map(|(v, _)| v).collect();
        for strat in [
            BinningStrategy::Gbsa,
            BinningStrategy::EqualWidth,
            BinningStrategy::EqualDepth,
        ] {
            for k in [1usize, 2, 5, 13, 64, 500] {
                let map = build_group_bins(&[&f], k, strat);
                assert!(map.k() <= k.max(1), "{strat:?} k={k}: produced {}", map.k());
                assert!(
                    map.k() <= domain.len(),
                    "{strat:?} k={k}: more bins than values"
                );
                let mut per_bin = vec![0usize; map.k()];
                for &v in &domain {
                    let b = map.bin_of(v);
                    assert!(
                        b < map.k(),
                        "{strat:?} k={k}: value {v} → bin {b} out of range"
                    );
                    per_bin[b] += 1;
                }
                let assigned: usize = per_bin.iter().sum();
                assert_eq!(
                    assigned,
                    domain.len(),
                    "{strat:?} k={k}: partition covers domain"
                );
            }
        }
    }

    #[test]
    fn bin_counts_sum_to_table_cardinality() {
        use crate::keystats::KeyStats;
        // Per-bin totals under any binning must sum to the column's non-null
        // cardinality: bins partition values, so no row is lost or counted
        // twice.
        let f: KeyFreq = (0..60)
            .map(|v| {
                (
                    v,
                    if v % 9 == 0 {
                        500u64
                    } else {
                        (v % 5 + 1) as u64
                    },
                )
            })
            .collect();
        let cardinality: u64 = f.iter().map(|(_, c)| c).sum();
        for strat in [
            BinningStrategy::Gbsa,
            BinningStrategy::EqualWidth,
            BinningStrategy::EqualDepth,
        ] {
            for k in [1usize, 4, 16, 60] {
                let map = build_group_bins(&[&f], k, strat);
                let stats = KeyStats::from_freq(f.clone(), &map);
                assert_eq!(
                    stats.total(),
                    cardinality as f64,
                    "{strat:?} k={k}: per-bin totals must sum to the cardinality"
                );
                // MFV dominates the mean but never exceeds the bin total.
                for b in 0..map.k() {
                    assert!(
                        stats.bin_mfv[b] <= stats.bin_total[b],
                        "{strat:?} k={k} bin {b}"
                    );
                    assert!(
                        stats.bin_ndv[b] == 0.0 || stats.bin_mfv[b] >= 1.0,
                        "{strat:?} k={k} bin {b}: non-empty bin needs an MFV"
                    );
                }
            }
        }
    }

    #[test]
    fn workload_budget_floors_at_one_bin() {
        // Zero/missing weights must still yield at least one bin per group,
        // and heavily-weighted groups get proportionally more.
        let weights: HashMap<usize, f64> = [(0, 0.0), (1, 1000.0)].into_iter().collect();
        let b = BinBudget::Workload {
            total: 100,
            weights,
        };
        assert!(b.bins_for(0, 3) >= 1, "zero-weight group still binned");
        assert!(b.bins_for(2, 3) >= 1, "missing-weight group still binned");
        assert!(
            b.bins_for(1, 3) > b.bins_for(2, 3),
            "weighting is proportional"
        );
        let tiny = BinBudget::Workload {
            total: 1,
            weights: HashMap::new(),
        };
        for g in 0..4 {
            assert_eq!(tiny.bins_for(g, 4).max(1), tiny.bins_for(g, 4));
        }
        assert_eq!(
            BinBudget::Uniform(0).bins_for(0, 1),
            1,
            "uniform budget floors at 1"
        );
    }
}
