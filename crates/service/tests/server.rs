//! Integration suite for the network serving tier: bit-identical TCP
//! estimates, multiplexed pipelining, hot-swap epoch detection, and
//! deterministic admission-control rejections (the acceptance criteria of
//! the fj-server tentpole).

use factorjoin::{BaseEstimatorKind, BinBudget, FactorJoinConfig, FactorJoinModel};
use fj_datagen::{stats_catalog, stats_ceb_workload, StatsConfig, WorkloadConfig};
use fj_query::Query;
use fj_service::{
    BatchOutcome, FjClient, FjServer, ModelRegistry, RejectReason, ServerConfig, ShardSpec,
};
use fj_storage::Catalog;
use std::sync::Arc;

fn tiny_catalog() -> Catalog {
    stats_catalog(&StatsConfig {
        scale: 0.03,
        ..Default::default()
    })
}

fn train(catalog: &Catalog, k: usize) -> FactorJoinModel {
    FactorJoinModel::train(
        catalog,
        FactorJoinConfig {
            bin_budget: BinBudget::Uniform(k),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        },
    )
}

fn workload(catalog: &Catalog, seed: u64) -> Vec<Query> {
    stats_ceb_workload(catalog, &WorkloadConfig::tiny(seed))
}

fn expected_bits(
    model: &FactorJoinModel,
    queries: &[Query],
    min_size: u32,
) -> Vec<Vec<(u64, u64)>> {
    queries
        .iter()
        .map(|q| {
            model
                .estimate_subplans(q, min_size)
                .into_iter()
                .map(|(m, e)| (m, e.to_bits()))
                .collect()
        })
        .collect()
}

fn to_bits(estimates: &[(u64, f64)]) -> Vec<(u64, u64)> {
    estimates.iter().map(|&(m, e)| (m, e.to_bits())).collect()
}

fn serve_one(
    model: Arc<FactorJoinModel>,
    config: ServerConfig,
) -> (FjServer, std::net::SocketAddr) {
    let server = FjServer::bind("127.0.0.1:0", vec![ShardSpec::new("stats", model)], config)
        .expect("bind loopback");
    let addr = server.local_addr();
    (server, addr)
}

/// The headline acceptance criterion: a client connects over TCP, submits
/// a multi-query batch, and gets epoch-tagged estimates **bit-identical**
/// to the in-process `estimate_subplans` path.
#[test]
fn tcp_estimates_bit_identical_to_in_process() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 25));
    let queries = workload(&catalog, 11);
    let expected = expected_bits(&model, &queries, 1);

    let (server, addr) = serve_one(Arc::clone(&model), ServerConfig::new(2));
    let epoch = server
        .registry("stats")
        .unwrap()
        .get("stats")
        .unwrap()
        .epoch;

    let mut client = FjClient::connect(addr).expect("connect");
    assert_eq!(client.datasets(), ["stats".to_string()]);

    let outcome = client.call("stats", 1, &queries).expect("roundtrip");
    let BatchOutcome::Served(results) = outcome else {
        panic!("batch was rejected: {outcome:?}");
    };
    assert_eq!(results.len(), queries.len());
    for (qi, result) in results.iter().enumerate() {
        let est = result.as_ref().expect("query served");
        assert_eq!(
            est.model_epoch, epoch,
            "query {qi} tagged with the serving epoch"
        );
        assert_eq!(
            to_bits(&est.estimates),
            expected[qi],
            "query {qi}: TCP estimates diverge from in-process bits"
        );
    }

    // min_size crosses the wire too.
    let outcome = client.call("stats", 2, &queries[..1]).expect("roundtrip");
    let BatchOutcome::Served(results) = outcome else {
        panic!("min_size batch rejected: {outcome:?}");
    };
    let est = results[0].as_ref().expect("served");
    assert_eq!(
        to_bits(&est.estimates),
        expected_bits(&model, &queries[..1], 2)[0]
    );
    assert!(est.estimates.iter().all(|(m, _)| m.count_ones() >= 2));

    // An empty batch resolves immediately instead of dangling forever.
    let outcome = client.call("stats", 1, &[]).expect("roundtrip");
    assert_eq!(outcome, BatchOutcome::Served(vec![]));

    let snap = server.stats("stats").expect("shard stats");
    assert_eq!(snap.requests as usize, queries.len() + 1);
    assert_eq!(snap.errors, 0);
    server.shutdown();
}

/// Multiplexing: many pipelined requests on one connection, collected in
/// reverse submission order, each routed to the right request id.
#[test]
fn pipelined_requests_multiplex_out_of_order() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 20));
    let queries = workload(&catalog, 13);
    let expected = expected_bits(&model, &queries, 1);

    let (_server, addr) = serve_one(model, ServerConfig::new(2));
    let mut client = FjClient::connect(addr).expect("connect");

    // One single-query batch per workload query, all in flight at once.
    let ids: Vec<(u64, usize)> = queries
        .iter()
        .enumerate()
        .map(|(qi, q)| {
            let id = client
                .send("stats", 1, std::slice::from_ref(q))
                .expect("send");
            (id, qi)
        })
        .collect();
    assert!(ids.windows(2).all(|w| w[0].0 != w[1].0), "distinct ids");

    for &(id, qi) in ids.iter().rev() {
        let outcome = client.recv(id).expect("recv");
        let BatchOutcome::Served(results) = outcome else {
            panic!("request {id} rejected: {outcome:?}");
        };
        assert_eq!(results.len(), 1);
        let est = results[0].as_ref().expect("served");
        assert_eq!(
            to_bits(&est.estimates),
            expected[qi],
            "request {id} resolved with query {qi}'s estimates"
        );
    }
}

/// Hot-swap detection: a client comparing epochs across responses spots a
/// mid-flight model swap, and post-swap responses match the new model
/// bit-for-bit.
#[test]
fn hot_swap_mid_flight_is_visible_through_epochs() {
    let catalog = tiny_catalog();
    let model_a = Arc::new(train(&catalog, 20));
    let model_b = Arc::new(train(&catalog, 40));
    let queries = workload(&catalog, 17);
    let expected_a = expected_bits(&model_a, &queries, 1);
    let expected_b = expected_bits(&model_b, &queries, 1);

    let registry = Arc::new(ModelRegistry::new());
    registry.publish("stats", Arc::clone(&model_a));
    let server = FjServer::bind(
        "127.0.0.1:0",
        vec![ShardSpec::with_registry("stats", Arc::clone(&registry))],
        ServerConfig::new(2),
    )
    .expect("bind");
    let mut client = FjClient::connect(server.local_addr()).expect("connect");

    let before = match client.call("stats", 1, &queries).expect("pre-swap") {
        BatchOutcome::Served(results) => results,
        other => panic!("pre-swap rejected: {other:?}"),
    };
    let epoch_a = before[0].as_ref().unwrap().model_epoch;
    for (qi, result) in before.iter().enumerate() {
        assert_eq!(to_bits(&result.as_ref().unwrap().estimates), expected_a[qi]);
    }

    // Server-side hot-swap between two pipelined client requests.
    registry.swap_model("stats", model_b).expect("swap");

    let after = match client.call("stats", 1, &queries).expect("post-swap") {
        BatchOutcome::Served(results) => results,
        other => panic!("post-swap rejected: {other:?}"),
    };
    let epoch_b = after[0].as_ref().unwrap().model_epoch;
    assert!(
        epoch_b > epoch_a,
        "the epoch jump ({epoch_a} -> {epoch_b}) is the client's hot-swap signal"
    );
    for (qi, result) in after.iter().enumerate() {
        let est = result.as_ref().unwrap();
        assert_eq!(est.model_epoch, epoch_b);
        assert_eq!(
            to_bits(&est.estimates),
            expected_b[qi],
            "post-swap query {qi} served by the new model"
        );
    }
}

/// The admission-control acceptance criterion: a client past its in-flight
/// quota observes an explicit rejection — not a hang — and the quota
/// frees up once the in-flight batch completes.
#[test]
fn quota_exceeded_is_rejected_not_hung() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 25));
    let queries = workload(&catalog, 19);
    // One big in-flight batch: the single worker needs many TrueScan
    // estimates (milliseconds) to finish it, while the reader thread sees
    // the next frame microseconds later — a >1000x margin, so the second
    // request deterministically finds the quota exhausted.
    let big: Vec<Query> = std::iter::repeat_with(|| queries.iter().cloned())
        .take(8)
        .flatten()
        .collect();

    let (server, addr) = serve_one(
        Arc::clone(&model),
        ServerConfig::new(1)
            .with_queue_capacity(big.len())
            .with_max_inflight(1),
    );
    let mut client = FjClient::connect(addr).expect("connect");

    let id_big = client.send("stats", 1, &big).expect("send big");
    let id_over = client
        .send("stats", 1, &queries[..1])
        .expect("send over-quota");

    // The rejection lands while the big batch is still computing.
    match client.recv(id_over).expect("recv over-quota") {
        BatchOutcome::Rejected { reason, message } => {
            assert_eq!(reason, RejectReason::QuotaExceeded);
            assert!(message.contains('1'), "message names the quota: {message}");
        }
        BatchOutcome::Served(_) => panic!("over-quota request was served, not rejected"),
    }
    // The in-flight batch itself is unaffected by the rejection.
    match client.recv(id_big).expect("recv big") {
        BatchOutcome::Served(results) => {
            assert_eq!(results.len(), big.len());
            assert!(results.iter().all(|r| r.is_ok()));
        }
        other => panic!("in-flight batch lost: {other:?}"),
    }
    // Quota released on completion: the retry goes through.
    match client.call("stats", 1, &queries[..1]).expect("retry") {
        BatchOutcome::Served(results) => assert_eq!(results.len(), 1),
        other => panic!("post-completion retry rejected: {other:?}"),
    }

    let snap = server.stats("stats").expect("shard stats");
    assert_eq!(snap.rejected, 1, "the quota rejection is counted");
    assert_eq!(snap.shed, 0);
}

/// Queue-full shedding is all-or-nothing and therefore deterministic: a
/// batch larger than the shard queue is always refused whole, the
/// connection stays usable, and the shed shows up in the stats.
#[test]
fn overloaded_batch_is_shed_whole_and_counted() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 20));
    let queries = workload(&catalog, 23);
    assert!(queries.len() >= 3, "need a batch larger than the queue");

    let (server, addr) = serve_one(
        Arc::clone(&model),
        ServerConfig::new(1).with_queue_capacity(2),
    );
    let mut client = FjClient::connect(addr).expect("connect");

    // 3 queries can never fit a 2-slot queue: shed regardless of timing.
    match client.call("stats", 1, &queries[..3]).expect("roundtrip") {
        BatchOutcome::Rejected { reason, .. } => {
            assert_eq!(reason, RejectReason::Overloaded);
        }
        BatchOutcome::Served(_) => panic!("impossible batch was served"),
    }
    // The connection survives the shed; a fitting batch is served.
    match client.call("stats", 1, &queries[..2]).expect("roundtrip") {
        BatchOutcome::Served(results) => assert_eq!(results.len(), 2),
        other => panic!("fitting batch rejected: {other:?}"),
    }

    let snap = server.stats("stats").expect("shard stats");
    assert_eq!(snap.shed, 3, "all 3 shed queries counted");
    assert_eq!(snap.requests, 2, "only the fitting batch was served");
}

/// Requests against a dataset the server does not shard are refused with
/// a distinct reason, and other datasets keep working on the same
/// connection.
#[test]
fn unknown_dataset_is_rejected_by_name() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 15));
    let queries = workload(&catalog, 29);

    let (_server, addr) = serve_one(model, ServerConfig::new(1));
    let mut client = FjClient::connect(addr).expect("connect");

    match client.call("imdb", 1, &queries[..1]).expect("roundtrip") {
        BatchOutcome::Rejected { reason, message } => {
            assert_eq!(reason, RejectReason::UnknownDataset);
            assert!(
                message.contains("imdb"),
                "message names the dataset: {message}"
            );
        }
        BatchOutcome::Served(_) => panic!("unknown dataset was served"),
    }
    match client.call("stats", 1, &queries[..1]).expect("roundtrip") {
        BatchOutcome::Served(results) => assert_eq!(results.len(), 1),
        other => panic!("known dataset rejected after the refusal: {other:?}"),
    }
}

/// Two shards serve independent registries: each dataset answers with its
/// own model's bits, and the handshake lists both.
#[test]
fn shards_route_by_dataset() {
    let catalog = tiny_catalog();
    let model_a = Arc::new(train(&catalog, 20));
    let model_b = Arc::new(train(&catalog, 40));
    let queries = workload(&catalog, 31);
    let expected_a = expected_bits(&model_a, &queries, 1);
    let expected_b = expected_bits(&model_b, &queries, 1);

    let server = FjServer::bind(
        "127.0.0.1:0",
        vec![
            ShardSpec::new("coarse", Arc::clone(&model_a)),
            ShardSpec::new("fine", Arc::clone(&model_b)),
        ],
        ServerConfig::new(1),
    )
    .expect("bind");
    let mut client = FjClient::connect(server.local_addr()).expect("connect");
    assert_eq!(
        client.datasets(),
        ["coarse".to_string(), "fine".to_string()]
    );

    for (dataset, expected) in [("coarse", &expected_a), ("fine", &expected_b)] {
        match client.call(dataset, 1, &queries).expect("roundtrip") {
            BatchOutcome::Served(results) => {
                for (qi, result) in results.iter().enumerate() {
                    assert_eq!(
                        to_bits(&result.as_ref().unwrap().estimates),
                        expected[qi],
                        "dataset {dataset} query {qi}"
                    );
                }
            }
            other => panic!("dataset {dataset} rejected: {other:?}"),
        }
    }
}

/// Server shutdown disconnects clients (an error, never a hang) and a
/// dropped server releases its port.
#[test]
fn shutdown_disconnects_clients_cleanly() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 15));
    let queries = workload(&catalog, 37);

    let (server, addr) = serve_one(Arc::clone(&model), ServerConfig::new(1));
    let mut client = FjClient::connect(addr).expect("connect");
    match client.call("stats", 1, &queries[..1]).expect("roundtrip") {
        BatchOutcome::Served(_) => {}
        other => panic!("warm-up rejected: {other:?}"),
    }

    server.shutdown();
    // The next roundtrip fails fast instead of hanging on a dead socket.
    let err = client
        .call("stats", 1, &queries[..1])
        .expect_err("server is gone");
    let _ = err; // any io error is acceptable; the point is not hanging

    // The port is free again.
    let rebound = std::net::TcpListener::bind(addr).expect("port released");
    drop(rebound);
}
