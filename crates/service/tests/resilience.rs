//! Integration suite for the serving path's failure handling: health
//! probes, graceful drain, end-to-end deadlines, worker-panic
//! containment, retry-driven recovery, and idle-connection reaping (the
//! acceptance criteria of the resilience tentpole).

use factorjoin::{BaseEstimatorKind, BinBudget, FactorJoinConfig, FactorJoinModel};
use fj_datagen::{stats_catalog, stats_ceb_workload, StatsConfig, WorkloadConfig};
use fj_query::{FilterExpr, Query, TableRef};
use fj_service::{
    BatchOutcome, ClientConfig, FjClient, FjServer, RejectReason, RetryPolicy, ServerConfig,
    ShardSpec,
};
use fj_storage::Catalog;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_catalog() -> Catalog {
    stats_catalog(&StatsConfig {
        scale: 0.03,
        ..Default::default()
    })
}

fn train(catalog: &Catalog, k: usize) -> FactorJoinModel {
    FactorJoinModel::train(
        catalog,
        FactorJoinConfig {
            bin_budget: BinBudget::Uniform(k),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        },
    )
}

fn workload(catalog: &Catalog, seed: u64) -> Vec<Query> {
    stats_ceb_workload(catalog, &WorkloadConfig::tiny(seed))
}

fn serve_one(
    model: Arc<FactorJoinModel>,
    config: ServerConfig,
) -> (FjServer, std::net::SocketAddr) {
    let server = FjServer::bind("127.0.0.1:0", vec![ShardSpec::new("stats", model)], config)
        .expect("bind loopback");
    let addr = server.local_addr();
    (server, addr)
}

/// Health probes report per-shard load and the drain flag; draining keeps
/// answering probes and in-flight work, but rejects new batches and
/// refuses new connections.
#[test]
fn health_probe_and_graceful_drain() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 20));
    let queries = workload(&catalog, 41);

    let (mut server, addr) = serve_one(Arc::clone(&model), ServerConfig::new(2));
    let mut client = FjClient::connect(addr).expect("connect");

    let report = client.health().expect("health probe");
    assert!(!report.draining, "fresh server is not draining");
    assert_eq!(report.shards.len(), 1);
    let shard = &report.shards[0];
    assert_eq!(shard.dataset, "stats");
    assert!(shard.model_epoch >= 1, "a model is published");
    assert!(shard.queue_capacity > 0);
    assert!(shard.queue_depth <= shard.queue_capacity);

    // Probes interleave with pipelined batches without stealing frames.
    let id = client.send("stats", 1, &queries[..2]).expect("send");
    let report = client.health().expect("health mid-batch");
    assert!(!report.draining);
    match client.recv(id).expect("recv after probe") {
        BatchOutcome::Served(results) => assert_eq!(results.len(), 2),
        other => panic!("batch rejected: {other:?}"),
    }

    server.begin_drain();
    assert!(server.is_draining());

    // The established connection still answers health — now reporting the
    // drain so the client knows to fail over.
    let report = client.health().expect("health while draining");
    assert!(report.draining, "drain is visible in the probe");

    // New batches on the surviving connection are rejected, not hung.
    match client.call("stats", 1, &queries[..1]).expect("roundtrip") {
        BatchOutcome::Rejected { reason, message } => {
            assert_eq!(reason, RejectReason::ShuttingDown);
            assert!(
                message.contains("drain") || message.contains("shut"),
                "message explains the refusal: {message}"
            );
        }
        BatchOutcome::Served(_) => panic!("draining server accepted a batch"),
    }

    // Fresh connections are refused at the TCP layer.
    assert!(
        FjClient::connect(addr).is_err(),
        "draining server must not accept new connections"
    );
    server.shutdown();
}

/// The end-to-end deadline: a client whose budget is too small for the
/// queue wait gets its call bounded client-side, and the server sheds the
/// expired work instead of estimating for nobody — visible as the
/// `expired` counter. The connectionless worker and quota slots survive.
#[test]
fn expired_deadlines_are_shed_and_counted() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 25));
    let queries = workload(&catalog, 43);
    // One worker, pre-loaded with a batch big enough to hold it well past
    // the short deadline below (TrueScan runs single-digit microseconds
    // per query here, so holding the worker for tens of milliseconds takes
    // tens of thousands).
    let big: Vec<Query> = std::iter::repeat_with(|| queries.iter().cloned())
        .take(3000)
        .flatten()
        .collect();

    let (server, addr) = serve_one(
        Arc::clone(&model),
        ServerConfig::new(1).with_queue_capacity(big.len() + 8),
    );
    let mut blocker = FjClient::connect(addr).expect("connect blocker");
    // The hurried client: a 5 ms budget, connected *before* the flood so
    // its handshake doesn't eat into the race-free window below.
    let mut hurried = FjClient::connect_with(
        addr,
        ClientConfig::default().with_request_timeout(Some(Duration::from_millis(5))),
    )
    .expect("connect hurried");
    let mut probe = FjClient::connect(addr).expect("connect probe");

    let id_big = blocker.send("stats", 1, &big).expect("send big");
    // Wait until the flood is actually queued (its frame decodes on the
    // blocker's reader thread, so "send returned" does not mean "enqueued")
    // and deep enough that draining the remainder dwarfs the 5 ms budget.
    let sync_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let depth = probe.health().expect("health probe").shards[0].queue_depth;
        if depth >= (big.len() / 2) as u32 {
            break;
        }
        assert!(
            Instant::now() < sync_deadline,
            "queue never filled (depth {depth})"
        );
    }

    // The hurried queries sit in queue behind the flood, expire, and are
    // shed by the worker at pick-up.
    let started = Instant::now();
    let result = hurried.call("stats", 1, &queries[..3]);
    let elapsed = started.elapsed();
    // Bounded: the deadline plus generous scheduling slack, never the
    // flood's completion time.
    assert!(
        elapsed < Duration::from_secs(10),
        "deadline-bounded call took {elapsed:?}"
    );
    match result {
        // Socket read timeouts surface as WouldBlock (EAGAIN) on Linux and
        // TimedOut elsewhere; the call-level budget check reports TimedOut.
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ),
            "unexpected: {e}"
        ),
        Ok(BatchOutcome::Rejected { reason, .. }) => {
            // Raced the worker: the server noticed the expiry first.
            assert_eq!(reason, RejectReason::DeadlineExceeded);
        }
        Ok(BatchOutcome::Served(_)) => panic!("a 5 ms budget cannot outlast the flood"),
    }

    // The blocker's own batch is unaffected.
    match blocker.recv(id_big).expect("recv big") {
        BatchOutcome::Served(results) => assert_eq!(results.len(), big.len()),
        other => panic!("big batch lost: {other:?}"),
    }

    // The worker shed the expired queries without estimating them.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = server.stats("stats").expect("shard stats");
        if snap.expired >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "expired counter stuck at {} (want >= 3)",
            snap.expired
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // And the service is fully live afterwards: a clean client is served.
    let mut clean = FjClient::connect(addr).expect("connect clean");
    match clean.call("stats", 1, &queries[..2]).expect("roundtrip") {
        BatchOutcome::Served(results) => {
            assert_eq!(results.len(), 2);
            assert!(results.iter().all(|r| r.is_ok()));
        }
        other => panic!("post-expiry batch rejected: {other:?}"),
    }
}

/// A query that panics the estimator (here: a structurally valid wire
/// query naming a table the model never saw) resolves its own slot with a
/// clear error; sibling queries in the same batch and all later batches
/// are served normally, and the panic shows up in the stats.
#[test]
fn worker_panic_is_contained_to_its_slot() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 20));
    let queries = workload(&catalog, 47);

    // from_wire_parts skips catalog validation by design (the server's
    // model is the receiver's source of truth), so this models a client
    // bound against a different schema.
    let bogus = Query::from_wire_parts(
        vec![TableRef::new("z", "no_such_table")],
        vec![],
        vec![FilterExpr::True],
    )
    .expect("structurally valid");

    let (server, addr) = serve_one(Arc::clone(&model), ServerConfig::new(1));
    let mut client = FjClient::connect(addr).expect("connect");

    let batch = vec![queries[0].clone(), bogus, queries[1].clone()];
    match client.call("stats", 1, &batch).expect("roundtrip") {
        BatchOutcome::Served(results) => {
            assert_eq!(results.len(), 3);
            assert!(results[0].is_ok(), "sibling before the panic served");
            assert!(results[2].is_ok(), "sibling after the panic served");
            let msg = results[1].as_ref().expect_err("bogus query must fail");
            assert!(
                msg.contains("panicked"),
                "slot error names the panic: {msg}"
            );
        }
        other => panic!("batch rejected: {other:?}"),
    }

    let snap = server.stats("stats").expect("shard stats");
    assert_eq!(snap.worker_panics, 1, "the panic is counted");

    // The worker rebuilt its scratch and keeps serving.
    match client.call("stats", 1, &queries[..2]).expect("roundtrip") {
        BatchOutcome::Served(results) => assert!(results.iter().all(|r| r.is_ok())),
        other => panic!("post-panic batch rejected: {other:?}"),
    }
}

/// The server reaps connections idle past the configured window; a client
/// with retries reconnects transparently on its next call.
#[test]
fn idle_connections_are_reaped_and_reconnect() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 15));
    let queries = workload(&catalog, 59);

    let (_server, addr) = serve_one(
        Arc::clone(&model),
        ServerConfig::new(1)
            .with_read_timeout(Some(Duration::from_millis(25)))
            .with_idle_timeout(Some(Duration::from_millis(100))),
    );
    let mut client = FjClient::connect_with(
        addr,
        ClientConfig::default().with_retry(RetryPolicy::retries(3)),
    )
    .expect("connect");
    match client.call("stats", 1, &queries[..1]).expect("warm-up") {
        BatchOutcome::Served(_) => {}
        other => panic!("warm-up rejected: {other:?}"),
    }

    // Go quiet long enough for the server to reap the connection.
    std::thread::sleep(Duration::from_millis(400));

    // The next call hits the dead socket, reconnects, and is served.
    match client
        .call("stats", 1, &queries[..1])
        .expect("post-idle call")
    {
        BatchOutcome::Served(results) => assert_eq!(results.len(), 1),
        other => panic!("post-idle call rejected: {other:?}"),
    }
    assert!(client.is_connected());
}
