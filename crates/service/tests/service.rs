//! Integration suite for the estimation service: concurrent correctness,
//! hot-swap under load, and persist → load → serve.

use factorjoin::{
    load_model, save_model, BaseEstimatorKind, BinBudget, FactorJoinConfig, FactorJoinModel,
};
use fj_datagen::{stats_catalog, stats_ceb_workload, StatsConfig, WorkloadConfig};
use fj_query::Query;
use fj_service::{EstimatorService, ModelRegistry, ServiceConfig};
use fj_storage::Catalog;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn tiny_catalog() -> Catalog {
    stats_catalog(&StatsConfig {
        scale: 0.03,
        ..Default::default()
    })
}

fn train(catalog: &Catalog, k: usize) -> FactorJoinModel {
    FactorJoinModel::train(
        catalog,
        FactorJoinConfig {
            bin_budget: BinBudget::Uniform(k),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        },
    )
}

fn workload(catalog: &Catalog, seed: u64) -> Vec<Query> {
    stats_ceb_workload(catalog, &WorkloadConfig::tiny(seed))
}

/// Bit-exact expected estimates per query, computed on the calling thread
/// through the same public entry point the workers use.
fn expected_bits(model: &FactorJoinModel, queries: &[Query]) -> Vec<Vec<(u64, u64)>> {
    queries
        .iter()
        .map(|q| {
            model
                .estimate_subplans(q, 1)
                .into_iter()
                .map(|(m, e)| (m, e.to_bits()))
                .collect()
        })
        .collect()
}

fn to_bits(estimates: &[(u64, f64)]) -> Vec<(u64, u64)> {
    estimates.iter().map(|&(m, e)| (m, e.to_bits())).collect()
}

/// N client threads hammering the pool concurrently must get estimates
/// that are bit-identical to the single-threaded `estimate_subplans` path
/// — the concurrent-correctness contract of the acceptance criteria.
#[test]
fn concurrent_estimates_bit_identical_to_single_threaded() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 25));
    let queries = workload(&catalog, 11);
    let expected = Arc::new(expected_bits(&model, &queries));
    let queries = Arc::new(queries);

    let service = Arc::new(EstimatorService::serve("stats", Arc::clone(&model), 4));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let service = Arc::clone(&service);
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                // Interleave single submits and batches, repeated passes.
                for pass in 0..5 {
                    if (c + pass) % 2 == 0 {
                        for (qi, q) in queries.iter().enumerate() {
                            let resp = service.submit(q.clone()).wait().expect("served");
                            assert_eq!(
                                to_bits(&resp.estimates),
                                expected[qi],
                                "client {c} pass {pass} query {qi}"
                            );
                        }
                    } else {
                        let responses = service.submit_batch(&queries).wait_all();
                        for (qi, resp) in responses.into_iter().enumerate() {
                            let resp = resp.expect("served");
                            assert_eq!(
                                to_bits(&resp.estimates),
                                expected[qi],
                                "client {c} pass {pass} query {qi} (batch)"
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let snap = service.stats();
    let per_client = 5 * queries.len() as u64;
    assert_eq!(snap.requests, 4 * per_client);
    assert_eq!(snap.errors, 0);
    assert!(snap.p50_latency <= snap.p99_latency);
}

/// Hot-swapping models while clients hammer the service never panics and
/// never mixes models: every response is bit-identical to one of the two
/// models' outputs, and the response's epoch says which one.
#[test]
fn hot_swap_under_load_never_mixes_models() {
    let catalog = tiny_catalog();
    let model_a = Arc::new(train(&catalog, 20));
    let model_b = Arc::new(train(&catalog, 40));
    let queries = Arc::new(workload(&catalog, 13));
    let expected_a = Arc::new(expected_bits(&model_a, &queries));
    let expected_b = Arc::new(expected_bits(&model_b, &queries));

    let registry = Arc::new(ModelRegistry::new());
    let epoch_a = registry.publish("stats", Arc::clone(&model_a));
    let service = Arc::new(EstimatorService::start(
        Arc::clone(&registry),
        ServiceConfig::new("stats", 3),
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let swapped_epochs = {
        // Swapper: flip between the two models while clients run.
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        let (a, b) = (Arc::clone(&model_a), Arc::clone(&model_b));
        std::thread::spawn(move || {
            let mut epochs = vec![];
            let mut to_b = true;
            while !stop.load(Ordering::Relaxed) {
                let next = if to_b { Arc::clone(&b) } else { Arc::clone(&a) };
                assert!(registry.swap_model("stats", next).is_some());
                epochs.push(registry.get("stats").expect("registered").epoch);
                to_b = !to_b;
                std::thread::yield_now();
            }
            epochs
        })
    };

    let clients: Vec<_> = (0..3)
        .map(|c| {
            let service = Arc::clone(&service);
            let queries = Arc::clone(&queries);
            let (ea, eb) = (Arc::clone(&expected_a), Arc::clone(&expected_b));
            std::thread::spawn(move || {
                for pass in 0..6 {
                    let responses = service.submit_batch(&queries).wait_all();
                    for (qi, resp) in responses.into_iter().enumerate() {
                        let resp = resp.expect("served during swap");
                        let bits = to_bits(&resp.estimates);
                        let matches_a = bits == ea[qi];
                        let matches_b = bits == eb[qi];
                        assert!(
                            matches_a || matches_b,
                            "client {c} pass {pass} query {qi}: \
                             response matches neither model (epoch {})",
                            resp.model_epoch
                        );
                        // Epoch parity identifies the model: A was published
                        // first, then swaps alternate B, A, B, … so any
                        // response claiming A's lineage must match A, etc.
                        // (A and B may coincide on some query; only assert
                        // when they differ.)
                        if matches_a != matches_b {
                            assert_eq!(
                                (resp.model_epoch - epoch_a).is_multiple_of(2),
                                matches_a,
                                "client {c} pass {pass} query {qi}: \
                                 epoch {} does not match the model that answered",
                                resp.model_epoch
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread survived hot-swapping");
    }
    stop.store(true, Ordering::Relaxed);
    let epochs = swapped_epochs.join().expect("swapper thread");
    assert!(!epochs.is_empty(), "at least one swap happened under load");
    assert!(epochs.windows(2).all(|w| w[0] < w[1]), "epochs increase");
    assert_eq!(service.stats().errors, 0);
}

/// Satellite: persist → load → serve. A model loaded from disk must serve
/// estimates bit-identical to the in-memory model it was saved from.
#[test]
fn persisted_model_serves_identically() {
    let catalog = tiny_catalog();
    let model = train(&catalog, 30);
    let queries = workload(&catalog, 17);
    let expected = expected_bits(&model, &queries);

    let dir = std::env::temp_dir().join("fj_service_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    save_model(&model, &path).expect("save");
    let loaded = load_model(&path, &catalog).expect("load");
    std::fs::remove_file(&path).ok();

    let registry = Arc::new(ModelRegistry::new());
    registry.publish_with_catalog("stats", Arc::new(loaded), Arc::new(catalog));
    let service = EstimatorService::start(Arc::clone(&registry), ServiceConfig::new("stats", 2));
    let responses = service.submit_batch(&queries).wait_all();
    for (qi, resp) in responses.into_iter().enumerate() {
        let resp = resp.expect("served");
        assert_eq!(
            to_bits(&resp.estimates),
            expected[qi],
            "loaded model diverges from the saved one on query {qi}"
        );
    }
    // The registry kept the catalog for offline retraining paths.
    assert!(registry.catalog("stats").is_some());
}

/// Backpressure: a queue smaller than the batch still serves everything
/// (producers block, workers drain), and the high-water mark shows the
/// queue saturated.
#[test]
fn bounded_queue_backpressure_serves_all() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 15));
    let queries = workload(&catalog, 19);
    let expected = expected_bits(&model, &queries);

    let registry = Arc::new(ModelRegistry::new());
    registry.publish("stats", Arc::clone(&model));
    let service = EstimatorService::start(
        registry,
        ServiceConfig::new("stats", 2).with_queue_capacity(2),
    );
    // 4 copies of the workload through a 2-deep queue.
    let mut tickets = Vec::new();
    for _ in 0..4 {
        tickets.push(service.submit_batch(&queries));
    }
    for ticket in tickets {
        for (qi, resp) in ticket.wait_all().into_iter().enumerate() {
            assert_eq!(to_bits(&resp.expect("served").estimates), expected[qi]);
        }
    }
    let snap = service.stats();
    assert_eq!(snap.requests as usize, 4 * queries.len());
    assert_eq!(snap.queue_high_water, 2, "queue hit its capacity");
    assert!(snap.subplans_per_second > 0.0);
}
