//! Integration suite for the estimation service: concurrent correctness,
//! hot-swap under load, and persist → load → serve.

use factorjoin::{
    load_model, save_model, BaseEstimatorKind, BinBudget, FactorJoinConfig, FactorJoinModel,
    ModelDelta,
};
use fj_datagen::{
    stats_catalog, stats_catalog_split_by_date, stats_ceb_workload, StatsConfig, WorkloadConfig,
};
use fj_query::Query;
use fj_service::{EstimatorService, ModelRegistry, ServiceConfig};
use fj_storage::Catalog;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn tiny_catalog() -> Catalog {
    stats_catalog(&StatsConfig {
        scale: 0.03,
        ..Default::default()
    })
}

fn train(catalog: &Catalog, k: usize) -> FactorJoinModel {
    FactorJoinModel::train(
        catalog,
        FactorJoinConfig {
            bin_budget: BinBudget::Uniform(k),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        },
    )
}

fn workload(catalog: &Catalog, seed: u64) -> Vec<Query> {
    stats_ceb_workload(catalog, &WorkloadConfig::tiny(seed))
}

/// Bit-exact expected estimates per query, computed on the calling thread
/// through the same public entry point the workers use.
fn expected_bits(model: &FactorJoinModel, queries: &[Query]) -> Vec<Vec<(u64, u64)>> {
    queries
        .iter()
        .map(|q| {
            model
                .estimate_subplans(q, 1)
                .into_iter()
                .map(|(m, e)| (m, e.to_bits()))
                .collect()
        })
        .collect()
}

fn to_bits(estimates: &[(u64, f64)]) -> Vec<(u64, u64)> {
    estimates.iter().map(|&(m, e)| (m, e.to_bits())).collect()
}

/// N client threads hammering the pool concurrently must get estimates
/// that are bit-identical to the single-threaded `estimate_subplans` path
/// — the concurrent-correctness contract of the acceptance criteria.
#[test]
fn concurrent_estimates_bit_identical_to_single_threaded() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 25));
    let queries = workload(&catalog, 11);
    let expected = Arc::new(expected_bits(&model, &queries));
    let queries = Arc::new(queries);

    let service = Arc::new(EstimatorService::serve("stats", Arc::clone(&model), 4));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let service = Arc::clone(&service);
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                // Interleave single submits and batches, repeated passes.
                for pass in 0..5 {
                    if (c + pass) % 2 == 0 {
                        for (qi, q) in queries.iter().enumerate() {
                            let resp = service.submit(q.clone()).wait().expect("served");
                            assert_eq!(
                                to_bits(&resp.estimates),
                                expected[qi],
                                "client {c} pass {pass} query {qi}"
                            );
                        }
                    } else {
                        let responses = service.submit_batch(&queries).wait_all();
                        for (qi, resp) in responses.into_iter().enumerate() {
                            let resp = resp.expect("served");
                            assert_eq!(
                                to_bits(&resp.estimates),
                                expected[qi],
                                "client {c} pass {pass} query {qi} (batch)"
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let snap = service.stats();
    let per_client = 5 * queries.len() as u64;
    assert_eq!(snap.requests, 4 * per_client);
    assert_eq!(snap.errors, 0);
    assert!(snap.p50_latency <= snap.p99_latency);
}

/// Hot-swapping models while clients hammer the service never panics and
/// never mixes models: every response is bit-identical to one of the two
/// models' outputs, and the response's epoch says which one.
#[test]
fn hot_swap_under_load_never_mixes_models() {
    let catalog = tiny_catalog();
    let model_a = Arc::new(train(&catalog, 20));
    let model_b = Arc::new(train(&catalog, 40));
    let queries = Arc::new(workload(&catalog, 13));
    let expected_a = Arc::new(expected_bits(&model_a, &queries));
    let expected_b = Arc::new(expected_bits(&model_b, &queries));

    let registry = Arc::new(ModelRegistry::new());
    let epoch_a = registry.publish("stats", Arc::clone(&model_a));
    let service = Arc::new(EstimatorService::start(
        Arc::clone(&registry),
        ServiceConfig::new("stats", 3),
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let swapped_epochs = {
        // Swapper: flip between the two models while clients run.
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        let (a, b) = (Arc::clone(&model_a), Arc::clone(&model_b));
        std::thread::spawn(move || {
            let mut epochs = vec![];
            let mut to_b = true;
            while !stop.load(Ordering::Relaxed) {
                let next = if to_b { Arc::clone(&b) } else { Arc::clone(&a) };
                assert!(registry.swap_model("stats", next).is_some());
                epochs.push(registry.get("stats").expect("registered").epoch);
                to_b = !to_b;
                std::thread::yield_now();
            }
            epochs
        })
    };

    let clients: Vec<_> = (0..3)
        .map(|c| {
            let service = Arc::clone(&service);
            let queries = Arc::clone(&queries);
            let (ea, eb) = (Arc::clone(&expected_a), Arc::clone(&expected_b));
            std::thread::spawn(move || {
                for pass in 0..6 {
                    let responses = service.submit_batch(&queries).wait_all();
                    for (qi, resp) in responses.into_iter().enumerate() {
                        let resp = resp.expect("served during swap");
                        let bits = to_bits(&resp.estimates);
                        let matches_a = bits == ea[qi];
                        let matches_b = bits == eb[qi];
                        assert!(
                            matches_a || matches_b,
                            "client {c} pass {pass} query {qi}: \
                             response matches neither model (epoch {})",
                            resp.model_epoch
                        );
                        // Epoch parity identifies the model: A was published
                        // first, then swaps alternate B, A, B, … so any
                        // response claiming A's lineage must match A, etc.
                        // (A and B may coincide on some query; only assert
                        // when they differ.)
                        if matches_a != matches_b {
                            assert_eq!(
                                (resp.model_epoch - epoch_a).is_multiple_of(2),
                                matches_a,
                                "client {c} pass {pass} query {qi}: \
                                 epoch {} does not match the model that answered",
                                resp.model_epoch
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread survived hot-swapping");
    }
    stop.store(true, Ordering::Relaxed);
    let epochs = swapped_epochs.join().expect("swapper thread");
    assert!(!epochs.is_empty(), "at least one swap happened under load");
    assert!(epochs.windows(2).all(|w| w[0] < w[1]), "epochs increase");
    assert_eq!(service.stats().errors, 0);
}

/// Satellite: persist → load → serve. A model loaded from disk must serve
/// estimates bit-identical to the in-memory model it was saved from.
#[test]
fn persisted_model_serves_identically() {
    let catalog = tiny_catalog();
    let model = train(&catalog, 30);
    let queries = workload(&catalog, 17);
    let expected = expected_bits(&model, &queries);

    let dir = std::env::temp_dir().join("fj_service_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let catalog = Arc::new(catalog);
    // Both formats must serve bit-identically: binary `.fjm` (the
    // production cold-start path, via the registry's own loader) and the
    // JSON debug export (via load_model + publish).
    for (file, via_registry) in [("model.fjm", true), ("model.json", false)] {
        let path = dir.join(file);
        save_model(&model, &path).expect("save");
        let registry = Arc::new(ModelRegistry::new());
        if via_registry {
            registry
                .load_and_publish("stats", &path, Arc::clone(&catalog))
                .expect("load_and_publish");
        } else {
            let loaded = load_model(&path, &catalog).expect("load");
            registry.publish_with_catalog("stats", Arc::new(loaded), Arc::clone(&catalog));
        }
        std::fs::remove_file(&path).ok();
        let service =
            EstimatorService::start(Arc::clone(&registry), ServiceConfig::new("stats", 2));
        let responses = service.submit_batch(&queries).wait_all();
        for (qi, resp) in responses.into_iter().enumerate() {
            let resp = resp.expect("served");
            assert_eq!(
                to_bits(&resp.estimates),
                expected[qi],
                "{file}: loaded model diverges from the saved one on query {qi}"
            );
        }
        // The registry kept the catalog for offline retraining paths.
        assert!(registry.catalog("stats").is_some());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Incremental updates under load (paper §4.3 meets serving): while
/// clients hammer the pool, `ModelRegistry::apply_insert` absorbs a
/// staged insert batch by cloning the served model, delta-updating the
/// copy, and hot-swapping it in. No request errors, no torn model: every
/// response is bit-identical to either the stale or the updated model,
/// the epoch says which, and once the swap's epoch is visible every later
/// response comes from the updated statistics.
#[test]
fn apply_insert_absorbs_updates_under_load() {
    let cfg = StatsConfig {
        scale: 0.03,
        ..Default::default()
    };
    // Train on the pre-split data, stage the post-split rows as the delta.
    let (mut catalog, inserts) = stats_catalog_split_by_date(&cfg, 3285);
    let stale = Arc::new(train(&catalog, 25));
    let mut delta = ModelDelta::new();
    for (tname, rows) in &inserts {
        let first = catalog.table(tname).unwrap().nrows();
        catalog.table_mut(tname).unwrap().append_rows(rows).unwrap();
        delta.record(catalog.table(tname).unwrap(), first);
    }
    assert!(delta.rows() > 0, "the split staged some inserts");
    let updated_oracle = stale.updated_with(&catalog, &delta);

    let queries = Arc::new(workload(&catalog, 23));
    let expected_stale = Arc::new(expected_bits(&stale, &queries));
    let expected_updated = Arc::new(expected_bits(&updated_oracle, &queries));

    let registry = Arc::new(ModelRegistry::new());
    let stale_epoch = registry.publish("stats", Arc::clone(&stale));
    let service = Arc::new(EstimatorService::start(
        Arc::clone(&registry),
        ServiceConfig::new("stats", 3),
    ));

    // Updater: absorb the delta mid-load, once.
    let swap_epoch = {
        let registry = Arc::clone(&registry);
        let catalog = catalog.clone();
        let delta = delta.clone();
        std::thread::spawn(move || {
            registry
                .apply_insert("stats", &catalog, &delta)
                .expect("dataset registered")
        })
    };

    let clients: Vec<_> = (0..3)
        .map(|c| {
            let service = Arc::clone(&service);
            let queries = Arc::clone(&queries);
            let (es, eu) = (Arc::clone(&expected_stale), Arc::clone(&expected_updated));
            std::thread::spawn(move || {
                for pass in 0..6 {
                    let responses = service.submit_batch(&queries).wait_all();
                    for (qi, resp) in responses.into_iter().enumerate() {
                        let resp = resp.expect("served during update");
                        let bits = to_bits(&resp.estimates);
                        let is_stale = bits == es[qi];
                        let is_updated = bits == eu[qi];
                        assert!(
                            is_stale || is_updated,
                            "client {c} pass {pass} query {qi}: torn model \
                             (epoch {})",
                            resp.model_epoch
                        );
                        // The epoch identifies which model answered (when
                        // the two models actually differ on the query).
                        if is_stale != is_updated {
                            assert_eq!(
                                resp.model_epoch > stale_epoch,
                                is_updated,
                                "client {c} pass {pass} query {qi}: epoch \
                                 {} disagrees with the answering model",
                                resp.model_epoch
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread survived the update");
    }
    let swap_epoch = swap_epoch.join().expect("updater thread");
    assert!(swap_epoch > stale_epoch);
    assert_eq!(service.stats().errors, 0);

    // Steady state after the swap: responses come from the updated model.
    let resp = service.submit(queries[0].clone()).wait().expect("served");
    assert_eq!(resp.model_epoch, swap_epoch);
    assert_eq!(to_bits(&resp.estimates), expected_updated[0]);

    // The swap's epoch fences the sub-plan cache: the submit above either
    // hit an entry written under swap_epoch or inserted one, so an
    // immediate repeat is a guaranteed cache hit — and it must still
    // carry the **updated** model's bits, never a pre-swap estimate.
    let hits_before = service.stats().cache_hits;
    let repeat = service.submit(queries[0].clone()).wait().expect("served");
    assert_eq!(repeat.model_epoch, swap_epoch);
    assert_eq!(
        to_bits(&repeat.estimates),
        expected_updated[0],
        "a cache hit after the epoch bump must serve post-swap statistics"
    );
    assert!(
        service.stats().cache_hits > hits_before,
        "the repeat under a settled epoch is served from the cache"
    );
}

/// Sub-plan cache acceptance: for **every estimator backend**, a cache
/// hit is bit-identical (`f64::to_bits`) to the miss that populated it.
/// The first pass misses and fills the cache; the second pass must be
/// served entirely from it, and both passes must equal the
/// single-threaded oracle exactly.
#[test]
fn cache_hit_is_bit_identical_to_miss_for_every_backend() {
    let catalog = tiny_catalog();
    let backends = [
        ("true_scan", BaseEstimatorKind::TrueScan),
        (
            "bayes_net",
            BaseEstimatorKind::BayesNet(fj_stats::BnConfig::default()),
        ),
        ("sampling", BaseEstimatorKind::Sampling { rate: 0.5 }),
    ];
    for (name, estimator) in backends {
        let model = Arc::new(FactorJoinModel::train(
            &catalog,
            FactorJoinConfig {
                bin_budget: BinBudget::Uniform(20),
                estimator,
                ..Default::default()
            },
        ));
        let queries = workload(&catalog, 29);
        let expected = expected_bits(&model, &queries);
        let service = EstimatorService::serve(name, Arc::clone(&model), 2);

        let first: Vec<_> = service
            .submit_batch(&queries)
            .wait_all()
            .into_iter()
            .map(|r| to_bits(&r.expect("served (miss pass)").estimates))
            .collect();
        let after_fill = service.stats();
        assert!(
            after_fill.cache_misses > 0,
            "{name}: the cold pass must populate the cache"
        );

        let second: Vec<_> = service
            .submit_batch(&queries)
            .wait_all()
            .into_iter()
            .map(|r| to_bits(&r.expect("served (hit pass)").estimates))
            .collect();
        let after_replay = service.stats();

        for (qi, exp) in expected.iter().enumerate() {
            assert_eq!(&first[qi], exp, "{name}: miss pass diverges on query {qi}");
            assert_eq!(
                second[qi], first[qi],
                "{name}: cache hit is not bit-identical to the miss on query {qi}"
            );
        }
        let replayed_subplans: u64 = expected.iter().map(|e| e.len() as u64).sum();
        assert_eq!(
            after_replay.cache_hits - after_fill.cache_hits,
            replayed_subplans,
            "{name}: the replay pass must be served entirely from the cache"
        );
        assert_eq!(
            after_replay.cache_misses, after_fill.cache_misses,
            "{name}: no new misses on the replay pass"
        );
    }
}

/// With the cache disabled (`subplan_cache_entries = 0`) the service
/// serves bit-identically through the uncached path and the cache
/// counters never move — the bench's uncached arm cannot be silently
/// cached.
#[test]
fn disabled_cache_serves_identically_with_zero_counters() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 20));
    let queries = workload(&catalog, 31);
    let expected = expected_bits(&model, &queries);

    let registry = Arc::new(ModelRegistry::new());
    registry.publish("stats", Arc::clone(&model));
    let service = EstimatorService::start(
        registry,
        ServiceConfig::new("stats", 2).with_subplan_cache_entries(0),
    );
    assert!(service.subplan_cache().is_none(), "0 entries disables");
    for _ in 0..2 {
        for (qi, resp) in service
            .submit_batch(&queries)
            .wait_all()
            .into_iter()
            .enumerate()
        {
            assert_eq!(to_bits(&resp.expect("served").estimates), expected[qi]);
        }
    }
    let snap = service.stats();
    assert_eq!(snap.cache_hits, 0);
    assert_eq!(snap.cache_misses, 0);
    assert_eq!(snap.cache_evictions, 0);
    assert_eq!(snap.cache_hit_rate(), 0.0);
}

/// Backpressure: a queue smaller than the batch still serves everything
/// (producers block, workers drain), and the high-water mark shows the
/// queue saturated.
#[test]
fn bounded_queue_backpressure_serves_all() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 15));
    let queries = workload(&catalog, 19);
    let expected = expected_bits(&model, &queries);

    let registry = Arc::new(ModelRegistry::new());
    registry.publish("stats", Arc::clone(&model));
    let service = EstimatorService::start(
        registry,
        ServiceConfig::new("stats", 2).with_queue_capacity(2),
    );
    // 4 copies of the workload through a 2-deep queue.
    let mut tickets = Vec::new();
    for _ in 0..4 {
        tickets.push(service.submit_batch(&queries));
    }
    for ticket in tickets {
        for (qi, resp) in ticket.wait_all().into_iter().enumerate() {
            assert_eq!(to_bits(&resp.expect("served").estimates), expected[qi]);
        }
    }
    let snap = service.stats();
    assert_eq!(snap.requests as usize, 4 * queries.len());
    assert_eq!(snap.queue_high_water, 2, "queue hit its capacity");
    assert!(snap.subplans_per_second > 0.0);
}
