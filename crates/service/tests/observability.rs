//! Integration suite for the observability plane (the fj-obs tentpole):
//! end-to-end traces that pin a slow batch to its dominant stage, remote
//! metrics scrapes over the wire, and cross-shard stats merging. (The
//! raw-frame v1/v2-against-v3 wire-compat regressions live with the
//! in-crate server tests, which can speak the `pub(crate)` codec.)

use factorjoin::{BaseEstimatorKind, BinBudget, FactorJoinConfig, FactorJoinModel};
use fj_datagen::{stats_catalog, stats_ceb_workload, StatsConfig, WorkloadConfig};
use fj_query::Query;
use fj_service::{BatchOutcome, FjClient, FjServer, ServerConfig, ShardSpec};
use fj_storage::Catalog;
use std::sync::Arc;

fn tiny_catalog() -> Catalog {
    stats_catalog(&StatsConfig {
        scale: 0.03,
        ..Default::default()
    })
}

fn train(catalog: &Catalog, k: usize) -> FactorJoinModel {
    FactorJoinModel::train(
        catalog,
        FactorJoinConfig {
            bin_budget: BinBudget::Uniform(k),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        },
    )
}

fn workload(catalog: &Catalog, seed: u64) -> Vec<Query> {
    stats_ceb_workload(catalog, &WorkloadConfig::tiny(seed))
}

/// Pull `key=<digits>` out of a slowlog line.
fn slowlog_field(line: &str, key: &str) -> u64 {
    let needle = format!(" {key}=");
    let start = line.find(&needle).unwrap_or_else(|| {
        panic!("slowlog line is missing {key}: {line}");
    }) + needle.len();
    line[start..]
        .split(|c: char| c.is_whitespace())
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("unparsable {key} in: {line}"))
}

/// The headline acceptance criterion: flood a one-worker shard so a traced
/// batch spends its life queued, scrape the metrics plane **over the
/// wire**, and confirm the slow-query log carries the client-minted trace
/// id and pins the latency on queue wait — not estimation.
#[test]
fn traced_queue_delayed_batch_is_pinned_to_queue_wait() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 20));
    let wl = workload(&catalog, 11);
    let flood: Vec<Query> = std::iter::repeat_with(|| wl.iter().cloned())
        .take(20)
        .flatten()
        .collect();
    const FLOOD_BATCHES: usize = 6;

    let server = FjServer::bind(
        "127.0.0.1:0",
        vec![ShardSpec::new("stats", Arc::clone(&model))],
        ServerConfig::new(1)
            .with_queue_capacity(FLOOD_BATCHES * flood.len() + 1)
            .with_slowlog_capacity(FLOOD_BATCHES + 2),
    )
    .expect("bind");
    let mut client = FjClient::connect(server.local_addr()).expect("connect");

    // Fill the single worker's queue, then send the traced one-query batch
    // that has to wait behind all of it.
    let flood_ids: Vec<u64> = (0..FLOOD_BATCHES)
        .map(|_| client.send("stats", 1, &flood).expect("send flood"))
        .collect();
    let (traced_id, trace_id) = client
        .send_traced("stats", 1, &wl[..1])
        .expect("send traced");
    assert_ne!(trace_id, 0, "a minted trace id is never the untraced 0");

    match client.recv(traced_id).expect("recv traced") {
        BatchOutcome::Served(results) => assert_eq!(results.len(), 1),
        other => panic!("the traced batch was not served: {other:?}"),
    }
    for id in flood_ids {
        assert!(matches!(
            client.recv(id).expect("recv flood"),
            BatchOutcome::Served(_)
        ));
    }

    // Scrape over the wire (the same text FjServer::metrics_text returns).
    // The collector records the encode/socket_write stages *after* writing
    // a response, so the client can hold the last reply before its stages
    // land — poll briefly until the metrics plane settles before comparing
    // the two scrape paths.
    let mut text = client.metrics().expect("scrape");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while text != server.metrics_text() {
        assert!(
            std::time::Instant::now() < deadline,
            "wire scrape never converged with the in-process scrape"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
        text = client.metrics().expect("scrape");
    }

    // The exposition covers counters, the latency histogram, and every
    // serving stage under one family.
    assert!(text.contains("# TYPE fj_requests_total counter"), "{text}");
    assert!(text.contains("# TYPE fj_request_latency_seconds histogram"));
    assert!(text.contains("# TYPE fj_stage_duration_seconds histogram"));
    for stage in [
        "admission",
        "queue_wait",
        "estimation",
        "encode",
        "socket_write",
    ] {
        let series =
            format!("fj_stage_duration_seconds_count{{dataset=\"stats\",stage=\"{stage}\"}}");
        assert!(text.contains(&series), "missing {series} in:\n{text}");
    }

    // The traced batch's slowlog entry: present, attributed to our trace,
    // and dominated by queue wait rather than estimation. The collector
    // offers the entry *after* writing the reply frame, so the client can
    // hold the response (and scrape) before the offer lands — poll with
    // the same bounded deadline as the convergence loop above.
    let needle = format!("trace_id={trace_id:#018x}");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !text
        .lines()
        .any(|l| l.starts_with("# slowlog") && l.contains(&needle))
    {
        assert!(
            std::time::Instant::now() < deadline,
            "no slowlog entry for {needle} in:\n{text}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
        text = client.metrics().expect("scrape");
    }
    let line = text
        .lines()
        .find(|l| l.starts_with("# slowlog") && l.contains(&needle))
        .expect("the poll above found it");
    assert!(line.contains("dataset=\"stats\""), "{line}");
    assert!(line.ends_with("dominant=queue_wait"), "{line}");
    let queue_wait = slowlog_field(line, "queue_wait_ns");
    let estimation = slowlog_field(line, "estimation_ns");
    assert!(
        queue_wait > estimation,
        "queued behind {FLOOD_BATCHES} flood batches, queue wait ({queue_wait}ns) \
         must dwarf the one-query estimation ({estimation}ns): {line}"
    );

    // The aggregate stage histograms agree with the per-request verdict:
    // under a flood, total queued time dwarfs total estimation time.
    let stage_sum = |stage: &str| -> f64 {
        let series =
            format!("fj_stage_duration_seconds_sum{{dataset=\"stats\",stage=\"{stage}\"}}");
        let line = text
            .lines()
            .find(|l| l.starts_with(&series))
            .unwrap_or_else(|| panic!("missing {series}"));
        line.rsplit(' ').next().unwrap().parse().expect("a float")
    };
    assert!(stage_sum("queue_wait") > stage_sum("estimation"));

    server.shutdown();
}

/// `stats_merged` across two shards must agree with the per-shard
/// snapshots: counters and queue depths sum, and every merged percentile
/// sits within the envelope of the shard percentiles (the histograms merge
/// bucket-exactly, so the union's quantile cannot leave that range).
#[test]
fn stats_merged_combines_shards_exactly() {
    let catalog = tiny_catalog();
    let model = Arc::new(train(&catalog, 20));
    let wl = workload(&catalog, 7);

    let mut server = FjServer::bind(
        "127.0.0.1:0",
        vec![
            ShardSpec::new("alpha", Arc::clone(&model)),
            ShardSpec::new("beta", Arc::clone(&model)),
        ],
        ServerConfig::new(2),
    )
    .expect("bind");
    let mut client = FjClient::connect(server.local_addr()).expect("connect");

    // Uneven traffic so the shards genuinely differ.
    for _ in 0..3 {
        assert!(matches!(
            client.call("alpha", 1, &wl).expect("alpha batch"),
            BatchOutcome::Served(_)
        ));
    }
    assert!(matches!(
        client.call("beta", 1, &wl[..2]).expect("beta batch"),
        BatchOutcome::Served(_)
    ));

    let alpha = server.stats("alpha").expect("alpha shard");
    let beta = server.stats("beta").expect("beta shard");
    let merged = server.stats_merged();

    assert_eq!(merged.requests, alpha.requests + beta.requests);
    assert_eq!(merged.subplans, alpha.subplans + beta.subplans);
    assert_eq!(merged.errors, alpha.errors + beta.errors);
    assert_eq!(merged.rejected, alpha.rejected + beta.rejected);
    assert_eq!(merged.shed, alpha.shed + beta.shed);
    assert_eq!(merged.cache_hits, alpha.cache_hits + beta.cache_hits);
    assert_eq!(merged.cache_misses, alpha.cache_misses + beta.cache_misses);
    assert_eq!(
        merged.cache_evictions,
        alpha.cache_evictions + beta.cache_evictions
    );
    assert!(
        alpha.cache_hits > 0,
        "alpha replayed the same workload 3x; repeats must hit the sub-plan cache"
    );
    assert_eq!(
        alpha.cache_hits + alpha.cache_misses,
        alpha.subplans,
        "every served sub-plan is either a cache hit or a counted miss"
    );
    assert_eq!(merged.queue_depth, alpha.queue_depth + beta.queue_depth);
    assert_eq!(
        merged.queue_high_water,
        alpha.queue_high_water.max(beta.queue_high_water)
    );
    for (pick, name) in [
        (
            (|s: &fj_service::StatsSnapshot| s.p50_latency) as fn(&_) -> _,
            "p50",
        ),
        (|s: &fj_service::StatsSnapshot| s.p95_latency, "p95"),
        (|s: &fj_service::StatsSnapshot| s.p99_latency, "p99"),
    ] {
        let (a, b, m) = (pick(&alpha), pick(&beta), pick(&merged));
        assert!(
            a.min(b) <= m && m <= a.max(b),
            "{name}: merged {m:?} outside shard envelope [{:?}, {:?}]",
            a.min(b),
            a.max(b)
        );
    }

    // Both shards show up in one exposition, each with its own queue gauge.
    let text = server.metrics_text();
    assert!(text.contains("fj_queue_depth{dataset=\"alpha\"}"));
    assert!(text.contains("fj_queue_depth{dataset=\"beta\"}"));

    // Metrics answer inline like health probes — including mid-drain, so
    // an operator can watch a drain finish.
    server.begin_drain();
    let drained = client.metrics().expect("scrape while draining");
    let expected = format!("fj_requests_total{{dataset=\"alpha\"}} {}", 3 * wl.len());
    assert!(drained.contains(&expected), "{drained}");

    server.shutdown();
}
