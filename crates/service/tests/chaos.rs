//! Seeded chaos suite: a real client and a real server talk through a
//! [`FaultProxy`] whose misbehavior — chunked delivery, delays, byte
//! corruption, severed and stalled connections, in both directions — is
//! derived deterministically from a seed. The invariants, per episode:
//!
//! 1. **Bounded**: every client operation returns (success or error)
//!    within its request budget plus generous scheduling slack — no call
//!    outlives its deadline, no matter what the wire does.
//! 2. **No wedging**: after the episode, a clean client connected
//!    directly to the server gets estimates **bit-identical** to the
//!    in-process path. Whatever the proxy did, the server fully recovered.
//! 3. **No leaks**: queues drain back to empty and a burst of pipelined
//!    batches up to the in-flight quota is admitted and served — chaos
//!    consumed no quota or queue slots permanently.
//!
//! A failing run prints its seed; re-running with `FJ_CHAOS_SEEDS=<seed>`
//! replays the exact same fault schedule.

use factorjoin::{BaseEstimatorKind, BinBudget, FactorJoinConfig, FactorJoinModel};
use fj_datagen::{stats_catalog, stats_ceb_workload, StatsConfig, WorkloadConfig};
use fj_query::Query;
use fj_service::{
    BatchOutcome, ClientConfig, FaultPlan, FaultProxy, FjClient, FjServer, RetryPolicy,
    ServerConfig, ShardSpec,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-call budget for clients talking through the proxy.
const CHAOS_BUDGET: Duration = Duration::from_secs(1);
/// Scheduling slack on top of the budget before an operation counts as
/// having outlived its deadline. Generous on purpose: the invariant is
/// "bounded", not "fast".
const SLACK: Duration = Duration::from_secs(10);
/// Batches the clean client may pipeline at once (the server quota).
const MAX_INFLIGHT: usize = 4;

/// The pinned CI seed set. Chosen to cover every fault family the plan
/// generator emits (chunking, delay, corruption, sever, stall, and
/// combinations, on either direction); override with
/// `FJ_CHAOS_SEEDS=1,2,3` to sweep different schedules.
const PINNED_SEEDS: &[u64] = &[1, 2, 3, 5, 8, 13, 21, 42, 0xfa17];

fn seeds() -> Vec<u64> {
    match std::env::var("FJ_CHAOS_SEEDS") {
        Ok(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("FJ_CHAOS_SEEDS: bad seed {s:?}"))
            })
            .collect(),
        Err(_) => PINNED_SEEDS.to_vec(),
    }
}

fn expected_bits(model: &FactorJoinModel, queries: &[Query]) -> Vec<Vec<(u64, u64)>> {
    queries
        .iter()
        .map(|q| {
            model
                .estimate_subplans(q, 1)
                .into_iter()
                .map(|(m, e)| (m, e.to_bits()))
                .collect()
        })
        .collect()
}

fn chaos_client_config(seed: u64) -> ClientConfig {
    ClientConfig::default()
        .with_connect_timeout(Some(CHAOS_BUDGET))
        .with_request_timeout(Some(CHAOS_BUDGET))
        .with_retry(
            RetryPolicy::retries(2)
                .with_base_backoff(Duration::from_millis(5))
                .with_seed(seed),
        )
}

/// Asserts the clean-path invariants: direct connection, bit-identical
/// estimates, live health endpoint, drained queue.
fn assert_server_healthy(
    addr: std::net::SocketAddr,
    queries: &[Query],
    expected: &[Vec<(u64, u64)>],
    context: &str,
) {
    let mut clean = FjClient::connect(addr)
        .unwrap_or_else(|e| panic!("{context}: clean client cannot connect: {e}"));
    match clean
        .call("stats", 1, queries)
        .unwrap_or_else(|e| panic!("{context}: clean call failed: {e}"))
    {
        BatchOutcome::Served(results) => {
            assert_eq!(results.len(), queries.len(), "{context}");
            for (qi, result) in results.iter().enumerate() {
                let est = result
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{context}: query {qi} errored: {e}"));
                let bits: Vec<(u64, u64)> = est
                    .estimates
                    .iter()
                    .map(|&(m, e)| (m, e.to_bits()))
                    .collect();
                assert_eq!(
                    bits, expected[qi],
                    "{context}: query {qi} estimates diverge after chaos"
                );
            }
        }
        other => panic!("{context}: clean batch rejected: {other:?}"),
    }
    let report = clean
        .health()
        .unwrap_or_else(|e| panic!("{context}: health failed: {e}"));
    assert!(!report.draining, "{context}: server claims to be draining");
    assert_eq!(
        report.shards[0].queue_depth, 0,
        "{context}: queue did not drain"
    );
}

#[test]
fn seeded_chaos_episodes_never_wedge_the_server() {
    let catalog = stats_catalog(&StatsConfig {
        scale: 0.03,
        ..Default::default()
    });
    let model = Arc::new(FactorJoinModel::train(
        &catalog,
        FactorJoinConfig {
            bin_budget: BinBudget::Uniform(20),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        },
    ));
    let queries: Vec<Query> = stats_ceb_workload(&catalog, &WorkloadConfig::tiny(61))[..3].to_vec();
    let expected = expected_bits(&model, &queries);

    let server = FjServer::bind(
        "127.0.0.1:0",
        vec![ShardSpec::new("stats", Arc::clone(&model))],
        ServerConfig::new(2).with_max_inflight(MAX_INFLIGHT),
    )
    .expect("bind server");
    let addr = server.local_addr();

    for seed in seeds() {
        let plan = FaultPlan::from_seed(seed);
        let proxy = FaultProxy::launch(addr, plan.clone())
            .unwrap_or_else(|e| panic!("seed {seed}: proxy launch failed: {e}"));

        // A client subjected to the episode's schedule. Connecting may
        // itself fail (the plan can cut the handshake) — that is a legal
        // outcome, as long as it is *bounded*.
        let episode_started = Instant::now();
        match FjClient::connect_with(proxy.local_addr(), chaos_client_config(seed)) {
            Ok(mut victim) => {
                for op in 0..2 {
                    let started = Instant::now();
                    // Served, rejected, or a transport error are all legal
                    // under fault injection; hanging past the budget is not.
                    let result = victim.call("stats", 1, &queries);
                    let elapsed = started.elapsed();
                    assert!(
                        elapsed < CHAOS_BUDGET + SLACK,
                        "seed {seed} (plan {plan:?}): op {op} outlived its \
                         deadline ({elapsed:?}), result {result:?}"
                    );
                }
            }
            Err(e) => {
                let elapsed = episode_started.elapsed();
                assert!(
                    elapsed < CHAOS_BUDGET + SLACK,
                    "seed {seed} (plan {plan:?}): connect hung {elapsed:?} before failing: {e}"
                );
            }
        }
        drop(proxy); // episode over: cut any stalled direction, join pumps

        // Invariant 2 + 3: the server is fully live and drained, serving
        // bit-identical answers to a clean client.
        assert_server_healthy(addr, &queries, &expected, &format!("after seed {seed}"));
    }

    // Invariant 3, quota half: chaos left no in-flight slots consumed — a
    // clean client can still pipeline a full quota's worth of batches and
    // every one is admitted and served.
    let mut clean = FjClient::connect(addr).expect("post-chaos connect");
    let ids: Vec<u64> = (0..MAX_INFLIGHT)
        .map(|_| clean.send("stats", 1, &queries).expect("pipelined send"))
        .collect();
    for id in ids {
        match clean.recv(id).expect("pipelined recv") {
            BatchOutcome::Served(results) => assert_eq!(results.len(), queries.len()),
            other => panic!("full-quota burst rejected after chaos: {other:?}"),
        }
    }

    server.shutdown();
}

/// Directed (non-random) episodes for the fault kinds that a random seed
/// might under-sample: a mid-frame stall on each direction and a sever on
/// each direction, each followed by the clean-path check.
#[test]
fn directed_stall_and_sever_episodes_are_bounded() {
    use fj_service::FaultScript;

    let catalog = stats_catalog(&StatsConfig {
        scale: 0.02,
        ..Default::default()
    });
    let model = Arc::new(FactorJoinModel::train(
        &catalog,
        FactorJoinConfig {
            bin_budget: BinBudget::Uniform(10),
            estimator: BaseEstimatorKind::TrueScan,
            ..Default::default()
        },
    ));
    let queries: Vec<Query> = stats_ceb_workload(&catalog, &WorkloadConfig::tiny(67))[..2].to_vec();
    let expected = expected_bits(&model, &queries);

    let server = FjServer::bind(
        "127.0.0.1:0",
        vec![ShardSpec::new("stats", Arc::clone(&model))],
        ServerConfig::new(1),
    )
    .expect("bind server");
    let addr = server.local_addr();

    // Offset 40 lands mid-stream: past the 13-byte hello exchange, inside
    // the first estimate frame.
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("uplink stall", FaultPlan::uplink(FaultScript::stall_at(40))),
        (
            "downlink stall",
            FaultPlan::downlink(FaultScript::stall_at(40)),
        ),
        ("uplink sever", FaultPlan::uplink(FaultScript::sever_at(40))),
        (
            "downlink sever",
            FaultPlan::downlink(FaultScript::sever_at(40)),
        ),
        (
            "uplink corrupt",
            FaultPlan::uplink(FaultScript::corrupt_at(30, 0xa5)),
        ),
        (
            "downlink corrupt",
            FaultPlan::downlink(FaultScript::corrupt_at(30, 0xa5)),
        ),
    ];
    for (name, plan) in plans {
        let proxy = FaultProxy::launch(addr, plan).expect("proxy launch");
        let started = Instant::now();
        match FjClient::connect_with(proxy.local_addr(), chaos_client_config(0)) {
            Ok(mut victim) => {
                let result = victim.call("stats", 1, &queries);
                let elapsed = started.elapsed();
                assert!(
                    elapsed < CHAOS_BUDGET + SLACK,
                    "{name}: op outlived its deadline ({elapsed:?}), result {result:?}"
                );
            }
            Err(e) => {
                let elapsed = started.elapsed();
                assert!(
                    elapsed < CHAOS_BUDGET + SLACK,
                    "{name}: connect hung {elapsed:?} before failing: {e}"
                );
            }
        }
        drop(proxy);
        assert_server_healthy(addr, &queries, &expected, name);
    }

    server.shutdown();
}
