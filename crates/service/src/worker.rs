//! Worker threads: each owns a long-lived estimation scratch and serves
//! requests from the shared queue.

use crate::queue::BoundedQueue;
use crate::registry::ModelRegistry;
use crate::request::{EstimateRequest, EstimateResponse, Reply, ServiceError};
use crate::stats::StatsInner;
use factorjoin::EstimationScratch;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A queued unit of work: the request plus its reply route.
pub(crate) struct Job {
    /// Multiplexing tag (0 for plain submits; wire request id for the
    /// network tier, whose connections share one reply channel).
    pub tag: u64,
    /// Index within the submitting batch (0 for single submits).
    pub index: usize,
    pub request: EstimateRequest,
    pub submitted: Instant,
    pub reply: mpsc::Sender<Reply>,
}

/// Spawns `count` workers draining `queue` until it is closed.
///
/// Each worker holds one [`EstimationScratch`] for its whole life — the
/// scratch-reuse contract of `SubplanEstimator` carried across requests
/// *and* across hot-swapped models (the scratch holds only buffers; every
/// request rebuilds its factors from the model it resolved, so reusing it
/// under a different model is sound). Model resolution happens per request
/// through the registry, which is what makes hot-swap atomic: a request is
/// served entirely by whichever model the registry held when the worker
/// picked it up.
pub(crate) fn spawn_workers(
    count: usize,
    default_dataset: String,
    queue: Arc<BoundedQueue<Job>>,
    registry: Arc<ModelRegistry>,
    stats: Arc<StatsInner>,
) -> Vec<JoinHandle<()>> {
    (0..count.max(1))
        .map(|worker_id| {
            let queue = Arc::clone(&queue);
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let default_dataset = default_dataset.clone();
            std::thread::Builder::new()
                .name(format!("fj-worker-{worker_id}"))
                .spawn(move || worker_loop(worker_id, &default_dataset, &queue, &registry, &stats))
                .expect("spawn worker thread")
        })
        .collect()
}

fn worker_loop(
    worker_id: usize,
    default_dataset: &str,
    queue: &BoundedQueue<Job>,
    registry: &ModelRegistry,
    stats: &StatsInner,
) {
    let mut scratch = EstimationScratch::default();
    while let Some(job) = queue.pop() {
        let picked_up = Instant::now();
        let dataset = job.request.dataset.as_deref().unwrap_or(default_dataset);
        let result = match registry.get(dataset) {
            None => {
                stats.record_error();
                Err(ServiceError::UnknownDataset(dataset.to_string()))
            }
            Some(handle) => {
                let estimates = handle.model.estimate_subplans_with(
                    &mut scratch,
                    &job.request.query,
                    job.request.min_size,
                );
                let response = EstimateResponse {
                    dataset: dataset.to_string(),
                    model_epoch: handle.epoch,
                    worker: worker_id,
                    queue_wait: picked_up.duration_since(job.submitted),
                    estimate_time: picked_up.elapsed(),
                    estimates,
                };
                stats.record_success(response.estimates.len(), response.latency());
                Ok(response)
            }
        };
        // A dropped ticket just means the client stopped waiting.
        let _ = job.reply.send((job.tag, job.index, result));
    }
}
