//! Worker threads: each owns a long-lived estimation scratch and serves
//! requests from the shared queue.

use crate::cache::{SubplanCache, FINGERPRINT_SEED};
use crate::queue::BoundedQueue;
use crate::registry::{ModelHandle, ModelRegistry};
use crate::request::{EstimateRequest, EstimateResponse, Reply, ServiceError};
use crate::stats::StatsInner;
use factorjoin::EstimationScratch;
use fj_query::{subplan_fingerprints, SubplanMask};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A queued unit of work: the request plus its reply route.
pub(crate) struct Job {
    /// Multiplexing tag (0 for plain submits; wire request id for the
    /// network tier, whose connections share one reply channel).
    pub tag: u64,
    /// Index within the submitting batch (0 for single submits).
    pub index: usize,
    pub request: EstimateRequest,
    pub submitted: Instant,
    pub reply: mpsc::Sender<Reply>,
}

/// Spawns `count` workers draining `queue` until it is closed.
///
/// Each worker holds one [`EstimationScratch`] for its whole life — the
/// scratch-reuse contract of `SubplanEstimator` carried across requests
/// *and* across hot-swapped models (the scratch holds only buffers; every
/// request rebuilds its factors from the model it resolved, so reusing it
/// under a different model is sound). Model resolution happens per request
/// through the registry, which is what makes hot-swap atomic: a request is
/// served entirely by whichever model the registry held when the worker
/// picked it up.
pub(crate) fn spawn_workers(
    count: usize,
    default_dataset: String,
    queue: Arc<BoundedQueue<Job>>,
    registry: Arc<ModelRegistry>,
    stats: Arc<StatsInner>,
    cache: Option<Arc<SubplanCache>>,
) -> Vec<JoinHandle<()>> {
    (0..count.max(1))
        .map(|worker_id| {
            let queue = Arc::clone(&queue);
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let cache = cache.clone();
            let default_dataset = default_dataset.clone();
            std::thread::Builder::new()
                .name(format!("fj-worker-{worker_id}"))
                .spawn(move || {
                    worker_loop(
                        worker_id,
                        &default_dataset,
                        &queue,
                        &registry,
                        &stats,
                        cache.as_deref(),
                    )
                })
                .expect("spawn worker thread")
        })
        .collect()
}

fn worker_loop(
    worker_id: usize,
    default_dataset: &str,
    queue: &BoundedQueue<Job>,
    registry: &ModelRegistry,
    stats: &StatsInner,
    cache: Option<&SubplanCache>,
) {
    let mut scratch = EstimationScratch::default();
    while let Some(job) = queue.pop() {
        let picked_up = Instant::now();
        // Shed already-expired work before touching the model: the caller
        // stopped waiting, so estimating would only steal CPU from live
        // requests. The ticket still resolves (with DeadlineExceeded) so
        // nothing upstream hangs.
        if let Some(deadline) = job.request.deadline {
            if picked_up >= deadline {
                stats.record_expired();
                let result = Err(ServiceError::DeadlineExceeded);
                let _ = job.reply.send((job.tag, job.index, result));
                continue;
            }
        }
        let dataset = job.request.dataset.as_deref().unwrap_or(default_dataset);
        let result = match registry.get(dataset) {
            None => {
                stats.record_error();
                Err(ServiceError::UnknownDataset(dataset.to_string()))
            }
            Some(handle) => {
                // Contain estimator panics: the scratch holds only buffers,
                // but a panic can leave them in an arbitrary state, so it is
                // rebuilt. AssertUnwindSafe is sound because nothing else
                // aliases the scratch and the model is read-only.
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    estimate_through_cache(&handle, &mut scratch, &job.request, stats, cache)
                }));
                match attempt {
                    Ok(estimates) => {
                        let response = EstimateResponse {
                            dataset: dataset.to_string(),
                            model_epoch: handle.epoch,
                            worker: worker_id,
                            queue_wait: picked_up.duration_since(job.submitted),
                            estimate_time: picked_up.elapsed(),
                            estimates,
                        };
                        stats.record_success(
                            response.estimates.len(),
                            response.queue_wait,
                            response.estimate_time,
                        );
                        Ok(response)
                    }
                    Err(payload) => {
                        scratch = EstimationScratch::default();
                        stats.record_worker_panic();
                        Err(ServiceError::WorkerPanicked(panic_message(&payload)))
                    }
                }
            }
        };
        // A dropped ticket just means the client stopped waiting.
        let _ = job.reply.send((job.tag, job.index, result));
    }
}

/// Serve the request's sub-plan estimates, consulting the sub-plan cache
/// when one is configured.
///
/// The read is **all-or-nothing**: the response is assembled from the
/// cache only when *every* sub-plan of the request hits under the
/// handle's epoch — a partial assembly would interleave cached bits with
/// a fresh computation for no latency win, and the all-or-nothing rule
/// keeps the hit/miss accounting a clean per-request split. On any miss
/// the whole request is computed by the model (the uncached path,
/// unchanged) and every `(mask, estimate)` pair is inserted, so the next
/// repeat hits.
///
/// Correctness hinges on two facts proven elsewhere:
/// * `subplan_fingerprints` enumerates masks in exactly the order
///   `estimate_subplans_with` returns them (asserted in debug builds),
///   and equal fingerprints imply bit-identical estimates — so a hit
///   reproduces the miss exactly (`f64::to_bits` round-trip, no
///   arithmetic).
/// * Registry epochs are globally unique and monotonic, so keying on
///   `handle.epoch` makes entries from a superseded model unreachable
///   the instant `swap_model`/`apply_insert` publishes: a request is
///   served entirely by the model *and cache generation* it resolved.
fn estimate_through_cache(
    handle: &ModelHandle,
    scratch: &mut EstimationScratch,
    request: &EstimateRequest,
    stats: &StatsInner,
    cache: Option<&SubplanCache>,
) -> Vec<(SubplanMask, f64)> {
    let Some(cache) = cache else {
        return handle
            .model
            .estimate_subplans_with(scratch, &request.query, request.min_size);
    };
    let fps = subplan_fingerprints(&request.query, request.min_size, FINGERPRINT_SEED);
    let mut cached = Vec::with_capacity(fps.len());
    for &(mask, fp) in &fps {
        match cache.get(handle.epoch, mask, fp) {
            Some(bits) => cached.push((mask, f64::from_bits(bits))),
            None => {
                cached.clear();
                break;
            }
        }
    }
    if !fps.is_empty() && cached.len() == fps.len() {
        stats.record_cache_hits(cached.len());
        return cached;
    }
    let estimates = handle
        .model
        .estimate_subplans_with(scratch, &request.query, request.min_size);
    debug_assert_eq!(
        estimates.len(),
        fps.len(),
        "fingerprint enumeration must mirror estimate_subplans_with"
    );
    let mut evictions = 0usize;
    for ((mask, estimate), &(fp_mask, fp)) in estimates.iter().zip(&fps) {
        debug_assert_eq!(*mask, fp_mask, "sub-plan order must match");
        if cache.insert(handle.epoch, fp_mask, fp, estimate.to_bits()) {
            evictions += 1;
        }
    }
    stats.record_cache_misses(estimates.len(), evictions);
    estimates
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}
