//! A bounded multi-producer/multi-consumer queue on std primitives.
//!
//! The build environment has no async runtime (and the registry is
//! unreachable, so none can be added); the service therefore runs on
//! `std::thread` with this hand-rolled `Mutex` + `Condvar` queue. Pushing
//! into a full queue blocks the producer — bounded capacity is the service's
//! backpressure: a client cannot outrun the worker pool by more than
//! `capacity` requests. The queue also tracks its depth high-water mark,
//! which the service reports as a load signal.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Error returned when pushing into a closed queue; carries the rejected
/// items back to the caller.
#[derive(Debug)]
pub struct Closed<T>(pub Vec<T>);

/// Error from [`BoundedQueue::try_push_many`]; carries the whole batch
/// back to the caller (the non-blocking path is all-or-nothing).
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue has been closed.
    Closed(Vec<T>),
    /// The queue lacks room for the whole batch right now.
    Full(Vec<T>),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// Bounded blocking MPMC queue (see module docs).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks until there is room, then enqueues `item`. Fails only when
    /// the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), Closed<T>> {
        self.push_many(vec![item])
    }

    /// Enqueues a batch under a single lock acquisition (the batched-submit
    /// fast path), blocking for room as needed. Items already enqueued when
    /// the queue closes mid-batch stay enqueued; the remainder comes back
    /// in the error.
    pub fn push_many(&self, items: Vec<T>) -> Result<(), Closed<T>> {
        let mut pending = items.into_iter();
        let mut next = pending.next();
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return Err(Closed(next.into_iter().chain(pending).collect()));
            }
            while next.is_some() && state.items.len() < self.capacity {
                state.items.push_back(next.take().expect("checked above"));
                next = pending.next();
            }
            state.high_water = state.high_water.max(state.items.len());
            if next.is_none() {
                // Everything enqueued — never wait for room we don't need
                // (even when the last item exactly filled the queue).
                drop(state);
                self.not_empty.notify_all();
                return Ok(());
            }
            self.not_empty.notify_all();
            state = self.not_full.wait(state).expect("queue lock");
        }
    }

    /// Non-blocking, all-or-nothing batch enqueue: succeeds only when the
    /// queue is open *and* has room for the entire batch, otherwise hands
    /// the batch back untouched. This is the admission-control primitive —
    /// a serving tier that must never block a network thread sheds load
    /// through the error instead of waiting for room.
    pub fn try_push_many(&self, items: Vec<T>) -> Result<(), TryPushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(TryPushError::Closed(items));
        }
        if self.capacity - state.items.len() < items.len() {
            return Err(TryPushError::Full(items));
        }
        for item in items {
            state.items.push_back(item);
        }
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.not_empty.notify_all();
        Ok(())
    }

    /// Blocks for the next item. Returns `None` once the queue is closed
    /// *and* drained — consumers see every item pushed before `close`.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Closes the queue: further pushes fail, pops drain what remains.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has been since construction or the last
    /// [`Self::reset_high_water`] (the service reports this as a
    /// saturation signal: a high-water mark at capacity means producers
    /// were blocked on backpressure).
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue lock").high_water
    }

    /// Restarts the high-water tracking window at the current depth (the
    /// service resets it together with its other stats, so a saturated
    /// warm-up cannot masquerade as backpressure in the measured window).
    pub fn reset_high_water(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.high_water = state.items.len();
    }

    /// Current depth and high-water mark under one lock acquisition — the
    /// stats-snapshot path reads both, and two separate locks would double
    /// the contention against producers for no benefit.
    pub fn depth_and_high_water(&self) -> (usize, usize) {
        let state = self.state.lock().expect("queue lock");
        (state.items.len(), state.high_water)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push_many(vec![2, 3]).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    fn high_water_resets_to_current_depth() {
        let q = BoundedQueue::new(4);
        q.push_many(vec![1, 2, 3]).unwrap();
        q.pop();
        q.pop();
        assert_eq!(q.high_water(), 3);
        q.reset_high_water();
        assert_eq!(q.high_water(), 1, "window restarts at the current depth");
        q.push(4).unwrap();
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn exactly_filling_push_returns_without_waiting() {
        // Regression: a batch whose last item lands the queue exactly at
        // capacity must return, not wait for room it does not need.
        let q = BoundedQueue::new(2);
        q.push_many(vec![1, 2]).unwrap();
        assert_eq!(q.len(), 2);
        let q1 = BoundedQueue::new(1);
        q1.push(7).unwrap();
        assert_eq!(q1.pop(), Some(7));
    }

    #[test]
    fn try_push_many_is_all_or_nothing() {
        let q = BoundedQueue::new(3);
        q.try_push_many(vec![1, 2]).unwrap();
        // Batch of 2 into 1 free slot: rejected whole, nothing enqueued.
        match q.try_push_many(vec![3, 4]) {
            Err(TryPushError::Full(items)) => assert_eq!(items, vec![3, 4]),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        // Exactly-filling batch fits.
        q.try_push_many(vec![5]).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.high_water(), 3);
        q.close();
        match q.try_push_many(vec![6]) {
            Err(TryPushError::Closed(items)) => assert_eq!(items, vec![6]),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_drains_then_none() {
        let q = BoundedQueue::new(4);
        q.push_many(vec![1, 2]).unwrap();
        q.close();
        assert!(matches!(q.push(3), Err(Closed(items)) if items == vec![3]));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queue stays closed");
    }

    #[test]
    fn bounded_push_blocks_until_pop() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push_many(vec![1, 2]).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(3).is_ok())
        };
        // The producer is blocked on a full queue; popping frees a slot.
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn oversized_batch_streams_through() {
        let q = Arc::new(BoundedQueue::new(3));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        q.push_many((0..100).collect()).unwrap();
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut sum = 0u64;
                    let mut count = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                        count += 1;
                    }
                    (sum, count)
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..250u64 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let (mut sum, mut count) = (0, 0);
        for c in consumers {
            let (s, n) = c.join().unwrap();
            sum += s;
            count += n;
        }
        assert_eq!(count, 1000);
        let expected: u64 = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .sum();
        assert_eq!(sum, expected);
    }
}
