//! The estimator service: a worker pool over a bounded request queue.

use crate::queue::BoundedQueue;
use crate::registry::ModelRegistry;
use crate::request::{BatchTicket, EstimateRequest, Reply, Ticket};
use crate::stats::{StatsInner, StatsSnapshot};
use crate::worker::{spawn_workers, Job};
use factorjoin::FactorJoinModel;
use fj_query::Query;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads, each holding a long-lived estimation scratch.
    pub workers: usize,
    /// Bounded request-queue capacity — the backpressure limit: submits
    /// block once this many requests are in flight but unclaimed.
    pub queue_capacity: usize,
    /// Dataset served when a request does not name one.
    pub default_dataset: String,
}

impl ServiceConfig {
    /// A config serving `default_dataset` with `workers` threads and a
    /// 1024-deep queue.
    pub fn new(default_dataset: &str, workers: usize) -> Self {
        ServiceConfig {
            workers,
            queue_capacity: 1024,
            default_dataset: default_dataset.to_string(),
        }
    }

    /// Overrides the queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }
}

/// A running, concurrent cardinality-estimation service (see crate docs).
///
/// Dropping the service shuts it down: the queue closes, workers drain
/// every already-submitted request (their tickets still resolve), then the
/// worker threads are joined.
pub struct EstimatorService {
    queue: Arc<BoundedQueue<Job>>,
    registry: Arc<ModelRegistry>,
    stats: Arc<StatsInner>,
    workers: Vec<JoinHandle<()>>,
}

impl EstimatorService {
    /// Starts the worker pool against an existing (shareable) registry.
    pub fn start(registry: Arc<ModelRegistry>, config: ServiceConfig) -> Self {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let stats = Arc::new(StatsInner::new());
        let workers = spawn_workers(
            config.workers,
            config.default_dataset,
            Arc::clone(&queue),
            Arc::clone(&registry),
            Arc::clone(&stats),
        );
        EstimatorService {
            queue,
            registry,
            stats,
            workers,
        }
    }

    /// Convenience: a fresh registry holding one model, served by
    /// `workers` threads.
    pub fn serve(dataset: &str, model: Arc<FactorJoinModel>, workers: usize) -> Self {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(dataset, model);
        Self::start(registry, ServiceConfig::new(dataset, workers))
    }

    /// Submits one query against the default dataset (every connected
    /// sub-plan). Blocks only when the queue is at capacity.
    pub fn submit(&self, query: Query) -> Ticket {
        self.submit_request(EstimateRequest::new(query))
    }

    /// Submits one request.
    pub fn submit_request(&self, request: EstimateRequest) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            index: 0,
            request,
            submitted: Instant::now(),
            reply: tx,
        };
        // A closed queue drops the job (and its reply sender) here, which
        // surfaces to the caller as ServiceError::Shutdown on wait().
        let _ = self.queue.push(job);
        Ticket { rx }
    }

    /// Submits a batch of queries against the default dataset. The whole
    /// batch shares one reply channel and is enqueued under one queue lock
    /// acquisition, so batched submission stays cheap at high request
    /// rates.
    pub fn submit_batch(&self, queries: &[Query]) -> BatchTicket {
        self.submit_requests(queries.iter().cloned().map(EstimateRequest::new).collect())
    }

    /// [`Self::submit_batch`] with per-request control.
    pub fn submit_requests(&self, requests: Vec<EstimateRequest>) -> BatchTicket {
        let (tx, rx) = mpsc::channel::<Reply>();
        let expected = requests.len();
        let submitted = Instant::now();
        let jobs: Vec<Job> = requests
            .into_iter()
            .enumerate()
            .map(|(index, request)| Job {
                index,
                request,
                submitted,
                reply: tx.clone(),
            })
            .collect();
        let _ = self.queue.push_many(jobs);
        BatchTicket { rx, expected }
    }

    /// The shared registry (publish/swap models through this).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Service statistics since start (or the last [`Self::reset_stats`]).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats
            .snapshot(self.queue.len(), self.queue.high_water())
    }

    /// Clears counters/latencies, restarts the measurement window, and
    /// resets the queue high-water mark (between benchmark warm-up and the
    /// timed run).
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.queue.reset_high_water();
    }

    /// Shuts down: rejects new submits, serves everything already queued,
    /// joins the workers. (`Drop` does the same; this form is explicit.)
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for EstimatorService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServiceError;
    use factorjoin::{BaseEstimatorKind, BinBudget, FactorJoinConfig};
    use fj_datagen::{stats_catalog, stats_ceb_workload, StatsConfig, WorkloadConfig};

    fn tiny_setup() -> (Arc<FactorJoinModel>, Vec<Query>) {
        let cat = stats_catalog(&StatsConfig {
            scale: 0.02,
            ..Default::default()
        });
        let model = FactorJoinModel::train(
            &cat,
            FactorJoinConfig {
                bin_budget: BinBudget::Uniform(10),
                estimator: BaseEstimatorKind::TrueScan,
                ..Default::default()
            },
        );
        let wl = stats_ceb_workload(&cat, &WorkloadConfig::tiny(3));
        (Arc::new(model), wl)
    }

    #[test]
    fn serves_single_and_batch() {
        let (model, wl) = tiny_setup();
        let expected: Vec<_> = wl.iter().map(|q| model.estimate_subplans(q, 1)).collect();
        let service = EstimatorService::serve("stats", Arc::clone(&model), 2);

        let got = service.submit(wl[0].clone()).wait().unwrap();
        assert_eq!(got.estimates, expected[0]);
        assert_eq!(got.dataset, "stats");
        assert!(got.worker < 2);

        let batch = service.submit_batch(&wl).wait_all();
        assert_eq!(batch.len(), wl.len());
        for (resp, exp) in batch.iter().zip(&expected) {
            assert_eq!(resp.as_ref().unwrap().estimates, *exp);
        }
        let snap = service.stats();
        assert_eq!(snap.requests as usize, wl.len() + 1);
        assert!(snap.subplans > 0);
        assert_eq!(snap.errors, 0);
    }

    #[test]
    fn unknown_dataset_errors() {
        let (model, wl) = tiny_setup();
        let service = EstimatorService::serve("stats", model, 1);
        let err = service
            .submit_request(EstimateRequest::new(wl[0].clone()).on_dataset("nope"))
            .wait()
            .unwrap_err();
        assert_eq!(err, ServiceError::UnknownDataset("nope".into()));
        assert_eq!(service.stats().errors, 1);
    }

    #[test]
    fn min_size_filters_subplans() {
        let (model, wl) = tiny_setup();
        let service = EstimatorService::serve("stats", Arc::clone(&model), 1);
        let resp = service
            .submit_request(EstimateRequest::new(wl[0].clone()).with_min_size(2))
            .wait()
            .unwrap();
        assert_eq!(resp.estimates, model.estimate_subplans(&wl[0], 2));
        assert!(resp.estimates.iter().all(|(m, _)| m.count_ones() >= 2));
    }

    #[test]
    fn shutdown_serves_queued_then_rejects() {
        let (model, wl) = tiny_setup();
        let service = EstimatorService::serve("stats", Arc::clone(&model), 1);
        let ticket = service.submit(wl[0].clone());
        service.shutdown();
        // Submitted before shutdown → still served.
        assert!(ticket.wait().is_ok());
        // (The service is consumed by shutdown; nothing further to submit.)
    }

    #[test]
    fn ticket_after_drop_reports_shutdown() {
        let (model, wl) = tiny_setup();
        let expected = model.estimate_subplans(&wl[0], 1);
        let ticket;
        {
            let service = EstimatorService::serve("stats", Arc::clone(&model), 1);
            ticket = service.submit(wl[0].clone());
            // Drop closes the queue but drains queued work first.
        }
        match ticket.wait() {
            Ok(resp) => assert_eq!(resp.estimates, expected),
            Err(e) => panic!("queued request should have been drained: {e}"),
        }
    }
}
