//! The estimator service: a worker pool over a bounded request queue.

use crate::cache::SubplanCache;
use crate::queue::{BoundedQueue, TryPushError};
use crate::registry::ModelRegistry;
use crate::request::{
    AdmissionRejected, BatchTicket, EstimateRequest, RejectReason, Reply, ServiceError, Ticket,
};
use crate::stats::{StatsInner, StatsSnapshot};
use crate::worker::{spawn_workers, Job};
use factorjoin::FactorJoinModel;
use fj_obs::MetricsRegistry;
use fj_query::Query;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads, each holding a long-lived estimation scratch.
    pub workers: usize,
    /// Bounded request-queue capacity — the backpressure limit: submits
    /// block once this many requests are in flight but unclaimed.
    pub queue_capacity: usize,
    /// Dataset served when a request does not name one.
    pub default_dataset: String,
    /// When false, workers skip latency/stage histogram recording
    /// (counters still tick, so throughput math keeps working) — the
    /// no-op recorder the bench's metrics-overhead gate compares against.
    /// Defaults to true.
    pub metrics_enabled: bool,
    /// Total capacity (in cached sub-plan estimates) of the sharded
    /// sub-plan estimate cache, rounded up to the cache's set geometry.
    /// `0` disables the cache entirely (the bench's uncached arm);
    /// defaults to 65 536 entries ≈ 2 MiB.
    pub subplan_cache_entries: usize,
}

impl ServiceConfig {
    /// A config serving `default_dataset` with `workers` threads and a
    /// 1024-deep queue.
    pub fn new(default_dataset: &str, workers: usize) -> Self {
        ServiceConfig {
            workers,
            queue_capacity: 1024,
            default_dataset: default_dataset.to_string(),
            metrics_enabled: true,
            subplan_cache_entries: 65_536,
        }
    }

    /// Overrides the queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Toggles histogram recording (see [`ServiceConfig::metrics_enabled`]).
    pub fn with_metrics_enabled(mut self, enabled: bool) -> Self {
        self.metrics_enabled = enabled;
        self
    }

    /// Sets the sub-plan estimate cache capacity; `0` disables the cache
    /// (see [`ServiceConfig::subplan_cache_entries`]).
    pub fn with_subplan_cache_entries(mut self, entries: usize) -> Self {
        self.subplan_cache_entries = entries;
        self
    }
}

/// A running, concurrent cardinality-estimation service (see crate docs).
///
/// Dropping the service shuts it down: the queue closes, workers drain
/// every already-submitted request (their tickets still resolve), then the
/// worker threads are joined.
pub struct EstimatorService {
    queue: Arc<BoundedQueue<Job>>,
    registry: Arc<ModelRegistry>,
    stats: Arc<StatsInner>,
    cache: Option<Arc<SubplanCache>>,
    workers: Vec<JoinHandle<()>>,
}

impl EstimatorService {
    /// Starts the worker pool against an existing (shareable) registry.
    pub fn start(registry: Arc<ModelRegistry>, config: ServiceConfig) -> Self {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let stats = Arc::new(StatsInner::with_histograms(config.metrics_enabled));
        let cache = (config.subplan_cache_entries > 0)
            .then(|| Arc::new(SubplanCache::new(config.subplan_cache_entries)));
        let workers = spawn_workers(
            config.workers,
            config.default_dataset,
            Arc::clone(&queue),
            Arc::clone(&registry),
            Arc::clone(&stats),
            cache.clone(),
        );
        EstimatorService {
            queue,
            registry,
            stats,
            cache,
            workers,
        }
    }

    /// Convenience: a fresh registry holding one model, served by
    /// `workers` threads.
    pub fn serve(dataset: &str, model: Arc<FactorJoinModel>, workers: usize) -> Self {
        let registry = Arc::new(ModelRegistry::new());
        registry.publish(dataset, model);
        Self::start(registry, ServiceConfig::new(dataset, workers))
    }

    /// Submits one query against the default dataset (every connected
    /// sub-plan). Blocks only when the queue is at capacity.
    pub fn submit(&self, query: Query) -> Ticket {
        self.submit_request(EstimateRequest::new(query))
    }

    /// Submits one request. If the service is already shutting down, the
    /// returned ticket resolves with [`ServiceError::SubmitAfterShutdown`]
    /// — the error is never silently dropped.
    pub fn submit_request(&self, request: EstimateRequest) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            tag: 0,
            index: 0,
            request,
            submitted: Instant::now(),
            reply: tx,
        };
        if let Err(crate::queue::Closed(rejected)) = self.queue.push(job) {
            for job in rejected {
                let _ =
                    job.reply
                        .send((job.tag, job.index, Err(ServiceError::SubmitAfterShutdown)));
            }
        }
        Ticket { rx }
    }

    /// Submits a batch of queries against the default dataset. The whole
    /// batch shares one reply channel and is enqueued under one queue lock
    /// acquisition, so batched submission stays cheap at high request
    /// rates.
    pub fn submit_batch(&self, queries: &[Query]) -> BatchTicket {
        self.submit_requests(queries.iter().cloned().map(EstimateRequest::new).collect())
    }

    /// [`Self::submit_batch`] with per-request control.
    ///
    /// A batch that races shutdown can be **partially** enqueued: the
    /// already-queued prefix is drained and resolves normally, while the
    /// dropped remainder resolves with
    /// [`ServiceError::SubmitAfterShutdown`]. The returned ticket's
    /// [`BatchTicket::accepted`] reports how many requests made it in.
    pub fn submit_requests(&self, requests: Vec<EstimateRequest>) -> BatchTicket {
        let (tx, rx) = mpsc::channel::<Reply>();
        let expected = requests.len();
        let jobs = Self::make_jobs(requests, 0, &tx);
        let accepted = match self.queue.push_many(jobs) {
            Ok(()) => expected,
            Err(crate::queue::Closed(rejected)) => {
                let accepted = expected - rejected.len();
                for job in rejected {
                    let _ = job.reply.send((
                        job.tag,
                        job.index,
                        Err(ServiceError::SubmitAfterShutdown),
                    ));
                }
                accepted
            }
        };
        BatchTicket {
            rx,
            expected,
            accepted,
        }
    }

    /// Non-blocking, all-or-nothing batch submission — the admission-
    /// control path for serving tiers that must never stall a network
    /// thread. The batch is enqueued only when the queue is open and has
    /// room for all of it; otherwise it comes back in
    /// [`AdmissionRejected`] (reason [`RejectReason::Overloaded`] on a
    /// full queue — counted as shed load in [`StatsSnapshot::shed`] — or
    /// [`RejectReason::ShuttingDown`] on a closed one).
    pub fn offer_requests(
        &self,
        requests: Vec<EstimateRequest>,
    ) -> Result<BatchTicket, AdmissionRejected> {
        let (tx, rx) = mpsc::channel::<Reply>();
        let expected = requests.len();
        self.offer_jobs(requests, 0, &tx)?;
        Ok(BatchTicket {
            rx,
            expected,
            accepted: expected,
        })
    }

    /// [`Self::offer_requests`] routing replies to a caller-owned channel,
    /// tagged so interleaved batches can share it (the network tier's
    /// submission path: one reply channel per connection, tag = wire
    /// request id).
    pub(crate) fn offer_tagged(
        &self,
        requests: Vec<EstimateRequest>,
        tag: u64,
        reply: &mpsc::Sender<Reply>,
    ) -> Result<(), AdmissionRejected> {
        self.offer_jobs(requests, tag, reply)
    }

    fn make_jobs(
        requests: Vec<EstimateRequest>,
        tag: u64,
        reply: &mpsc::Sender<Reply>,
    ) -> Vec<Job> {
        let submitted = Instant::now();
        requests
            .into_iter()
            .enumerate()
            .map(|(index, request)| Job {
                tag,
                index,
                request,
                submitted,
                reply: reply.clone(),
            })
            .collect()
    }

    fn offer_jobs(
        &self,
        requests: Vec<EstimateRequest>,
        tag: u64,
        reply: &mpsc::Sender<Reply>,
    ) -> Result<(), AdmissionRejected> {
        let count = requests.len();
        let jobs = Self::make_jobs(requests, tag, reply);
        match self.queue.try_push_many(jobs) {
            Ok(()) => Ok(()),
            Err(err) => {
                let (reason, jobs) = match err {
                    TryPushError::Full(jobs) => {
                        self.stats.record_shed(count);
                        (RejectReason::Overloaded, jobs)
                    }
                    TryPushError::Closed(jobs) => (RejectReason::ShuttingDown, jobs),
                };
                Err(AdmissionRejected {
                    reason,
                    requests: jobs.into_iter().map(|j| j.request).collect(),
                })
            }
        }
    }

    /// Counts an admission-control rejection (per-client quota) in
    /// [`StatsSnapshot::rejected`]. Called by serving tiers layered on
    /// top — quota policy lives with the connection state they own, but
    /// the counter belongs to the service the client was refused.
    pub fn record_admission_rejection(&self) {
        self.stats.record_rejected();
    }

    /// The shared registry (publish/swap models through this).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The sub-plan estimate cache, or `None` when disabled
    /// ([`ServiceConfig::subplan_cache_entries`] = 0).
    pub fn subplan_cache(&self) -> Option<&Arc<SubplanCache>> {
        self.cache.as_ref()
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Requests queued but not yet picked up by a worker (a health-probe
    /// load signal).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The bounded queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Register this service's counters, latency/stage histograms, and a
    /// live queue-depth gauge into `registry`, labelled with `dataset`.
    /// Entries are closure-backed `Arc` clones: the hot path records into
    /// the same atomics it always did and never touches the registry.
    pub fn install_metrics(&self, registry: &MetricsRegistry, dataset: &str) {
        self.stats.install_metrics(registry, dataset);
        let queue = Arc::clone(&self.queue);
        registry.register_gauge_fn(
            "fj_queue_depth",
            "Requests queued but not yet picked up by a worker.",
            &[("dataset", dataset)],
            move || queue.len() as f64,
        );
    }

    /// The shard's raw stats, for cross-shard merging ([`crate::FjServer::stats_merged`]).
    pub(crate) fn stats_inner(&self) -> &Arc<StatsInner> {
        &self.stats
    }

    /// Queue depth and high-water mark under one lock, for snapshots.
    pub(crate) fn queue_depth_and_high_water(&self) -> (usize, usize) {
        self.queue.depth_and_high_water()
    }

    /// Service statistics since start (or the last [`Self::reset_stats`]).
    pub fn stats(&self) -> StatsSnapshot {
        let (depth, high_water) = self.queue.depth_and_high_water();
        self.stats.snapshot(depth, high_water)
    }

    /// Clears counters/latencies, restarts the measurement window, and
    /// resets the queue high-water mark (between benchmark warm-up and the
    /// timed run).
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.queue.reset_high_water();
    }

    /// Shuts down: rejects new submits, serves everything already queued,
    /// joins the workers. (`Drop` does the same; this form is explicit.)
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for EstimatorService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServiceError;
    use factorjoin::{BaseEstimatorKind, BinBudget, FactorJoinConfig};
    use fj_datagen::{stats_catalog, stats_ceb_workload, StatsConfig, WorkloadConfig};

    fn tiny_setup() -> (Arc<FactorJoinModel>, Vec<Query>) {
        let cat = stats_catalog(&StatsConfig {
            scale: 0.02,
            ..Default::default()
        });
        let model = FactorJoinModel::train(
            &cat,
            FactorJoinConfig {
                bin_budget: BinBudget::Uniform(10),
                estimator: BaseEstimatorKind::TrueScan,
                ..Default::default()
            },
        );
        let wl = stats_ceb_workload(&cat, &WorkloadConfig::tiny(3));
        (Arc::new(model), wl)
    }

    #[test]
    fn serves_single_and_batch() {
        let (model, wl) = tiny_setup();
        let expected: Vec<_> = wl.iter().map(|q| model.estimate_subplans(q, 1)).collect();
        let service = EstimatorService::serve("stats", Arc::clone(&model), 2);

        let got = service.submit(wl[0].clone()).wait().unwrap();
        assert_eq!(got.estimates, expected[0]);
        assert_eq!(got.dataset, "stats");
        assert!(got.worker < 2);

        let batch = service.submit_batch(&wl).wait_all();
        assert_eq!(batch.len(), wl.len());
        for (resp, exp) in batch.iter().zip(&expected) {
            assert_eq!(resp.as_ref().unwrap().estimates, *exp);
        }
        let snap = service.stats();
        assert_eq!(snap.requests as usize, wl.len() + 1);
        assert!(snap.subplans > 0);
        assert_eq!(snap.errors, 0);
    }

    #[test]
    fn unknown_dataset_errors() {
        let (model, wl) = tiny_setup();
        let service = EstimatorService::serve("stats", model, 1);
        let err = service
            .submit_request(EstimateRequest::new(wl[0].clone()).on_dataset("nope"))
            .wait()
            .unwrap_err();
        assert_eq!(err, ServiceError::UnknownDataset("nope".into()));
        assert_eq!(service.stats().errors, 1);
    }

    #[test]
    fn min_size_filters_subplans() {
        let (model, wl) = tiny_setup();
        let service = EstimatorService::serve("stats", Arc::clone(&model), 1);
        let resp = service
            .submit_request(EstimateRequest::new(wl[0].clone()).with_min_size(2))
            .wait()
            .unwrap();
        assert_eq!(resp.estimates, model.estimate_subplans(&wl[0], 2));
        assert!(resp.estimates.iter().all(|(m, _)| m.count_ones() >= 2));
    }

    /// A worker-less service (private constructor): jobs stay queued until
    /// the test drains them, making submit/close races deterministic.
    fn stalled_service(queue_capacity: usize) -> EstimatorService {
        EstimatorService {
            queue: Arc::new(BoundedQueue::new(queue_capacity)),
            registry: Arc::new(ModelRegistry::new()),
            stats: Arc::new(StatsInner::new()),
            cache: None,
            workers: Vec::new(),
        }
    }

    #[test]
    fn submit_after_close_resolves_with_distinct_error() {
        // Regression: the Closed error from the queue used to be discarded
        // (`let _ = self.queue.push(job)`), leaving the caller with only a
        // generic Shutdown after an arbitrary wait. Submission against a
        // closed queue must resolve immediately and distinctly.
        let (model, wl) = tiny_setup();
        let service = stalled_service(4);
        service.registry.publish("stats", model);
        service.queue.close();

        let err = service.submit(wl[0].clone()).wait().unwrap_err();
        assert_eq!(err, ServiceError::SubmitAfterShutdown);

        let ticket = service.submit_batch(&wl);
        assert_eq!(ticket.accepted(), 0, "nothing was enqueued");
        for result in ticket.wait_all() {
            assert_eq!(result.unwrap_err(), ServiceError::SubmitAfterShutdown);
        }
    }

    #[test]
    fn close_during_submit_batch_reports_partial_acceptance() {
        // Regression: a batch that races shutdown is *partially* enqueued
        // — push_many blocks on a full queue, close() wakes it, and the
        // remainder comes back Closed. The dropped remainder must resolve
        // with SubmitAfterShutdown (not hang, not generic Shutdown) and
        // accepted() must report the enqueued prefix.
        let (model, wl) = tiny_setup();
        let service = stalled_service(1); // room for exactly one job
        service.registry.publish("stats", model);

        let requests: Vec<EstimateRequest> = wl.iter().cloned().map(EstimateRequest::new).collect();
        let batch_len = requests.len();
        assert!(batch_len >= 2, "need a batch larger than the queue");

        let ticket = std::thread::scope(|s| {
            let submitter = s.spawn(|| service.submit_requests(requests));
            // Wait for the submitter to fill the queue and block for room,
            // then close — the exact mid-batch shutdown race.
            while service.queue.is_empty() {
                std::thread::yield_now();
            }
            service.queue.close();
            submitter.join().expect("submitter thread")
        });
        assert_eq!(ticket.len(), batch_len);
        assert_eq!(ticket.accepted(), 1, "one job fit before the close");

        // Drain the accepted job as a worker would, so its slot resolves.
        let job = service.queue.pop().expect("the accepted job is queued");
        assert_eq!(job.index, 0, "the enqueued prefix comes first");
        let handle = service.registry.get("stats").expect("published");
        let estimates = handle.model.estimate_subplans(&job.request.query, 1);
        let response = crate::request::EstimateResponse {
            dataset: "stats".to_string(),
            model_epoch: handle.epoch,
            worker: 0,
            queue_wait: std::time::Duration::ZERO,
            estimate_time: std::time::Duration::ZERO,
            estimates,
        };
        job.reply
            .send((job.tag, job.index, Ok(response)))
            .expect("ticket alive");

        let results = ticket.wait_all();
        assert!(results[0].is_ok(), "the accepted job resolves normally");
        for result in &results[1..] {
            assert_eq!(
                *result.as_ref().unwrap_err(),
                ServiceError::SubmitAfterShutdown,
                "dropped remainder resolves with the distinct submit error"
            );
        }
    }

    #[test]
    fn offer_requests_sheds_on_full_queue_and_counts_it() {
        let (model, wl) = tiny_setup();
        let service = stalled_service(2); // no workers: queue never drains
        service.registry.publish("stats", Arc::clone(&model));
        let reqs = |n: usize| -> Vec<EstimateRequest> {
            (0..n)
                .map(|i| EstimateRequest::new(wl[i % wl.len()].clone()))
                .collect()
        };
        // A batch larger than capacity is always shed, all-or-nothing.
        let err = service.offer_requests(reqs(3)).unwrap_err();
        assert_eq!(err.reason, RejectReason::Overloaded);
        assert_eq!(err.requests.len(), 3, "the batch comes back for retry");
        assert_eq!(service.queue.len(), 0, "nothing partially enqueued");
        // A fitting batch is accepted.
        let ticket = service.offer_requests(reqs(2)).expect("fits");
        assert_eq!(ticket.accepted(), 2);
        // Now the queue is full: even a single request is shed.
        let err = service.offer_requests(reqs(1)).unwrap_err();
        assert_eq!(err.reason, RejectReason::Overloaded);
        // Quota rejections recorded through the public hook.
        service.record_admission_rejection();
        let snap = service.stats();
        assert_eq!(snap.shed, 4, "3 + 1 shed requests counted");
        assert_eq!(snap.rejected, 1);
        // Closed queue refuses with ShuttingDown instead.
        service.queue.close();
        let err = service.offer_requests(reqs(1)).unwrap_err();
        assert_eq!(err.reason, RejectReason::ShuttingDown);
    }

    #[test]
    fn shutdown_serves_queued_then_rejects() {
        let (model, wl) = tiny_setup();
        let service = EstimatorService::serve("stats", Arc::clone(&model), 1);
        let ticket = service.submit(wl[0].clone());
        service.shutdown();
        // Submitted before shutdown → still served.
        assert!(ticket.wait().is_ok());
        // (The service is consumed by shutdown; nothing further to submit.)
    }

    #[test]
    fn ticket_after_drop_reports_shutdown() {
        let (model, wl) = tiny_setup();
        let expected = model.estimate_subplans(&wl[0], 1);
        let ticket;
        {
            let service = EstimatorService::serve("stats", Arc::clone(&model), 1);
            ticket = service.submit(wl[0].clone());
            // Drop closes the queue but drains queued work first.
        }
        match ticket.wait() {
            Ok(resp) => assert_eq!(resp.estimates, expected),
            Err(e) => panic!("queued request should have been drained: {e}"),
        }
    }
}
