//! Request/response types and completion tickets.

use fj_query::{Query, SubplanMask};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One estimation request: a query plus how it should be served.
#[derive(Debug, Clone)]
pub struct EstimateRequest {
    /// Registry dataset to serve from; `None` uses the service default.
    pub dataset: Option<String>,
    /// The join query to estimate.
    pub query: Query,
    /// Minimum sub-plan size to report (1 = include single tables), as in
    /// [`factorjoin::FactorJoinModel::estimate_subplans`].
    pub min_size: u32,
    /// Latest instant at which the result is still useful. A worker that
    /// pops the request past this point **sheds** it — replies
    /// [`ServiceError::DeadlineExceeded`] without estimating (counted as
    /// [`crate::StatsSnapshot::expired`]) — instead of burning CPU on an
    /// answer nobody is waiting for. `None` means no deadline.
    pub deadline: Option<Instant>,
}

impl EstimateRequest {
    /// A request for every connected sub-plan of `query` on the service's
    /// default dataset.
    pub fn new(query: Query) -> Self {
        EstimateRequest {
            dataset: None,
            query,
            min_size: 1,
            deadline: None,
        }
    }

    /// Targets a specific registry dataset.
    pub fn on_dataset(mut self, dataset: &str) -> Self {
        self.dataset = Some(dataset.to_string());
        self
    }

    /// Restricts the response to sub-plans with at least `min_size` aliases.
    pub fn with_min_size(mut self, min_size: u32) -> Self {
        self.min_size = min_size;
        self
    }

    /// Sets the absolute deadline past which the request is shed unserved.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// [`Self::with_deadline`] as a budget relative to now.
    pub fn with_deadline_in(self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }
}

/// A served estimation result.
#[derive(Debug, Clone)]
pub struct EstimateResponse {
    /// Every connected sub-plan's probabilistic cardinality bound, in the
    /// same deterministic order `estimate_subplans` produces.
    pub estimates: Vec<(SubplanMask, f64)>,
    /// Dataset the request was served from.
    pub dataset: String,
    /// Epoch of the model that served the request (see
    /// [`crate::ModelRegistry`]); lets clients detect hot-swaps.
    pub model_epoch: u64,
    /// Id of the worker thread that served the request.
    pub worker: usize,
    /// Time the request spent queued before a worker picked it up.
    pub queue_wait: Duration,
    /// Time the worker spent estimating.
    pub estimate_time: Duration,
}

impl EstimateResponse {
    /// End-to-end latency: queue wait plus estimation time.
    pub fn latency(&self) -> Duration {
        self.queue_wait + self.estimate_time
    }
}

/// Why a request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request named a dataset the registry does not hold.
    UnknownDataset(String),
    /// The request was accepted (enqueued), but the service shut down
    /// before a worker served it.
    Shutdown,
    /// The request was **never accepted**: the service was already
    /// shutting down when it was submitted, so no worker ever saw it.
    /// Distinct from [`ServiceError::Shutdown`] so a batch that races
    /// shutdown can tell its enqueued-then-drained slots from the
    /// remainder that was dropped at the door.
    SubmitAfterShutdown,
    /// The request's [`EstimateRequest::deadline`] passed before a worker
    /// picked it up, so it was shed unserved (the caller stopped waiting;
    /// estimating anyway would only steal CPU from live requests).
    DeadlineExceeded,
    /// The worker thread panicked while estimating this request. The panic
    /// was contained: the worker kept serving (with a fresh scratch), no
    /// lock was poisoned, and the panic message is carried here so the
    /// client sees *why* instead of a hang.
    WorkerPanicked(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownDataset(name) => write!(f, "unknown dataset {name:?}"),
            ServiceError::Shutdown => write!(f, "service shut down before serving the request"),
            ServiceError::SubmitAfterShutdown => {
                write!(
                    f,
                    "request rejected at submit: the service is shutting down"
                )
            }
            ServiceError::DeadlineExceeded => {
                write!(f, "deadline exceeded before a worker picked up the request")
            }
            ServiceError::WorkerPanicked(msg) => {
                write!(f, "worker panicked while estimating: {msg}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Why an admission-controlled submission was refused (never blocked).
///
/// Shared between the in-process non-blocking path
/// ([`crate::EstimatorService::offer_requests`]) and the network tier's
/// reject frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The client exceeded its in-flight request quota.
    QuotaExceeded,
    /// The bounded queue had no room for the batch: load was shed rather
    /// than blocking the submitter.
    Overloaded,
    /// The service is shutting down.
    ShuttingDown,
    /// The request named a dataset the server does not shard.
    UnknownDataset,
    /// The batch was served, but its encoded response would not fit one
    /// wire frame, so the results were discarded instead of written
    /// (writing an oversized frame would make the client abort the whole
    /// connection). The client's recourse is to split the batch.
    ResponseTooLarge,
    /// The request's deadline passed before it was fully served; whatever
    /// was computed was discarded (a response nobody is waiting for is
    /// dead weight on the wire). Retrying is pointless on the same budget.
    DeadlineExceeded,
}

impl RejectReason {
    /// Stable human-readable name (also used in wire messages).
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QuotaExceeded => "quota exceeded",
            RejectReason::Overloaded => "overloaded",
            RejectReason::ShuttingDown => "shutting down",
            RejectReason::UnknownDataset => "unknown dataset",
            RejectReason::ResponseTooLarge => "response too large",
            RejectReason::DeadlineExceeded => "deadline exceeded",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A refused non-blocking submission; the requests come back for retry.
#[derive(Debug)]
pub struct AdmissionRejected {
    /// Why the batch was refused.
    pub reason: RejectReason,
    /// The refused requests, returned untouched.
    pub requests: Vec<EstimateRequest>,
}

impl std::fmt::Display for AdmissionRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch of {} refused: {}",
            self.requests.len(),
            self.reason
        )
    }
}

impl std::error::Error for AdmissionRejected {}

/// Worker reply: (multiplexing tag, index within the batch, result). The
/// tag is 0 for plain in-process submits; the network tier uses it to
/// route replies of interleaved requests sharing one connection channel.
pub(crate) type Reply = (u64, usize, Result<EstimateResponse, ServiceError>);

/// Completion handle for a single submitted request.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Reply>,
}

impl Ticket {
    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<EstimateResponse, ServiceError> {
        match self.rx.recv() {
            Ok((_, _, result)) => result,
            Err(_) => Err(ServiceError::Shutdown),
        }
    }
}

/// Completion handle for a submitted batch. All requests of the batch share
/// one reply channel, so a large batch costs one channel, not N.
#[derive(Debug)]
pub struct BatchTicket {
    pub(crate) rx: mpsc::Receiver<Reply>,
    pub(crate) expected: usize,
    pub(crate) accepted: usize,
}

impl BatchTicket {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.expected
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.expected == 0
    }

    /// How many of the batch's requests were actually enqueued. Equal to
    /// [`Self::len`] except when submission raced shutdown, in which case
    /// the first `accepted` requests were enqueued (and will resolve
    /// normally) while the remainder resolve with
    /// [`ServiceError::SubmitAfterShutdown`].
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Blocks until every response of the batch has arrived; results are
    /// returned in submission order regardless of completion order. A
    /// request lost to shutdown reports [`ServiceError::Shutdown`] in its
    /// slot; a request that was never enqueued because submission raced
    /// shutdown reports [`ServiceError::SubmitAfterShutdown`].
    pub fn wait_all(self) -> Vec<Result<EstimateResponse, ServiceError>> {
        let mut out: Vec<Result<EstimateResponse, ServiceError>> = (0..self.expected)
            .map(|_| Err(ServiceError::Shutdown))
            .collect();
        let mut received = 0usize;
        while received < self.expected {
            match self.rx.recv() {
                Ok((_, index, result)) => {
                    out[index] = result;
                    received += 1;
                }
                Err(_) => break, // all workers gone; remaining slots stay Shutdown
            }
        }
        out
    }
}
