//! Service-level statistics: throughput, latency percentiles, saturation.
//!
//! Built on `fj-obs`: counters are relaxed atomics and latencies go into
//! lock-free log-linear [`Histogram`]s (bounded memory, wait-free record,
//! no sort-on-snapshot). Because histograms merge bucket-wise, per-shard
//! stats combine into a fleet view (`merged_snapshot`, surfaced as
//! `FjServer::stats_merged`) — something the old sort-a-`Mutex<Vec>`
//! reservoir could not do. Percentiles are quantized to the histogram's
//! bucket width: reported values are upper bucket bounds, at most
//! 1/32 ≈ 3.1 % above the exact sample.

use fj_obs::{Counter, Histogram, HistogramSnapshot, MetricsRegistry, Stage};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared counters the workers update as they serve (internal; read
/// through [`crate::EstimatorService::stats`]).
pub(crate) struct StatsInner {
    requests: Counter,
    subplans: Counter,
    errors: Counter,
    /// Requests refused by admission control (per-client quota) before
    /// reaching the queue.
    rejected: Counter,
    /// Requests shed because the bounded queue had no room (load shedding
    /// chosen over producer blocking by the non-blocking submit path).
    shed: Counter,
    /// Requests whose deadline passed while queued: a worker popped them
    /// already expired and shed them without estimating.
    expired: Counter,
    /// Worker panics contained while estimating (the worker survived and
    /// the ticket resolved with an error instead of hanging).
    worker_panics: Counter,
    /// Sub-plan estimates served straight from the sub-plan cache,
    /// bit-identical to a fresh computation.
    cache_hits: Counter,
    /// Sub-plan estimates computed by the model and inserted into the
    /// cache (counts sub-plans, like [`Self::cache_hits`], so
    /// hits/(hits+misses) is the per-sub-plan hit rate).
    cache_misses: Counter,
    /// Live cache entries evicted to make room (capacity pressure;
    /// overwriting empty or stale-epoch slots is not counted).
    cache_evictions: Counter,
    /// End-to-end latency (queue wait + estimation), nanoseconds.
    latency: Histogram,
    /// Queue-wait stage only, nanoseconds.
    queue_wait: Histogram,
    /// Estimation stage only, nanoseconds.
    estimation: Histogram,
    /// When false (the bench's no-op recorder), histogram recording is
    /// skipped; counters still tick so throughput math keeps working.
    histograms_enabled: bool,
    window_start: Mutex<Instant>,
}

impl StatsInner {
    /// Full recorder (histograms on) — the production default; only the
    /// bench's no-op comparison passes `false` to `with_histograms`.
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::with_histograms(true)
    }

    /// `enabled = false` builds the no-op recorder used by the
    /// metrics-overhead bench gate: counters tick, histograms don't.
    pub(crate) fn with_histograms(enabled: bool) -> Self {
        StatsInner {
            requests: Counter::new(),
            subplans: Counter::new(),
            errors: Counter::new(),
            rejected: Counter::new(),
            shed: Counter::new(),
            expired: Counter::new(),
            worker_panics: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            cache_evictions: Counter::new(),
            latency: Histogram::new(),
            queue_wait: Histogram::new(),
            estimation: Histogram::new(),
            histograms_enabled: enabled,
            window_start: Mutex::new(Instant::now()),
        }
    }

    /// Record one served request. Stage durations are recorded in
    /// **nanoseconds** — `as_micros` truncation used to collapse fast
    /// in-process estimates (hundreds of ns) into the zero bucket.
    pub(crate) fn record_success(
        &self,
        subplans: usize,
        queue_wait: Duration,
        estimation: Duration,
    ) {
        self.requests.inc();
        self.subplans.add(subplans as u64);
        if self.histograms_enabled {
            let qw = u64::try_from(queue_wait.as_nanos()).unwrap_or(u64::MAX);
            let est = u64::try_from(estimation.as_nanos()).unwrap_or(u64::MAX);
            self.latency.record(qw.saturating_add(est));
            self.queue_wait.record(qw);
            self.estimation.record(est);
        }
    }

    pub(crate) fn record_error(&self) {
        self.errors.inc();
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.inc();
    }

    pub(crate) fn record_shed(&self, requests: usize) {
        self.shed.add(requests as u64);
    }

    pub(crate) fn record_expired(&self) {
        self.expired.inc();
    }

    /// Record a request fully served from the sub-plan cache (`subplans`
    /// estimates returned without touching the model).
    pub(crate) fn record_cache_hits(&self, subplans: usize) {
        self.cache_hits.add(subplans as u64);
    }

    /// Record a request that missed the sub-plan cache: all `subplans`
    /// estimates were computed and (re)inserted, with `evictions` live
    /// entries displaced.
    pub(crate) fn record_cache_misses(&self, subplans: usize, evictions: usize) {
        self.cache_misses.add(subplans as u64);
        if evictions > 0 {
            self.cache_evictions.add(evictions as u64);
        }
    }

    /// A contained worker panic is both its own counter and an error: the
    /// request resolved with `ServiceError::WorkerPanicked`, so it belongs
    /// in the failure total too.
    pub(crate) fn record_worker_panic(&self) {
        self.worker_panics.inc();
        self.errors.inc();
    }

    /// Clears all counters and restarts the measurement window (used
    /// between benchmark warm-up and the timed run).
    pub(crate) fn reset(&self) {
        self.requests.reset();
        self.subplans.reset();
        self.errors.reset();
        self.rejected.reset();
        self.shed.reset();
        self.expired.reset();
        self.worker_panics.reset();
        self.cache_hits.reset();
        self.cache_misses.reset();
        self.cache_evictions.reset();
        self.latency.clear();
        self.queue_wait.clear();
        self.estimation.clear();
        *self.window_start.lock().expect("stats lock") = Instant::now();
    }

    /// Point-in-time latency distribution (used by [`merged_snapshot`] and
    /// the wire-level stage metrics).
    pub(crate) fn latency_snapshot(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    /// Register this shard's counters and histograms into a metrics
    /// registry under a `dataset` label. Entries are closure-backed `Arc`
    /// clones, so the hot path never learns the registry exists.
    pub(crate) fn install_metrics(self: &Arc<Self>, registry: &MetricsRegistry, dataset: &str) {
        let d = dataset;
        let counters: [(&str, &str, fn(&StatsInner) -> &Counter); 10] = [
            ("fj_requests_total", "Requests served successfully.", |s| {
                &s.requests
            }),
            (
                "fj_subplans_total",
                "Sub-plan estimates produced across served requests.",
                |s| &s.subplans,
            ),
            (
                "fj_errors_total",
                "Requests that resolved with a service error (unknown dataset, contained worker panic).",
                |s| &s.errors,
            ),
            (
                "fj_rejected_total",
                "Requests refused by admission control before reaching the queue.",
                |s| &s.rejected,
            ),
            (
                "fj_shed_total",
                "Requests shed because the bounded queue was full.",
                |s| &s.shed,
            ),
            (
                "fj_expired_total",
                "Requests whose deadline passed while queued; shed unserved.",
                |s| &s.expired,
            ),
            (
                "fj_worker_panics_total",
                "Worker panics contained while estimating.",
                |s| &s.worker_panics,
            ),
            (
                "fj_subplan_cache_hits_total",
                "Sub-plan estimates served from the sub-plan cache.",
                |s| &s.cache_hits,
            ),
            (
                "fj_subplan_cache_misses_total",
                "Sub-plan estimates computed by the model and cached.",
                |s| &s.cache_misses,
            ),
            (
                "fj_subplan_cache_evictions_total",
                "Live sub-plan cache entries evicted under capacity pressure.",
                |s| &s.cache_evictions,
            ),
        ];
        for (name, help, get) in counters {
            let me = Arc::clone(self);
            registry.register_counter_fn(name, help, &[("dataset", d)], move || get(&me).get());
        }
        let me = Arc::clone(self);
        registry.register_histogram_fn(
            "fj_request_latency_seconds",
            "End-to-end request latency (queue wait + estimation).",
            &[("dataset", d)],
            move || me.latency.snapshot(),
        );
        let stage_help = "Per-stage time for served requests.";
        let me = Arc::clone(self);
        registry.register_histogram_fn(
            "fj_stage_duration_seconds",
            stage_help,
            &[("dataset", d), ("stage", Stage::QueueWait.name())],
            move || me.queue_wait.snapshot(),
        );
        let me = Arc::clone(self);
        registry.register_histogram_fn(
            "fj_stage_duration_seconds",
            stage_help,
            &[("dataset", d), ("stage", Stage::Estimation.name())],
            move || me.estimation.snapshot(),
        );
    }

    fn window_elapsed(&self) -> Duration {
        self.window_start.lock().expect("stats lock").elapsed()
    }

    fn fill_counts(&self, snap: &mut StatsSnapshot) {
        snap.requests = self.requests.get();
        snap.subplans = self.subplans.get();
        snap.errors = self.errors.get();
        snap.rejected = self.rejected.get();
        snap.shed = self.shed.get();
        snap.expired = self.expired.get();
        snap.worker_panics = self.worker_panics.get();
        snap.cache_hits = self.cache_hits.get();
        snap.cache_misses = self.cache_misses.get();
        snap.cache_evictions = self.cache_evictions.get();
    }

    pub(crate) fn snapshot(&self, queue_depth: usize, queue_high_water: usize) -> StatsSnapshot {
        let mut snap = StatsSnapshot::from_histogram(
            &self.latency_snapshot(),
            self.window_elapsed(),
            queue_depth,
            queue_high_water,
        );
        self.fill_counts(&mut snap);
        snap.finish_rates();
        snap
    }
}

/// Merge per-shard stats into one fleet-wide snapshot: counters sum,
/// latency histograms merge bucket-wise (so percentiles describe the
/// concatenation of every shard's samples, quantized to bucket width),
/// queue depths sum, high-water and window take the max.
pub(crate) fn merged_snapshot<'a>(
    shards: impl IntoIterator<Item = (&'a StatsInner, usize, usize)>,
) -> StatsSnapshot {
    let mut hist = HistogramSnapshot::default();
    let mut window = Duration::ZERO;
    let mut depth = 0usize;
    let mut high_water = 0usize;
    let mut counts = [0u64; 10];
    for (inner, queue_depth, queue_high_water) in shards {
        hist.merge_from(&inner.latency_snapshot());
        window = window.max(inner.window_elapsed());
        depth += queue_depth;
        high_water = high_water.max(queue_high_water);
        counts[0] += inner.requests.get();
        counts[1] += inner.subplans.get();
        counts[2] += inner.errors.get();
        counts[3] += inner.rejected.get();
        counts[4] += inner.shed.get();
        counts[5] += inner.expired.get();
        counts[6] += inner.worker_panics.get();
        counts[7] += inner.cache_hits.get();
        counts[8] += inner.cache_misses.get();
        counts[9] += inner.cache_evictions.get();
    }
    let mut snap = StatsSnapshot::from_histogram(&hist, window, depth, high_water);
    [
        snap.requests,
        snap.subplans,
        snap.errors,
        snap.rejected,
        snap.shed,
        snap.expired,
        snap.worker_panics,
        snap.cache_hits,
        snap.cache_misses,
        snap.cache_evictions,
    ] = counts;
    snap.finish_rates();
    snap
}

/// A point-in-time view of service health since the last reset.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Requests served successfully.
    pub requests: u64,
    /// Sub-plan estimates produced across those requests.
    pub subplans: u64,
    /// Requests that resolved with a [`crate::ServiceError`] after
    /// admission: unknown dataset at estimation time, plus contained
    /// worker panics (also counted in [`Self::worker_panics`]). Deadline
    /// expiries are tracked separately in [`Self::expired`]; admission
    /// refusals in [`Self::rejected`] and [`Self::shed`].
    pub errors: u64,
    /// Requests refused by admission control (per-client in-flight quota)
    /// before they reached the queue.
    pub rejected: u64,
    /// Requests shed on submission because the bounded queue was full (the
    /// non-blocking submit path refuses load instead of blocking producers).
    pub shed: u64,
    /// Requests whose deadline had already passed when a worker picked
    /// them up: shed unserved (the deadline-aware worker path refuses to
    /// burn CPU on work nobody is waiting for).
    pub expired: u64,
    /// Worker panics contained while estimating. Each one resolved its
    /// request with [`crate::ServiceError::WorkerPanicked`] and the worker
    /// kept serving; a nonzero count is a bug signal, not a wedge.
    pub worker_panics: u64,
    /// Sub-plan estimates served straight from the sub-plan cache —
    /// bit-identical to what the model would have computed (the cache
    /// stores raw `f64::to_bits` keyed by model epoch + canonical
    /// sub-plan fingerprint). Counted per sub-plan, not per request.
    pub cache_hits: u64,
    /// Sub-plan estimates computed by the model and inserted into the
    /// sub-plan cache (per sub-plan, so
    /// [`Self::cache_hit_rate`] = hits/(hits+misses)). A service with
    /// the cache disabled keeps both at zero.
    pub cache_misses: u64,
    /// Live sub-plan cache entries evicted under capacity pressure
    /// (stale-epoch overwrites after a model swap are not counted).
    pub cache_evictions: u64,
    /// Aggregate served requests per second over the window.
    pub requests_per_second: f64,
    /// Aggregate sub-plan estimates per second over the window — the
    /// throughput number the paper's serving story cares about.
    pub subplans_per_second: f64,
    /// Median end-to-end request latency (queue wait + estimation).
    ///
    /// Percentiles come from a log-linear histogram with bounded memory
    /// (recorded in nanoseconds, ~15 KiB per shard, never re-sorted):
    /// the reported value is the upper bound of the bucket holding the
    /// rank-th sample, at most 1/32 ≈ 3.1 % above the exact latency. The
    /// window covers *every* request since the last reset — no sliding
    /// reservoir — and shards merge exactly bucket-wise.
    pub p50_latency: Duration,
    /// 95th-percentile latency (same quantization as [`Self::p50_latency`]).
    pub p95_latency: Duration,
    /// 99th-percentile latency (same quantization as [`Self::p50_latency`]).
    pub p99_latency: Duration,
    /// Requests queued right now.
    pub queue_depth: usize,
    /// Deepest the request queue has been (capacity hit = producers were
    /// backpressured).
    pub queue_high_water: usize,
    /// Length of the measurement window.
    pub window: Duration,
}

impl StatsSnapshot {
    fn from_histogram(
        hist: &HistogramSnapshot,
        window: Duration,
        queue_depth: usize,
        queue_high_water: usize,
    ) -> Self {
        StatsSnapshot {
            requests: 0,
            subplans: 0,
            errors: 0,
            rejected: 0,
            shed: 0,
            expired: 0,
            worker_panics: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            requests_per_second: 0.0,
            subplans_per_second: 0.0,
            p50_latency: Duration::from_nanos(hist.value_at_quantile(0.50)),
            p95_latency: Duration::from_nanos(hist.value_at_quantile(0.95)),
            p99_latency: Duration::from_nanos(hist.value_at_quantile(0.99)),
            queue_depth,
            queue_high_water,
            window,
        }
    }

    fn finish_rates(&mut self) {
        let secs = self.window.as_secs_f64().max(1e-12);
        self.requests_per_second = self.requests as f64 / secs;
        self.subplans_per_second = self.subplans as f64 / secs;
    }

    /// Fraction of sub-plan estimates served from the cache,
    /// hits/(hits+misses); 0.0 when nothing has been looked up (or the
    /// cache is disabled).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} req ({} sub-plans, {} errors, {} rejected, {} shed, {} expired, \
             {} panics) in {:.2}s — \
             {:.0} req/s, {:.0} sub-plans/s; \
             cache {} hits / {} misses ({:.0}% hit rate, {} evictions); \
             latency p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs; queue depth {} (high-water {})",
            self.requests,
            self.subplans,
            self.errors,
            self.rejected,
            self.shed,
            self.expired,
            self.worker_panics,
            self.window.as_secs_f64(),
            self.requests_per_second,
            self.subplans_per_second,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.cache_evictions,
            self.p50_latency.as_secs_f64() * 1e6,
            self.p95_latency.as_secs_f64() * 1e6,
            self.p99_latency.as_secs_f64() * 1e6,
            self.queue_depth,
            self.queue_high_water,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The histogram quantizes upward by at most one bucket: 1/32 relative.
    fn assert_quantized(actual: Duration, exact: Duration) {
        let exact_ns = exact.as_nanos() as f64;
        let actual_ns = actual.as_nanos() as f64;
        assert!(
            actual_ns >= exact_ns && actual_ns <= exact_ns * (1.0 + 1.0 / 32.0) + 1.0,
            "{actual:?} not within one bucket above {exact:?}"
        );
    }

    fn success(s: &StatsInner, subplans: usize, latency: Duration) {
        // Split arbitrarily across the two stages; the end-to-end
        // histogram records the sum.
        s.record_success(subplans, latency / 2, latency - latency / 2);
    }

    #[test]
    fn percentiles_ordered_and_reset_clears() {
        let s = StatsInner::new();
        for us in [100u64, 200, 300, 400, 1000] {
            success(&s, 3, Duration::from_micros(us));
        }
        s.record_error();
        let snap = s.snapshot(2, 7);
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.subplans, 15);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.rejected, 0);
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.queue_high_water, 7);
        assert!(snap.p50_latency <= snap.p95_latency);
        assert!(snap.p95_latency <= snap.p99_latency);
        // Nearest-rank p50 of five samples is the 3rd: 300µs, reported as
        // its bucket's upper bound.
        assert_quantized(snap.p50_latency, Duration::from_micros(300));
        assert!(snap.subplans_per_second > 0.0);
        let text = snap.to_string();
        assert!(text.contains("sub-plans/s"), "{text}");

        s.reset();
        let snap = s.snapshot(0, 7);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.p99_latency, Duration::ZERO);
    }

    #[test]
    fn sub_microsecond_latencies_are_not_truncated_to_zero() {
        // Regression for the as_micros bug: a 250 ns estimate used to
        // land in the zero bucket. Nanosecond recording keeps it visible.
        let s = StatsInner::new();
        s.record_success(1, Duration::from_nanos(100), Duration::from_nanos(150));
        let snap = s.snapshot(0, 0);
        assert!(
            snap.p50_latency >= Duration::from_nanos(250),
            "250 ns must not collapse to zero, got {:?}",
            snap.p50_latency
        );
        assert_quantized(snap.p50_latency, Duration::from_nanos(250));
    }

    #[test]
    fn memory_is_bounded_with_exact_counts_past_any_volume() {
        // The old reservoir slid past 4096 samples; the histogram keeps
        // every sample's bucket forever in fixed memory, so early samples
        // still shape the percentiles after 10k recordings.
        let s = StatsInner::new();
        for i in 0..10_000u64 {
            success(&s, 1, Duration::from_micros(i));
        }
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.requests, 10_000);
        assert_quantized(snap.p50_latency, Duration::from_micros(4_999));
        assert_quantized(snap.p99_latency, Duration::from_micros(9_899));
    }

    #[test]
    fn merged_shards_match_concatenated_samples() {
        // stats_merged acceptance at the unit level: merging two shards'
        // histograms must equal bucketing the concatenated raw samples.
        let (a, b) = (StatsInner::new(), StatsInner::new());
        let mut all: Vec<u64> = Vec::new();
        for i in 1..=300u64 {
            let ns = i * 977; // spread across buckets
            all.push(ns);
            let shard = if i % 3 == 0 { &a } else { &b };
            shard.record_success(2, Duration::ZERO, Duration::from_nanos(ns));
        }
        all.sort_unstable();
        let merged = merged_snapshot([(&a, 1, 5), (&b, 2, 9)]);
        assert_eq!(merged.requests, 300);
        assert_eq!(merged.subplans, 600);
        assert_eq!(merged.queue_depth, 3, "queue depths sum");
        assert_eq!(merged.queue_high_water, 9, "high water takes the max");
        for (q, d) in [
            (0.50, merged.p50_latency),
            (0.95, merged.p95_latency),
            (0.99, merged.p99_latency),
        ] {
            let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
            let exact = Duration::from_nanos(all[rank - 1]);
            assert_quantized(d, exact);
        }
    }

    #[test]
    fn noop_recorder_counts_but_skips_histograms() {
        let s = StatsInner::with_histograms(false);
        success(&s, 4, Duration::from_micros(500));
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.subplans, 4);
        assert_eq!(snap.p50_latency, Duration::ZERO, "no-op recorder");
    }

    #[test]
    fn expired_and_panic_counters_roundtrip() {
        let s = StatsInner::new();
        s.record_expired();
        s.record_expired();
        s.record_expired();
        s.record_worker_panic();
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.expired, 3);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(
            snap.errors, 1,
            "a contained panic is an estimation failure and belongs in the error total"
        );
        let text = snap.to_string();
        assert!(text.contains("3 expired"), "{text}");
        assert!(text.contains("1 panics"), "{text}");
        s.reset();
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.expired, 0);
        assert_eq!(snap.worker_panics, 0);
    }

    #[test]
    fn rejected_and_shed_counters_roundtrip() {
        let s = StatsInner::new();
        s.record_rejected();
        s.record_rejected();
        s.record_shed(5);
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.rejected, 2);
        assert_eq!(snap.shed, 5);
        let text = snap.to_string();
        assert!(text.contains("2 rejected"), "{text}");
        assert!(text.contains("5 shed"), "{text}");
        s.reset();
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.rejected, 0);
        assert_eq!(snap.shed, 0);
    }

    #[test]
    fn cache_counters_roundtrip_reset_and_merge() {
        let s = StatsInner::new();
        s.record_cache_hits(9);
        s.record_cache_misses(3, 2);
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.cache_hits, 9);
        assert_eq!(snap.cache_misses, 3);
        assert_eq!(snap.cache_evictions, 2);
        assert!((snap.cache_hit_rate() - 0.75).abs() < 1e-12);
        let text = snap.to_string();
        assert!(text.contains("9 hits / 3 misses"), "{text}");
        assert!(text.contains("2 evictions"), "{text}");
        // Merged shards sum the cache counters exactly.
        let other = StatsInner::new();
        other.record_cache_hits(1);
        other.record_cache_misses(1, 0);
        let merged = merged_snapshot([(&s, 0, 0), (&other, 0, 0)]);
        assert_eq!(merged.cache_hits, 10);
        assert_eq!(merged.cache_misses, 4);
        assert_eq!(merged.cache_evictions, 2);
        // Reset clears them with everything else.
        s.reset();
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_misses, 0);
        assert_eq!(snap.cache_evictions, 0);
        assert_eq!(snap.cache_hit_rate(), 0.0, "empty rate is 0, not NaN");
    }

    #[test]
    fn install_metrics_exposes_shard_families() {
        let s = Arc::new(StatsInner::new());
        let reg = MetricsRegistry::new();
        s.install_metrics(&reg, "stats");
        s.record_success(2, Duration::from_micros(10), Duration::from_micros(20));
        s.record_rejected();
        s.record_cache_hits(5);
        s.record_cache_misses(2, 1);
        let text = reg.render();
        assert!(
            text.contains("fj_subplan_cache_hits_total{dataset=\"stats\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("fj_subplan_cache_misses_total{dataset=\"stats\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("fj_subplan_cache_evictions_total{dataset=\"stats\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("fj_requests_total{dataset=\"stats\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("fj_rejected_total{dataset=\"stats\"} 1"),
            "{text}"
        );
        assert!(
            text.contains(
                "fj_stage_duration_seconds_bucket{dataset=\"stats\",stage=\"queue_wait\""
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "fj_stage_duration_seconds_count{dataset=\"stats\",stage=\"estimation\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains("fj_request_latency_seconds_count{dataset=\"stats\"} 1"),
            "{text}"
        );
    }
}
