//! Service-level statistics: throughput, latency percentiles, saturation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared counters the workers update as they serve (internal; read
/// through [`crate::EstimatorService::stats`]).
pub(crate) struct StatsInner {
    requests: AtomicU64,
    subplans: AtomicU64,
    errors: AtomicU64,
    /// Completed-request latencies (queue wait + estimation) in
    /// microseconds. Bench runs at ~10⁵ requests keep this at a few MB;
    /// `reset` reclaims it between measurement windows.
    latencies_us: Mutex<Vec<u64>>,
    window_start: Mutex<Instant>,
}

impl StatsInner {
    pub(crate) fn new() -> Self {
        StatsInner {
            requests: AtomicU64::new(0),
            subplans: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latencies_us: Mutex::new(Vec::new()),
            window_start: Mutex::new(Instant::now()),
        }
    }

    pub(crate) fn record_success(&self, subplans: usize, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.subplans.fetch_add(subplans as u64, Ordering::Relaxed);
        self.latencies_us
            .lock()
            .expect("stats lock")
            .push(latency.as_micros() as u64);
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Clears all counters and restarts the measurement window (used
    /// between benchmark warm-up and the timed run).
    pub(crate) fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.subplans.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.latencies_us.lock().expect("stats lock").clear();
        *self.window_start.lock().expect("stats lock") = Instant::now();
    }

    pub(crate) fn snapshot(&self, queue_depth: usize, queue_high_water: usize) -> StatsSnapshot {
        let mut lat = self.latencies_us.lock().expect("stats lock").clone();
        lat.sort_unstable();
        let pct = |p: f64| -> Duration {
            if lat.is_empty() {
                return Duration::ZERO;
            }
            let pos = (p / 100.0) * (lat.len() - 1) as f64;
            let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
            let us = if lo == hi {
                lat[lo] as f64
            } else {
                lat[lo] as f64 + (lat[hi] as f64 - lat[lo] as f64) * (pos - lo as f64)
            };
            Duration::from_nanos((us * 1e3) as u64)
        };
        let elapsed = self.window_start.lock().expect("stats lock").elapsed();
        let requests = self.requests.load(Ordering::Relaxed);
        let subplans = self.subplans.load(Ordering::Relaxed);
        let secs = elapsed.as_secs_f64().max(1e-12);
        StatsSnapshot {
            requests,
            subplans,
            errors: self.errors.load(Ordering::Relaxed),
            requests_per_second: requests as f64 / secs,
            subplans_per_second: subplans as f64 / secs,
            p50_latency: pct(50.0),
            p95_latency: pct(95.0),
            p99_latency: pct(99.0),
            queue_depth,
            queue_high_water,
            window: elapsed,
        }
    }
}

/// A point-in-time view of service health since the last reset.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Requests served successfully.
    pub requests: u64,
    /// Sub-plan estimates produced across those requests.
    pub subplans: u64,
    /// Requests that failed (unknown dataset).
    pub errors: u64,
    /// Aggregate served requests per second over the window.
    pub requests_per_second: f64,
    /// Aggregate sub-plan estimates per second over the window — the
    /// throughput number the paper's serving story cares about.
    pub subplans_per_second: f64,
    /// Median end-to-end request latency (queue wait + estimation).
    pub p50_latency: Duration,
    /// 95th-percentile latency.
    pub p95_latency: Duration,
    /// 99th-percentile latency.
    pub p99_latency: Duration,
    /// Requests queued right now.
    pub queue_depth: usize,
    /// Deepest the request queue has been (capacity hit = producers were
    /// backpressured).
    pub queue_high_water: usize,
    /// Length of the measurement window.
    pub window: Duration,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} req ({} sub-plans, {} errors) in {:.2}s — {:.0} req/s, {:.0} sub-plans/s; \
             latency p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs; queue depth {} (high-water {})",
            self.requests,
            self.subplans,
            self.errors,
            self.window.as_secs_f64(),
            self.requests_per_second,
            self.subplans_per_second,
            self.p50_latency.as_secs_f64() * 1e6,
            self.p95_latency.as_secs_f64() * 1e6,
            self.p99_latency.as_secs_f64() * 1e6,
            self.queue_depth,
            self.queue_high_water,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_ordered_and_reset_clears() {
        let s = StatsInner::new();
        for us in [100u64, 200, 300, 400, 1000] {
            s.record_success(3, Duration::from_micros(us));
        }
        s.record_error();
        let snap = s.snapshot(2, 7);
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.subplans, 15);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.queue_high_water, 7);
        assert!(snap.p50_latency <= snap.p95_latency);
        assert!(snap.p95_latency <= snap.p99_latency);
        assert_eq!(snap.p50_latency, Duration::from_micros(300));
        assert!(snap.subplans_per_second > 0.0);
        let text = snap.to_string();
        assert!(text.contains("sub-plans/s"), "{text}");

        s.reset();
        let snap = s.snapshot(0, 7);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.p99_latency, Duration::ZERO);
    }
}
