//! Service-level statistics: throughput, latency percentiles, saturation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default capacity of the latency reservoir (see [`LatencyReservoir`]).
pub(crate) const DEFAULT_LATENCY_CAPACITY: usize = 4096;

/// Fixed-capacity sliding-window latency store.
///
/// A long-running daemon records latencies for days; an unbounded `Vec`
/// is a memory leak with a fuse. This ring keeps the **last `capacity`**
/// recordings in O(capacity) memory forever:
///
/// * below `capacity` total recordings the window holds *every* sample, so
///   p50/p95/p99 are exact over the whole run;
/// * above it, percentiles are computed over the most recent `capacity`
///   samples — a deterministic sliding window, which for serving health is
///   the more useful number anyway (recent behaviour, not day-old history).
struct LatencyReservoir {
    /// Ring storage; index `total % capacity` is the next write slot.
    ring: Vec<u64>,
    /// Total recordings since the last reset (may exceed `capacity`).
    total: u64,
    capacity: usize,
}

impl LatencyReservoir {
    fn new(capacity: usize) -> Self {
        LatencyReservoir {
            ring: Vec::with_capacity(capacity.max(1)),
            total: 0,
            capacity: capacity.max(1),
        }
    }

    fn record(&mut self, latency_us: u64) {
        let slot = (self.total % self.capacity as u64) as usize;
        if slot < self.ring.len() {
            self.ring[slot] = latency_us;
        } else {
            self.ring.push(latency_us);
        }
        self.total += 1;
    }

    fn clear(&mut self) {
        self.ring.clear();
        self.total = 0;
    }

    /// The current window's samples, unordered.
    fn window(&self) -> Vec<u64> {
        self.ring.clone()
    }
}

/// Shared counters the workers update as they serve (internal; read
/// through [`crate::EstimatorService::stats`]).
pub(crate) struct StatsInner {
    requests: AtomicU64,
    subplans: AtomicU64,
    errors: AtomicU64,
    /// Requests refused by admission control (per-client quota) before
    /// reaching the queue.
    rejected: AtomicU64,
    /// Requests shed because the bounded queue had no room (load shedding
    /// chosen over producer blocking by the non-blocking submit path).
    shed: AtomicU64,
    /// Requests whose deadline passed while queued: a worker popped them
    /// already expired and shed them without estimating.
    expired: AtomicU64,
    /// Worker panics contained while estimating (the worker survived and
    /// the ticket resolved with an error instead of hanging).
    worker_panics: AtomicU64,
    /// Completed-request latencies (queue wait + estimation) in
    /// microseconds, bounded by the reservoir capacity.
    latencies_us: Mutex<LatencyReservoir>,
    window_start: Mutex<Instant>,
}

impl StatsInner {
    pub(crate) fn new() -> Self {
        Self::with_latency_capacity(DEFAULT_LATENCY_CAPACITY)
    }

    pub(crate) fn with_latency_capacity(capacity: usize) -> Self {
        StatsInner {
            requests: AtomicU64::new(0),
            subplans: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            latencies_us: Mutex::new(LatencyReservoir::new(capacity)),
            window_start: Mutex::new(Instant::now()),
        }
    }

    pub(crate) fn record_success(&self, subplans: usize, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.subplans.fetch_add(subplans as u64, Ordering::Relaxed);
        self.latencies_us
            .lock()
            .expect("stats lock")
            .record(latency.as_micros() as u64);
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed(&self, requests: usize) {
        self.shed.fetch_add(requests as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Clears all counters and restarts the measurement window (used
    /// between benchmark warm-up and the timed run).
    pub(crate) fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.subplans.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
        self.expired.store(0, Ordering::Relaxed);
        self.worker_panics.store(0, Ordering::Relaxed);
        self.latencies_us.lock().expect("stats lock").clear();
        *self.window_start.lock().expect("stats lock") = Instant::now();
    }

    pub(crate) fn snapshot(&self, queue_depth: usize, queue_high_water: usize) -> StatsSnapshot {
        let mut lat = self.latencies_us.lock().expect("stats lock").window();
        lat.sort_unstable();
        let pct = |p: f64| -> Duration {
            if lat.is_empty() {
                return Duration::ZERO;
            }
            let pos = (p / 100.0) * (lat.len() - 1) as f64;
            let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
            let us = if lo == hi {
                lat[lo] as f64
            } else {
                lat[lo] as f64 + (lat[hi] as f64 - lat[lo] as f64) * (pos - lo as f64)
            };
            // Round, don't truncate: interpolation products like 0.95 × 3µs
            // land a hair under the exact nanosecond (2849.999…) and
            // truncation would shave it to 2849ns.
            Duration::from_nanos((us * 1e3).round() as u64)
        };
        let elapsed = self.window_start.lock().expect("stats lock").elapsed();
        let requests = self.requests.load(Ordering::Relaxed);
        let subplans = self.subplans.load(Ordering::Relaxed);
        let secs = elapsed.as_secs_f64().max(1e-12);
        StatsSnapshot {
            requests,
            subplans,
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            requests_per_second: requests as f64 / secs,
            subplans_per_second: subplans as f64 / secs,
            p50_latency: pct(50.0),
            p95_latency: pct(95.0),
            p99_latency: pct(99.0),
            queue_depth,
            queue_high_water,
            window: elapsed,
        }
    }
}

/// A point-in-time view of service health since the last reset.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Requests served successfully.
    pub requests: u64,
    /// Sub-plan estimates produced across those requests.
    pub subplans: u64,
    /// Requests that failed (unknown dataset).
    pub errors: u64,
    /// Requests refused by admission control (per-client in-flight quota)
    /// before they reached the queue.
    pub rejected: u64,
    /// Requests shed on submission because the bounded queue was full (the
    /// non-blocking submit path refuses load instead of blocking producers).
    pub shed: u64,
    /// Requests whose deadline had already passed when a worker picked
    /// them up: shed unserved (the deadline-aware worker path refuses to
    /// burn CPU on work nobody is waiting for).
    pub expired: u64,
    /// Worker panics contained while estimating. Each one resolved its
    /// request with [`crate::ServiceError::WorkerPanicked`] and the worker
    /// kept serving; a nonzero count is a bug signal, not a wedge.
    pub worker_panics: u64,
    /// Aggregate served requests per second over the window.
    pub requests_per_second: f64,
    /// Aggregate sub-plan estimates per second over the window — the
    /// throughput number the paper's serving story cares about.
    pub subplans_per_second: f64,
    /// Median end-to-end request latency (queue wait + estimation).
    ///
    /// Percentiles are exact while fewer requests than the latency
    /// reservoir's capacity (4096) have completed since the last reset;
    /// past that they describe the most recent 4096 requests (a
    /// deterministic sliding window), keeping memory bounded for
    /// daemon-length runs.
    pub p50_latency: Duration,
    /// 95th-percentile latency (same windowing as [`Self::p50_latency`]).
    pub p95_latency: Duration,
    /// 99th-percentile latency (same windowing as [`Self::p50_latency`]).
    pub p99_latency: Duration,
    /// Requests queued right now.
    pub queue_depth: usize,
    /// Deepest the request queue has been (capacity hit = producers were
    /// backpressured).
    pub queue_high_water: usize,
    /// Length of the measurement window.
    pub window: Duration,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} req ({} sub-plans, {} errors, {} rejected, {} shed, {} expired, \
             {} panics) in {:.2}s — \
             {:.0} req/s, {:.0} sub-plans/s; \
             latency p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs; queue depth {} (high-water {})",
            self.requests,
            self.subplans,
            self.errors,
            self.rejected,
            self.shed,
            self.expired,
            self.worker_panics,
            self.window.as_secs_f64(),
            self.requests_per_second,
            self.subplans_per_second,
            self.p50_latency.as_secs_f64() * 1e6,
            self.p95_latency.as_secs_f64() * 1e6,
            self.p99_latency.as_secs_f64() * 1e6,
            self.queue_depth,
            self.queue_high_water,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_ordered_and_reset_clears() {
        let s = StatsInner::new();
        for us in [100u64, 200, 300, 400, 1000] {
            s.record_success(3, Duration::from_micros(us));
        }
        s.record_error();
        let snap = s.snapshot(2, 7);
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.subplans, 15);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.rejected, 0);
        assert_eq!(snap.shed, 0);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.queue_high_water, 7);
        assert!(snap.p50_latency <= snap.p95_latency);
        assert!(snap.p95_latency <= snap.p99_latency);
        assert_eq!(snap.p50_latency, Duration::from_micros(300));
        assert!(snap.subplans_per_second > 0.0);
        let text = snap.to_string();
        assert!(text.contains("sub-plans/s"), "{text}");

        s.reset();
        let snap = s.snapshot(0, 7);
        assert_eq!(snap.requests, 0);
        assert_eq!(snap.p99_latency, Duration::ZERO);
    }

    #[test]
    fn interpolated_percentile_rounds_instead_of_truncating() {
        // p95 over [0µs, 3µs]: position 0.95 interpolates to 2.85µs, whose
        // f64 product 2.85 × 1000 is 2849.9999999999995ns. Truncation
        // reported 2849ns; rounding must report 2850ns.
        let s = StatsInner::new();
        s.record_success(1, Duration::from_micros(0));
        s.record_success(1, Duration::from_micros(3));
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.p95_latency, Duration::from_nanos(2850));
        // Exact midpoint stays exact.
        assert_eq!(snap.p50_latency, Duration::from_nanos(1500));
    }

    #[test]
    fn latency_memory_stays_bounded_past_capacity() {
        // Regression for the daemon-length memory leak: the reservoir must
        // never hold more than its capacity, no matter how many requests
        // are recorded.
        let s = StatsInner::with_latency_capacity(64);
        for i in 0..10_000u64 {
            s.record_success(1, Duration::from_micros(i));
        }
        {
            let inner = s.latencies_us.lock().unwrap();
            assert_eq!(inner.ring.len(), 64, "ring never grows past capacity");
            assert!(inner.ring.capacity() < 1024, "no hidden growth");
            assert_eq!(inner.total, 10_000);
        }
        // The window holds exactly the most recent 64 recordings
        // (9936..9999µs), so even p0-ish percentiles sit at the window
        // floor — documented sliding-window behaviour above capacity.
        let snap = s.snapshot(0, 0);
        assert!(snap.p50_latency >= Duration::from_micros(9936));
        assert!(snap.p99_latency <= Duration::from_micros(9999));
        assert!(snap.p50_latency <= snap.p99_latency);
    }

    #[test]
    fn percentiles_exact_below_capacity() {
        // Below capacity every sample is retained: percentiles over the
        // full history are exact even after many recordings.
        let s = StatsInner::with_latency_capacity(128);
        for us in 0..100u64 {
            s.record_success(1, Duration::from_micros(us));
        }
        let snap = s.snapshot(0, 0);
        // p50 over 0..=99 interpolates between 49 and 50 → 49.5µs.
        assert_eq!(snap.p50_latency, Duration::from_nanos(49_500));
    }

    #[test]
    fn expired_and_panic_counters_roundtrip() {
        let s = StatsInner::new();
        s.record_expired();
        s.record_expired();
        s.record_expired();
        s.record_worker_panic();
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.expired, 3);
        assert_eq!(snap.worker_panics, 1);
        let text = snap.to_string();
        assert!(text.contains("3 expired"), "{text}");
        assert!(text.contains("1 panics"), "{text}");
        s.reset();
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.expired, 0);
        assert_eq!(snap.worker_panics, 0);
    }

    #[test]
    fn rejected_and_shed_counters_roundtrip() {
        let s = StatsInner::new();
        s.record_rejected();
        s.record_rejected();
        s.record_shed(5);
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.rejected, 2);
        assert_eq!(snap.shed, 5);
        let text = snap.to_string();
        assert!(text.contains("2 rejected"), "{text}");
        assert!(text.contains("5 shed"), "{text}");
        s.reset();
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.rejected, 0);
        assert_eq!(snap.shed, 0);
    }
}
