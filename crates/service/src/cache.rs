//! Sharded, epoch-fenced sub-plan estimate cache.
//!
//! An optimizer fleet re-plans the same queries constantly, and every
//! re-plan re-requests the same canonical sub-plans. FactorJoin's
//! estimates are pure functions of (model, canonical sub-plan), so the
//! service tier can answer repeats without touching the model at all.
//! This module provides that fast path:
//!
//! * **Key** — `(model epoch, sub-plan mask, fingerprint)`. The
//!   fingerprint is [`fj_query::subplan_fingerprints`]'s seeded stable
//!   hash over the canonicalized sub-plan (table identities, filter
//!   terms in stored order, join-key equivalence structure projected
//!   onto the sub-plan); equal keys imply an isomorphic estimation
//!   computation and therefore a **bit-identical** `f64`. The value
//!   stored is the raw `f64::to_bits`, so a hit reproduces the miss
//!   exactly.
//! * **Epoch fencing** — registry epochs are globally unique and
//!   monotonic across datasets, so the epoch component both scopes keys
//!   to their dataset *and* invalidates the whole cache lazily on
//!   hot-swap/`apply_insert`: an entry written under the old model can
//!   never answer a request resolved against the new one. Stale entries
//!   are not swept; they become preferred eviction victims in place.
//! * **Sharding** — the table is split into [`NUM_SHARDS`] lock-striped
//!   shards selected by the fingerprint's high bits, so concurrent
//!   workers rarely contend on one mutex and there is no global lock.
//! * **Bounded memory** — each shard is a fixed set-associative array
//!   ([`WAYS`] entries per set, capacity chosen at construction and
//!   never grown). Insertion picks an empty slot, else a stale-epoch
//!   slot, else a round-robin victim within the set — eviction is O(WAYS)
//!   with no heap activity on the hot path.
//!
//! The cache itself is policy-free about *when* it is consulted; the
//! worker loop implements the all-or-nothing read (serve from cache only
//! when every sub-plan of the request hits) and counts hits/misses/
//! evictions into [`crate::StatsSnapshot`].

use std::sync::Mutex;

/// Number of lock-striped shards (power of two).
const NUM_SHARDS: usize = 16;

/// Set associativity: slots probed per lookup/insert.
const WAYS: usize = 8;

/// Seed for the stable sub-plan fingerprint hash. Fixed for the life of
/// a cache so the same canonical sub-plan always maps to the same key;
/// distinct from zero so accidental all-zero keys do not collide with
/// empty slots.
pub const FINGERPRINT_SEED: u64 = 0x6a09_e667_f3bc_c908;

/// One cached estimate. `epoch == 0` marks an empty slot — registry
/// epochs start at 1, so no live entry can carry epoch 0.
#[derive(Clone, Copy, Default)]
struct Entry {
    epoch: u64,
    mask: u64,
    fp: u64,
    bits: u64,
}

struct Shard {
    slots: Box<[Entry]>,
    /// Round-robin eviction cursor, advanced per forced eviction.
    tick: usize,
}

/// A sharded, bounded, epoch-fenced map from canonical sub-plans to
/// bit-exact estimates (see module docs).
pub struct SubplanCache {
    shards: Box<[Mutex<Shard>]>,
    /// Sets per shard (power of two), for masked set selection.
    sets_per_shard: usize,
}

impl SubplanCache {
    /// A cache holding at least `total_entries` estimates across all
    /// shards (rounded up so each shard is a power-of-two number of
    /// [`WAYS`]-wide sets). `total_entries` must be nonzero — a disabled
    /// cache is represented by *not constructing one* (see
    /// [`crate::ServiceConfig::subplan_cache_entries`]).
    pub fn new(total_entries: usize) -> Self {
        assert!(total_entries > 0, "use None, not an empty cache");
        let per_shard = total_entries.div_ceil(NUM_SHARDS);
        let sets_per_shard = per_shard.div_ceil(WAYS).next_power_of_two();
        let shards = (0..NUM_SHARDS)
            .map(|_| {
                Mutex::new(Shard {
                    slots: vec![Entry::default(); sets_per_shard * WAYS].into_boxed_slice(),
                    tick: 0,
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SubplanCache {
            shards,
            sets_per_shard,
        }
    }

    /// Total slot capacity (an upper bound on live entries, never grown).
    pub fn capacity(&self) -> usize {
        NUM_SHARDS * self.sets_per_shard * WAYS
    }

    /// Number of live (non-empty) entries right now, stale epochs
    /// included. O(capacity); for tests and introspection, not the hot
    /// path.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("cache shard lock");
                shard.slots.iter().filter(|e| e.epoch != 0).count()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mixes (mask, fp) into a slot hash. Epoch is deliberately left
    /// out: after a model swap the fresh entry lands in the same set as
    /// its stale predecessor, which the insert path then prefers as the
    /// victim — the common swap pattern reclaims stale space for free.
    #[inline]
    fn slot_hash(mask: u64, fp: u64) -> u64 {
        // splitmix64-style avalanche over the xor; fp is already
        // avalanched but mask is a raw bitmask and needs the mixing.
        let mut z = fp ^ mask.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn locate(&self, mask: u64, fp: u64) -> (usize, usize) {
        let h = Self::slot_hash(mask, fp);
        // High bits pick the shard, low bits the set — independent bit
        // ranges so shard striping does not skew set selection.
        let shard = (h >> 60) as usize & (NUM_SHARDS - 1);
        let set = (h as usize) & (self.sets_per_shard - 1);
        (shard, set * WAYS)
    }

    /// Looks up the estimate for `(epoch, mask, fp)`. Returns the stored
    /// `f64::to_bits` on a hit; entries written under any other epoch
    /// never match.
    pub fn get(&self, epoch: u64, mask: u64, fp: u64) -> Option<u64> {
        let (shard_idx, base) = self.locate(mask, fp);
        let shard = self.shards[shard_idx].lock().expect("cache shard lock");
        shard.slots[base..base + WAYS]
            .iter()
            .find(|e| e.epoch == epoch && e.mask == mask && e.fp == fp)
            .map(|e| e.bits)
    }

    /// Test-only view of where a key lands, for constructing colliding
    /// key sets in the eviction tests.
    #[cfg(test)]
    fn probe_location(&self, mask: u64, fp: u64) -> (usize, usize) {
        self.locate(mask, fp)
    }

    /// Inserts (or refreshes) the estimate for `(epoch, mask, fp)`.
    /// Returns `true` when a **live** entry of the same epoch was
    /// evicted to make room — the capacity-pressure signal surfaced as
    /// `fj_subplan_cache_evictions_total`. Overwriting an empty or
    /// stale-epoch slot is not an eviction.
    pub fn insert(&self, epoch: u64, mask: u64, fp: u64, bits: u64) -> bool {
        let (shard_idx, base) = self.locate(mask, fp);
        let mut shard = self.shards[shard_idx].lock().expect("cache shard lock");
        // Refresh an existing key in place (concurrent misses on the
        // same sub-plan insert the same bits — benign).
        let mut victim = None;
        for i in base..base + WAYS {
            let e = shard.slots[i];
            if e.epoch == epoch && e.mask == mask && e.fp == fp {
                shard.slots[i].bits = bits;
                return false;
            }
            if victim.is_none() && (e.epoch == 0 || e.epoch != epoch) {
                victim = Some(i); // empty or stale-epoch slot
            }
        }
        let (idx, evicted) = match victim {
            Some(i) => (i, false),
            None => {
                let i = base + shard.tick % WAYS;
                shard.tick = shard.tick.wrapping_add(1);
                (i, true)
            }
        };
        shard.slots[idx] = Entry {
            epoch,
            mask,
            fp,
            bits,
        };
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn hit_returns_exact_bits_and_wrong_epoch_misses() {
        let cache = SubplanCache::new(1024);
        let bits = (1234.5678f64).to_bits();
        assert!(cache.get(7, 0b1011, 42).is_none());
        cache.insert(7, 0b1011, 42, bits);
        assert_eq!(cache.get(7, 0b1011, 42), Some(bits));
        // Same sub-plan under any other epoch is a miss: the swapped
        // model must recompute.
        assert!(cache.get(8, 0b1011, 42).is_none());
        assert!(cache.get(6, 0b1011, 42).is_none());
        // Different mask or fingerprint is a different key.
        assert!(cache.get(7, 0b1111, 42).is_none());
        assert!(cache.get(7, 0b1011, 43).is_none());
    }

    #[test]
    fn refresh_in_place_is_not_an_eviction() {
        let cache = SubplanCache::new(1024);
        assert!(!cache.insert(1, 1, 1, 10));
        assert!(!cache.insert(1, 1, 1, 20), "refresh, not eviction");
        assert_eq!(cache.get(1, 1, 1), Some(20));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_is_bounded_under_churn_and_evictions_are_counted() {
        let cache = SubplanCache::new(256);
        let cap = cache.capacity();
        let mut evictions = 0usize;
        // Insert far more distinct keys than capacity.
        for i in 0..(cap as u64 * 8) {
            if cache.insert(1, i, i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i) {
                evictions += 1;
            }
        }
        assert!(cache.len() <= cap, "live entries bounded by capacity");
        assert!(
            evictions > 0,
            "8x oversubscription must force live evictions"
        );
    }

    #[test]
    fn stale_epoch_slots_are_preferred_victims() {
        // Deterministic per-set scenario: collect 2*WAYS+1 distinct keys
        // that all hash to the same set, then watch the victim policy.
        let cache = SubplanCache::new(1);
        let target = cache.probe_location(0, 0);
        let mut colliding = vec![(0u64, 0u64)];
        let mut fp = 1u64;
        while colliding.len() < 2 * WAYS + 1 {
            if cache.probe_location(7, fp) == target {
                colliding.push((7, fp));
            }
            fp += 1;
        }
        // Fill the set under epoch 1: first WAYS inserts take empty
        // slots, the next forces a live eviction.
        for &(mask, f) in &colliding[..WAYS] {
            assert!(!cache.insert(1, mask, f, 1), "empty slots absorb");
        }
        assert!(
            cache.insert(1, colliding[WAYS].0, colliding[WAYS].1, 1),
            "a full set of live same-epoch entries forces an eviction"
        );
        // Epoch bump: the set is full of now-stale epoch-1 entries.
        // WAYS fresh inserts must all land on stale slots (no eviction
        // counted) — and the WAYS+1-th, with the set now fully live
        // under epoch 2, evicts again.
        for &(mask, f) in &colliding[WAYS..2 * WAYS] {
            assert!(!cache.insert(2, mask, f, 2), "stale slots absorb");
        }
        assert!(
            cache.insert(2, colliding[2 * WAYS].0, colliding[2 * WAYS].1, 2),
            "no stale slot left: live eviction"
        );
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn concurrent_mixed_readers_and_writers_race_cleanly() {
        // Seeded stress: 8 threads hammer overlapping key ranges with
        // interleaved gets/inserts across two epochs. The invariant is
        // that any hit returns bits some thread inserted for exactly
        // that key — never bits from another key or epoch.
        let cache = Arc::new(SubplanCache::new(512));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let mut x = t.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
                    for _ in 0..20_000 {
                        // xorshift64 for a seeded, thread-distinct stream
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let epoch = 1 + (x % 2);
                        let mask = x % 64;
                        let fp = x % 128;
                        // Value is a pure function of the key, so any
                        // winner of an insert race stored the same
                        // truth every reader expects.
                        let bits = epoch
                            .wrapping_mul(0x100_0000_01b3)
                            .wrapping_add(mask << 32)
                            .wrapping_add(fp);
                        if x % 3 == 0 {
                            cache.insert(epoch, mask, fp, bits);
                        } else if let Some(got) = cache.get(epoch, mask, fp) {
                            assert_eq!(got, bits, "hit must be the bits inserted for this key");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("stress thread");
        }
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn tiny_capacity_still_rounds_up_to_a_full_set() {
        let cache = SubplanCache::new(1);
        assert!(cache.capacity() >= WAYS);
        cache.insert(1, 0, 0, 99);
        assert_eq!(cache.get(1, 0, 0), Some(99));
    }
}
