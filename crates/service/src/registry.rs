//! The model registry: named, hot-swappable, `Arc`-shared trained models.
//!
//! FactorJoin's split between heavy offline training and cheap online
//! reads means one trained [`FactorJoinModel`] can serve an optimizer
//! fleet. The registry holds one immutable model per dataset behind an
//! `Arc`; readers clone the `Arc` (a refcount bump) and never block each
//! other. Publishing a retrained model ([`ModelRegistry::swap_model`]) is
//! atomic with respect to readers: a request is served either entirely by
//! the old model or entirely by the new one — epochs on the handle let
//! clients tell which.

use factorjoin::{FactorJoinModel, ModelDelta};
use fj_storage::Catalog;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A resolved model: the shared model plus the epoch it was published at.
#[derive(Clone)]
pub struct ModelHandle {
    /// The trained model (immutable after training; shared by refcount).
    pub model: Arc<FactorJoinModel>,
    /// Monotonically increasing publication epoch, unique across datasets.
    pub epoch: u64,
}

struct Entry {
    model: Arc<FactorJoinModel>,
    catalog: Option<Arc<Catalog>>,
    epoch: u64,
}

/// Named model store with atomic hot-swap (see module docs).
#[derive(Default)]
pub struct ModelRegistry {
    entries: RwLock<HashMap<String, Entry>>,
    next_epoch: AtomicU64,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_epoch(&self) -> u64 {
        self.next_epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Publishes `model` under `dataset`, replacing any previous model.
    /// Returns the publication epoch.
    pub fn publish(&self, dataset: &str, model: Arc<FactorJoinModel>) -> u64 {
        self.publish_entry(dataset, model, None)
    }

    /// [`Self::publish`] keeping the training catalog alongside the model,
    /// for offline paths that retrain or incrementally update (the model
    /// itself never needs the catalog to serve estimates).
    pub fn publish_with_catalog(
        &self,
        dataset: &str,
        model: Arc<FactorJoinModel>,
        catalog: Arc<Catalog>,
    ) -> u64 {
        self.publish_entry(dataset, model, Some(catalog))
    }

    fn publish_entry(
        &self,
        dataset: &str,
        model: Arc<FactorJoinModel>,
        catalog: Option<Arc<Catalog>>,
    ) -> u64 {
        let mut entries = self.entries.write().expect("registry lock");
        // Allocate the epoch under the write lock so install order matches
        // epoch order: concurrent publishers cannot install a lower epoch
        // after a higher one.
        let epoch = self.fresh_epoch();
        let slot = entries.entry(dataset.to_string());
        match slot {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let prev_catalog = e.get().catalog.clone();
                e.insert(Entry {
                    model,
                    catalog: catalog.or(prev_catalog),
                    epoch,
                });
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Entry {
                    model,
                    catalog,
                    epoch,
                });
            }
        }
        epoch
    }

    /// Atomically replaces the model of an existing dataset — the hot-swap
    /// path for offline retraining (see `examples/incremental_update.rs`
    /// for producing the retrained model). Returns the replaced model, or
    /// `None` (publishing nothing) if the dataset is unknown; readers in
    /// flight keep the old `Arc` alive until they finish.
    pub fn swap_model(
        &self,
        dataset: &str,
        model: Arc<FactorJoinModel>,
    ) -> Option<Arc<FactorJoinModel>> {
        let mut entries = self.entries.write().expect("registry lock");
        let entry = entries.get_mut(dataset)?;
        // Under the write lock, like publish_entry: install order must
        // match epoch order or clients comparing epochs would mistake a
        // superseded model for the newest one.
        entry.epoch = self.fresh_epoch();
        Some(std::mem::replace(&mut entry.model, model))
    }

    /// Absorbs a staged insert batch into the served model of `dataset`
    /// **without a cold rebuild** (paper §4.3): clones the current model,
    /// applies the delta in `O(|delta|)` through the frozen bin maps, and
    /// publishes the updated copy atomically. Readers are never blocked by
    /// the update — the expensive clone-and-apply runs outside the
    /// registry lock, and an optimistic epoch check retries if another
    /// publisher won the race meanwhile (so a concurrent swap is never
    /// silently overwritten with statistics derived from its predecessor).
    ///
    /// `catalog` must already contain the appended rows the delta
    /// describes. Returns the new epoch, or `None` when the dataset is
    /// unknown.
    pub fn apply_insert(
        &self,
        dataset: &str,
        catalog: &Catalog,
        delta: &ModelDelta,
    ) -> Option<u64> {
        self.apply_insert_observed(dataset, catalog, delta, |_| {})
    }

    /// [`Self::apply_insert`] with a test seam: `observed` is called with
    /// the epoch each retry loop iteration read, *before* the update is
    /// computed and installed — the window in which a concurrent publisher
    /// can win the race. Production code goes through [`Self::apply_insert`]
    /// (a no-op observer); the race regression test uses the seam to force
    /// a swap inside the window deterministically.
    fn apply_insert_observed(
        &self,
        dataset: &str,
        catalog: &Catalog,
        delta: &ModelDelta,
        mut observed: impl FnMut(u64),
    ) -> Option<u64> {
        loop {
            let handle = self.get(dataset)?;
            observed(handle.epoch);
            let updated = Arc::new(handle.model.updated_with(catalog, delta));
            let mut entries = self.entries.write().expect("registry lock");
            let entry = entries.get_mut(dataset)?;
            if entry.epoch != handle.epoch {
                // Raced with another publisher: redo the update against
                // the model that actually won.
                continue;
            }
            let epoch = self.fresh_epoch();
            entry.epoch = epoch;
            entry.model = updated;
            return Some(epoch);
        }
    }

    /// Persists the served model of `dataset` to `path` — the format
    /// follows the extension (`.json` → JSON debug export, anything else →
    /// binary `.fjm`), and the write is crash-safe (same-dir temp + fsync
    /// + rename). Fails with `NotFound` for an unknown dataset.
    pub fn save_dataset(&self, dataset: &str, path: &std::path::Path) -> std::io::Result<()> {
        let handle = self.get(dataset).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("unknown dataset {dataset:?}"),
            )
        })?;
        factorjoin::save_model(&handle.model, path)
    }

    /// Loads a model file (binary `.fjm` or JSON — `load_model` sniffs the
    /// magic bytes) and publishes it under `dataset`, keeping `catalog`
    /// alongside for later retrains/updates. Returns the publication
    /// epoch. This is the registry's cold-start path: ship a trained
    /// `.fjm` to a fresh shard and it serves without retraining.
    pub fn load_and_publish(
        &self,
        dataset: &str,
        path: &std::path::Path,
        catalog: Arc<Catalog>,
    ) -> std::io::Result<u64> {
        let model = factorjoin::load_model(path, &catalog)?;
        Ok(self.publish_with_catalog(dataset, Arc::new(model), catalog))
    }

    /// Resolves `dataset` to its current model and epoch.
    pub fn get(&self, dataset: &str) -> Option<ModelHandle> {
        let entries = self.entries.read().expect("registry lock");
        entries.get(dataset).map(|e| ModelHandle {
            model: Arc::clone(&e.model),
            epoch: e.epoch,
        })
    }

    /// The catalog published alongside `dataset`, if any.
    pub fn catalog(&self, dataset: &str) -> Option<Arc<Catalog>> {
        let entries = self.entries.read().expect("registry lock");
        entries.get(dataset).and_then(|e| e.catalog.clone())
    }

    /// Registered dataset names, sorted.
    pub fn datasets(&self) -> Vec<String> {
        let entries = self.entries.read().expect("registry lock");
        let mut names: Vec<String> = entries.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.entries.read().expect("registry lock").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorjoin::{BaseEstimatorKind, BinBudget, FactorJoinConfig, FactorJoinModel};
    use fj_datagen::{stats_catalog, StatsConfig};

    fn tiny_model(k: usize) -> (Arc<FactorJoinModel>, Catalog) {
        let cat = stats_catalog(&StatsConfig {
            scale: 0.02,
            ..Default::default()
        });
        let model = FactorJoinModel::train(
            &cat,
            FactorJoinConfig {
                bin_budget: BinBudget::Uniform(k),
                estimator: BaseEstimatorKind::TrueScan,
                ..Default::default()
            },
        );
        (Arc::new(model), cat)
    }

    #[test]
    fn publish_get_swap_epochs() {
        let (m1, cat) = tiny_model(5);
        let (m2, _) = tiny_model(10);
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.get("stats").is_none());

        let e1 = reg.publish_with_catalog("stats", Arc::clone(&m1), Arc::new(cat));
        let h1 = reg.get("stats").unwrap();
        assert_eq!(h1.epoch, e1);
        assert!(Arc::ptr_eq(&h1.model, &m1));
        assert!(reg.catalog("stats").is_some());

        let old = reg.swap_model("stats", Arc::clone(&m2)).unwrap();
        assert!(Arc::ptr_eq(&old, &m1));
        let h2 = reg.get("stats").unwrap();
        assert!(h2.epoch > e1, "swap advances the epoch");
        assert!(Arc::ptr_eq(&h2.model, &m2));
        // Swap keeps the catalog of the original publication.
        assert!(reg.catalog("stats").is_some());

        assert!(reg.swap_model("unknown", m2).is_none());
        assert_eq!(reg.datasets(), vec!["stats".to_string()]);
    }

    #[test]
    fn concurrent_swaps_install_in_epoch_order() {
        // Regression: epochs are allocated under the registry write lock,
        // so the last-installed model must carry the highest epoch handed
        // out — racing publishers can never leave a stale model looking
        // newer than the winner.
        let (m, _) = tiny_model(5);
        let reg = Arc::new(ModelRegistry::new());
        reg.publish("stats", Arc::clone(&m));
        let swappers: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    (0..50)
                        .map(|_| {
                            reg.swap_model("stats", Arc::clone(&m)).expect("registered");
                            reg.get("stats").expect("registered").epoch
                        })
                        .max()
                        .expect("swapped at least once")
                })
            })
            .collect();
        let max_seen = swappers
            .into_iter()
            .map(|h| h.join().expect("swapper"))
            .max()
            .expect("non-empty");
        assert_eq!(
            reg.get("stats").expect("registered").epoch,
            max_seen,
            "final model must carry the highest installed epoch"
        );
    }

    #[test]
    fn apply_insert_updates_and_advances_epoch() {
        let (m, cat) = tiny_model(10);
        let reg = ModelRegistry::new();
        let delta = ModelDelta::new();
        // Unknown dataset → None, nothing published.
        assert!(reg.apply_insert("stats", &cat, &delta).is_none());
        let e1 = reg.publish("stats", Arc::clone(&m));
        // An empty delta still republishes (a fresh model copy) and
        // advances the epoch — callers can use it as a no-op refresh.
        let e2 = reg.apply_insert("stats", &cat, &delta).unwrap();
        assert!(e2 > e1);
        let h = reg.get("stats").unwrap();
        assert_eq!(h.epoch, e2);
        assert!(
            !Arc::ptr_eq(&h.model, &m),
            "apply_insert publishes a copy, never the original Arc"
        );
        assert_eq!(h.model.report().model_bytes, m.report().model_bytes);
    }

    #[test]
    fn apply_insert_losing_the_epoch_race_retries_against_the_winner() {
        // Regression for the optimistic-retry loop actually losing its
        // race: a swap lands between apply_insert's `get` and its install,
        // and the update must be redone against the winner — publishing
        // statistics derived from the superseded model would silently
        // undo the swap.
        let (loser, cat) = tiny_model(5);
        let (winner, _) = tiny_model(10);
        assert_ne!(
            loser.report().model_bytes,
            winner.report().model_bytes,
            "the two models must be distinguishable"
        );
        let reg = Arc::new(ModelRegistry::new());
        reg.publish("stats", Arc::clone(&loser));

        // Swapper thread: parked on a barrier until apply_insert is inside
        // its race window, then installs the winner and rejoins.
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let swapper = {
            let (reg, winner, barrier) =
                (Arc::clone(&reg), Arc::clone(&winner), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait(); // apply_insert has read its epoch
                assert!(reg.swap_model("stats", winner).is_some());
                barrier.wait(); // swap installed; let apply_insert proceed
            })
        };

        let delta = ModelDelta::new();
        let mut observed_epochs = Vec::new();
        let epoch = {
            let barrier = Arc::clone(&barrier);
            reg.apply_insert_observed("stats", &cat, &delta, |epoch| {
                observed_epochs.push(epoch);
                if observed_epochs.len() == 1 {
                    // First pass: hold the window open while the swapper
                    // wins the race.
                    barrier.wait();
                    barrier.wait();
                }
            })
            .expect("dataset registered")
        };
        swapper.join().expect("swapper thread");

        assert_eq!(
            observed_epochs.len(),
            2,
            "the lost race forced exactly one retry"
        );
        assert!(
            observed_epochs[1] > observed_epochs[0],
            "the retry observed the winner's (newer) epoch"
        );
        let final_handle = reg.get("stats").expect("registered");
        assert_eq!(final_handle.epoch, epoch);
        assert_eq!(
            final_handle.model.report().model_bytes,
            winner.report().model_bytes,
            "the published statistics derive from the winner, not the stale loser"
        );
    }

    #[test]
    fn save_dataset_and_load_and_publish_roundtrip_through_disk() {
        use fj_datagen::{stats_ceb_workload, WorkloadConfig};
        let (m, cat) = tiny_model(8);
        let queries = stats_ceb_workload(&cat, &WorkloadConfig::tiny(21));
        let reg = ModelRegistry::new();
        reg.publish("stats", Arc::clone(&m));

        let dir = std::env::temp_dir().join("fj_registry_persist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.fjm");
        // Unknown dataset: NotFound, and nothing written.
        let e = reg.save_dataset("nope", &path).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
        assert!(!path.exists());

        reg.save_dataset("stats", &path).unwrap();
        // Cold start on a fresh registry shard: load the shipped .fjm and
        // serve bit-identically to the original in-memory model.
        let reg2 = ModelRegistry::new();
        let epoch = reg2
            .load_and_publish("stats", &path, Arc::new(cat))
            .unwrap();
        let h = reg2.get("stats").unwrap();
        assert_eq!(h.epoch, epoch);
        assert!(
            reg2.catalog("stats").is_some(),
            "catalog kept for later updates"
        );
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                m.estimate(q).to_bits(),
                h.model.estimate(q).to_bits(),
                "q{i}: loaded shard must serve bit-identically"
            );
        }
        // A corrupt file refuses to publish and leaves the registry empty.
        let bad = dir.join("bad.fjm");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes.truncate(mid);
        std::fs::write(&bad, &bytes).unwrap();
        let reg3 = ModelRegistry::new();
        let cat3 = reg2.catalog("stats").unwrap();
        assert!(reg3.load_and_publish("stats", &bad, cat3).is_err());
        assert!(reg3.is_empty(), "failed load must not publish");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epochs_unique_across_datasets() {
        let (m, _) = tiny_model(5);
        let reg = ModelRegistry::new();
        let e1 = reg.publish("a", Arc::clone(&m));
        let e2 = reg.publish("b", Arc::clone(&m));
        let e3 = reg.publish("a", m); // re-publish replaces
        assert!(e1 < e2 && e2 < e3);
        assert_eq!(reg.len(), 2);
    }
}
