//! Deterministic fault injection for resilience testing.
//!
//! Everything here is reproducible from a `u64` seed: a failing chaos run
//! prints its seed, and re-running with that seed replays the exact same
//! byte-level fault schedule. Two layers:
//!
//! - [`FaultyStream`] wraps any `Read`/`Write` transport and applies a
//!   [`FaultScript`] per direction — split writes into 1-byte chunks,
//!   inject a delay, corrupt a byte, sever, or stall at scripted stream
//!   offsets. Use it to unit-test codecs against torn/corrupted I/O
//!   without sockets.
//! - [`FaultProxy`] is an in-process TCP proxy that applies a
//!   [`FaultPlan`] (one script per direction) between a real client and a
//!   real server, for integration tests: the peers run unmodified and the
//!   proxy misbehaves on cue.
//!
//! In a [`FaultyStream`], a stall surfaces immediately as an
//! [`std::io::ErrorKind::TimedOut`] error (modelling what a socket
//! timeout would deliver); only the proxy holds a genuinely silent open
//! connection, bounded by dropping the proxy.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The `splitmix64` PRNG step: advances `state` and returns the next
/// pseudo-random value. This is the one generator behind every seeded
/// fault schedule, retry jitter, and fuzz mutation in the crate, so a seed
/// means the same byte stream everywhere.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How a scripted cut terminates a stream direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutKind {
    /// The connection dies: writes fail with `BrokenPipe`, reads hit EOF.
    Sever,
    /// The peer goes silent but the connection stays open — the failure
    /// mode only a timeout can unstick.
    Stall,
}

/// One direction's scripted misbehavior, keyed by byte offsets into the
/// stream so a schedule can hit precisely mid-frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultScript {
    /// Split every write into 1-byte chunks (tests short-read/short-write
    /// handling; the bytes themselves arrive intact).
    pub chunk: bool,
    /// Sleep once, just before the first byte at or past this offset.
    pub delay: Option<(u64, Duration)>,
    /// XOR one byte: `(offset, mask)` with a non-zero mask.
    pub corrupt: Option<(u64, u8)>,
    /// Stop forwarding at this offset, by severing or stalling.
    pub cut: Option<(u64, CutKind)>,
}

impl FaultScript {
    /// No faults: bytes pass through untouched.
    pub fn clean() -> Self {
        FaultScript::default()
    }

    /// 1-byte write chunking only.
    pub fn chunked() -> Self {
        FaultScript {
            chunk: true,
            ..Default::default()
        }
    }

    /// A single delay before the byte at `offset`.
    pub fn delay_at(offset: u64, delay: Duration) -> Self {
        FaultScript {
            delay: Some((offset, delay)),
            ..Default::default()
        }
    }

    /// Flip bits of the byte at `offset` with `mask`.
    pub fn corrupt_at(offset: u64, mask: u8) -> Self {
        FaultScript {
            corrupt: Some((offset, mask.max(1))),
            ..Default::default()
        }
    }

    /// Kill the connection once `offset` bytes have passed.
    pub fn sever_at(offset: u64) -> Self {
        FaultScript {
            cut: Some((offset, CutKind::Sever)),
            ..Default::default()
        }
    }

    /// Go silent (connection open, no progress) once `offset` bytes have
    /// passed.
    pub fn stall_at(offset: u64) -> Self {
        FaultScript {
            cut: Some((offset, CutKind::Stall)),
            ..Default::default()
        }
    }

    fn derive(rng: &mut u64) -> Self {
        let mut script = FaultScript {
            chunk: splitmix64(rng).is_multiple_of(3),
            ..Default::default()
        };
        if splitmix64(rng).is_multiple_of(3) {
            script.delay = Some((
                splitmix64(rng) % 256,
                Duration::from_millis(1 + splitmix64(rng) % 5),
            ));
        }
        if splitmix64(rng).is_multiple_of(3) {
            script.corrupt = Some((splitmix64(rng) % 256, (splitmix64(rng) % 255) as u8 + 1));
        }
        match splitmix64(rng) % 4 {
            0 => script.cut = Some((splitmix64(rng) % 512, CutKind::Sever)),
            1 => script.cut = Some((splitmix64(rng) % 512, CutKind::Stall)),
            _ => {}
        }
        script
    }
}

/// A full connection's fault schedule: one script per direction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Applied to bytes flowing client → server.
    pub client_to_server: FaultScript,
    /// Applied to bytes flowing server → client.
    pub server_to_client: FaultScript,
}

impl FaultPlan {
    /// A randomized but fully reproducible plan: the same seed always
    /// yields the same plan, and most seeds combine several fault kinds.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = seed ^ 0xfa17_u64.rotate_left(17);
        FaultPlan {
            client_to_server: FaultScript::derive(&mut rng),
            server_to_client: FaultScript::derive(&mut rng),
        }
    }

    /// Faults on the client→server direction only.
    pub fn uplink(script: FaultScript) -> Self {
        FaultPlan {
            client_to_server: script,
            server_to_client: FaultScript::clean(),
        }
    }

    /// Faults on the server→client direction only.
    pub fn downlink(script: FaultScript) -> Self {
        FaultPlan {
            client_to_server: FaultScript::clean(),
            server_to_client: script,
        }
    }
}

/// A `Read`/`Write` transport that misbehaves on schedule.
///
/// The write script applies to bytes written, the read script to bytes
/// read; each direction tracks its own byte offset. See the module docs
/// for stall semantics.
pub struct FaultyStream<S> {
    inner: S,
    write_script: FaultScript,
    read_script: FaultScript,
    written: u64,
    consumed: u64,
    write_delay_pending: bool,
    read_delay_pending: bool,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` with independent per-direction scripts.
    pub fn new(inner: S, write_script: FaultScript, read_script: FaultScript) -> Self {
        let write_delay_pending = write_script.delay.is_some();
        let read_delay_pending = read_script.delay.is_some();
        FaultyStream {
            inner,
            write_script,
            read_script,
            written: 0,
            consumed: 0,
            write_delay_pending,
            read_delay_pending,
        }
    }

    /// Faults on writes only; reads pass through untouched.
    pub fn writes_only(inner: S, script: FaultScript) -> Self {
        Self::new(inner, script, FaultScript::clean())
    }

    /// Unwraps the transport.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn cut_error(kind: CutKind) -> io::Error {
        match kind {
            CutKind::Sever => {
                io::Error::new(io::ErrorKind::BrokenPipe, "fault injection: stream severed")
            }
            CutKind::Stall => {
                io::Error::new(io::ErrorKind::TimedOut, "fault injection: stream stalled")
            }
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        if self.write_delay_pending {
            if let Some((offset, delay)) = self.write_script.delay {
                if self.written >= offset {
                    self.write_delay_pending = false;
                    std::thread::sleep(delay);
                }
            }
        }
        let mut limit = buf.len();
        if let Some((offset, kind)) = self.write_script.cut {
            if self.written >= offset {
                return Err(Self::cut_error(kind));
            }
            limit = limit.min((offset - self.written) as usize);
        }
        if self.write_script.chunk {
            limit = limit.min(1);
        }
        let n = if let Some((offset, mask)) = self.write_script.corrupt {
            if offset >= self.written && offset < self.written + limit as u64 {
                let mut corrupted = buf[..limit].to_vec();
                corrupted[(offset - self.written) as usize] ^= mask.max(1);
                self.inner.write(&corrupted)?
            } else {
                self.inner.write(&buf[..limit])?
            }
        } else {
            self.inner.write(&buf[..limit])?
        };
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.read_delay_pending {
            if let Some((offset, delay)) = self.read_script.delay {
                if self.consumed >= offset {
                    self.read_delay_pending = false;
                    std::thread::sleep(delay);
                }
            }
        }
        let mut limit = buf.len();
        if let Some((offset, kind)) = self.read_script.cut {
            if self.consumed >= offset {
                return match kind {
                    // A severed read side is an EOF, possibly mid-frame.
                    CutKind::Sever => Ok(0),
                    CutKind::Stall => Err(Self::cut_error(kind)),
                };
            }
            limit = limit.min((offset - self.consumed) as usize);
        }
        if self.read_script.chunk {
            limit = limit.min(1);
        }
        let n = self.inner.read(&mut buf[..limit])?;
        if let Some((offset, mask)) = self.read_script.corrupt {
            if offset >= self.consumed && offset < self.consumed + n as u64 {
                buf[(offset - self.consumed) as usize] ^= mask.max(1);
            }
        }
        self.consumed += n as u64;
        Ok(n)
    }
}

/// An in-process TCP proxy that forwards `127.0.0.1` traffic to an
/// upstream address through a [`FaultPlan`].
///
/// Every accepted connection gets a fresh copy of the plan (offsets start
/// at zero per connection), so one proxy can serve a sequence of chaos
/// episodes. Dropping the proxy stops the accept loop, unsticks any
/// stalled direction, and joins every pump thread — a stalled schedule
/// never outlives the test that scripted it.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// How often pump threads wake to check the stop flag (bounds both
/// proxy-drop latency and the granularity of a stalled direction).
const PUMP_TICK: Duration = Duration::from_millis(20);

impl FaultProxy {
    /// Binds an ephemeral loopback port and forwards connections to
    /// `upstream` through `plan`.
    pub fn launch(upstream: SocketAddr, plan: FaultPlan) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("fj-fault-proxy".to_string())
            .spawn(move || proxy_accept_loop(listener, upstream, plan, accept_stop))
            .expect("spawn fault-proxy thread");
        Ok(FaultProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — point the client here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection (errors mean
        // it is already past accept()).
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn proxy_accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    stop: Arc<AtomicBool>,
) {
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(PUMP_TICK);
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            break; // the drop poke, or a client racing it
        }
        // A dead upstream drops the client connection — exactly what the
        // client of a crashed server would see.
        let Ok(server) = TcpStream::connect(upstream) else {
            continue;
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        let (Ok(client_rx), Ok(server_rx)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        for (src, dst, script) in [
            (client_rx, server, plan.client_to_server.clone()),
            (server_rx, client, plan.server_to_client.clone()),
        ] {
            let stop = Arc::clone(&stop);
            pumps.push(
                std::thread::Builder::new()
                    .name("fj-fault-pump".to_string())
                    .spawn(move || pump(src, dst, script, &stop))
                    .expect("spawn fault-pump thread"),
            );
        }
    }
    for pump in pumps {
        let _ = pump.join();
    }
}

/// Forwards one direction through its script until EOF, a cut, a transport
/// error, or the stop flag.
fn pump(mut src: TcpStream, dst: TcpStream, script: FaultScript, stop: &AtomicBool) {
    // The read timeout doubles as the stop-flag poll interval, so a pump
    // blocked on a quiet source still notices the proxy being dropped.
    let _ = src.set_read_timeout(Some(PUMP_TICK));
    let mut out = FaultyStream::writes_only(dst, script);
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => match out.write_all(&buf[..n]) {
                Ok(()) => {
                    let _ = out.flush();
                }
                // A scripted stall: hold the connection open and silent
                // until the proxy is dropped.
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(PUMP_TICK);
                    }
                    break;
                }
                // A scripted sever, or the destination actually died.
                Err(_) => break,
            },
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = out.into_inner().shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn splitmix64_is_deterministic_and_seed_sensitive() {
        let mut a = 42u64;
        let mut b = 42u64;
        let seq_a: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same stream");
        let mut c = 43u64;
        let seq_c: Vec<u64> = (0..8).map(|_| splitmix64(&mut c)).collect();
        assert_ne!(seq_a, seq_c, "different seed, different stream");
        // Known-good first output for seed 0 (reference splitmix64).
        let mut zero = 0u64;
        assert_eq!(splitmix64(&mut zero), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn fault_plans_replay_identically_from_a_seed() {
        for seed in 0..200u64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
        // And seeds actually vary the plan.
        let distinct: std::collections::HashSet<String> = (0..50u64)
            .map(|s| format!("{:?}", FaultPlan::from_seed(s)))
            .collect();
        assert!(distinct.len() > 10, "seeds vary plans: {}", distinct.len());
    }

    #[test]
    fn chunked_writes_deliver_every_byte_intact() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let mut stream = FaultyStream::writes_only(Vec::new(), FaultScript::chunked());
        stream.write_all(&payload).unwrap();
        assert_eq!(stream.into_inner(), payload);
    }

    #[test]
    fn corruption_flips_exactly_the_scripted_byte() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let mut stream = FaultyStream::writes_only(Vec::new(), FaultScript::corrupt_at(100, 0xff));
        stream.write_all(&payload).unwrap();
        let got = stream.into_inner();
        assert_eq!(got.len(), payload.len());
        for (i, (&g, &p)) in got.iter().zip(&payload).enumerate() {
            if i == 100 {
                assert_eq!(g, p ^ 0xff, "scripted byte flipped");
            } else {
                assert_eq!(g, p, "byte {i} untouched");
            }
        }
    }

    #[test]
    fn sever_cuts_after_exactly_the_scripted_prefix() {
        let payload = [7u8; 64];
        let mut stream = FaultyStream::writes_only(Vec::new(), FaultScript::sever_at(10));
        let err = stream.write_all(&payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(stream.into_inner().len(), 10, "prefix made it through");
    }

    #[test]
    fn stalled_and_severed_reads_surface_distinctly() {
        let data = [1u8; 32];
        // Stall: TimedOut after the prefix.
        let mut stream = FaultyStream::new(
            Cursor::new(data),
            FaultScript::clean(),
            FaultScript::stall_at(5),
        );
        let mut sink = Vec::new();
        let err = stream.read_to_end(&mut sink).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(sink, &data[..5]);
        // Sever: clean EOF after the prefix (the codec layer decides
        // whether mid-frame EOF is an error).
        let mut stream = FaultyStream::new(
            Cursor::new(data),
            FaultScript::clean(),
            FaultScript::sever_at(5),
        );
        let mut sink = Vec::new();
        stream.read_to_end(&mut sink).unwrap();
        assert_eq!(sink, &data[..5]);
    }

    #[test]
    fn read_corruption_hits_the_scripted_offset_across_chunked_reads() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut script = FaultScript::corrupt_at(200, 0x01);
        script.chunk = true; // 1-byte reads: the offset must still land
        let mut stream = FaultyStream::new(Cursor::new(data.clone()), FaultScript::clean(), script);
        let mut sink = Vec::new();
        stream.read_to_end(&mut sink).unwrap();
        assert_eq!(sink.len(), data.len());
        assert_eq!(sink[200], data[200] ^ 0x01);
        assert_eq!(&sink[..200], &data[..200]);
        assert_eq!(&sink[201..], &data[201..]);
    }
}
