//! The length-prefixed binary wire protocol shared by [`super::FjServer`]
//! and [`super::FjClient`].
//!
//! Everything is hand-rolled on `std` (the build environment has no
//! registry access, so no serde/tokio/tonic): little-endian fixed-width
//! integers, `f64` as raw IEEE-754 bits (estimates cross the wire
//! **bit-identical**), and length-prefixed UTF-8 strings.
//!
//! ## Framing
//!
//! Every message is one frame: a `u32` payload length followed by the
//! payload, whose first byte is the opcode. Frames larger than
//! [`MAX_FRAME_LEN`] are rejected before allocation, so a garbage length
//! prefix cannot OOM the peer.
//!
//! | opcode | direction | message |
//! |-------:|-----------|---------|
//! | `0x01` | C → S     | `Hello { version }` — first frame after connect |
//! | `0x02` | C → S     | `EstimateBatch { request_id, dataset, min_size, queries[, deadline_ms[, trace_id]] }` |
//! | `0x03` | C → S     | `Health` — liveness/load probe |
//! | `0x04` | C → S     | `Metrics` — scrape the server's metrics plane |
//! | `0x81` | S → C     | `HelloOk { version, datasets }` |
//! | `0x82` | S → C     | `BatchResult { request_id, results }` — each result epoch-tagged |
//! | `0x83` | S → C     | `Rejected { request_id, reason, message }` |
//! | `0x84` | S → C     | `HealthOk { draining, shards }` |
//! | `0x85` | S → C     | `MetricsOk { text }` — Prometheus exposition + slow-query log |
//!
//! `request_id` is a client-chosen multiplexing tag: a client may pipeline
//! any number of `EstimateBatch` frames before reading, and the server
//! responds per request as each completes (order not guaranteed).
//! Responses carry the serving model's registry epoch per query, so a
//! client observing an epoch change mid-flight has detected a hot-swap.
//!
//! ## Versioning
//!
//! Version 2 added the optional trailing `deadline_ms` on `EstimateBatch`
//! (a **relative** millisecond budget — peers' wall clocks are not
//! synchronized) and the `Health`/`HealthOk` probe. Version 3 adds a
//! second optional trailing field, the client-minted `trace_id` (0 =
//! untraced, field absent), and the `Metrics`/`MetricsOk` scrape pair.
//! Trailing fields detect their own presence from the remaining payload
//! length — 0, 8, or 16 bytes after the queries — so an untraced frame is
//! byte-identical to its v2 encoding and an untraced, deadline-less frame
//! to its v1 encoding. Either side accepts any peer version in
//! `[`[`MIN_PROTOCOL_VERSION`]`, `[`PROTOCOL_VERSION`]`]`.

use crate::request::RejectReason;
use fj_query::{ColRef, FilterExpr, JoinPredicate, Predicate, Query, SubplanMask, TableRef};
use fj_storage::Value;
use std::io::{Read, Write};

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest peer version this build still accepts (the version-2 and
/// version-3 additions are optional-trailing, so version-1 and version-2
/// frames decode unchanged).
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on a frame payload, validated before allocating.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Opcode of the client hello frame.
pub const OP_HELLO: u8 = 0x01;
/// Opcode of an estimate-batch request frame.
pub const OP_ESTIMATE_BATCH: u8 = 0x02;
/// Opcode of a health-probe request frame.
pub const OP_HEALTH: u8 = 0x03;
/// Opcode of a metrics-scrape request frame.
pub const OP_METRICS: u8 = 0x04;
/// Opcode of the server hello-acknowledgement frame.
pub const OP_HELLO_OK: u8 = 0x81;
/// Opcode of a batch-result frame.
pub const OP_BATCH_RESULT: u8 = 0x82;
/// Opcode of a rejection frame.
pub const OP_REJECTED: u8 = 0x83;
/// Opcode of a health-probe response frame.
pub const OP_HEALTH_OK: u8 = 0x84;
/// Opcode of a metrics-scrape response frame.
pub const OP_METRICS_OK: u8 = 0x85;

/// A malformed or unexpected wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being decoded.
    Truncated,
    /// An enum tag byte had no defined meaning.
    BadTag {
        /// Which decoder hit the tag.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A frame length prefix exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
    /// The peer spoke a protocol version outside the accepted
    /// `[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]` range.
    VersionMismatch {
        /// Version in the peer's hello.
        theirs: u32,
    },
    /// A decoded query failed structural validation.
    BadQuery(String),
    /// Trailing bytes after a complete message.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::VersionMismatch { theirs } => {
                write!(
                    f,
                    "peer speaks protocol version {theirs}, this build accepts \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}"
                )
            }
            WireError::BadQuery(msg) => write!(f, "invalid query on the wire: {msg}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

// ------------------------------------------------------------- primitives

/// Append-only payload encoder.
#[derive(Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new(opcode: u8) -> Self {
        Enc { buf: vec![opcode] }
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        // Raw bits, not a decimal rendering: estimates must survive the
        // wire bit-identical.
        self.u64(v.to_bits());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor-based payload decoder.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Bounded element count for a repeated field: each element consumes at
    /// least `min_elem_bytes`, so a count the remaining payload cannot hold
    /// is rejected before any allocation.
    pub(crate) fn count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.buf.len() - self.pos {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Bytes not yet consumed — how optional trailing fields detect their
    /// own presence.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

// ----------------------------------------------------------------- frames

/// Writes one `[u32 length][payload]` frame.
pub(crate) fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame into `buf` (reused across calls to avoid per-frame
/// allocation). Returns `Ok(false)` on clean EOF at a frame boundary.
pub(crate) fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> std::io::Result<bool> {
    // The length prefix is read incrementally so a clean close at a frame
    // boundary (zero bytes available) is distinguishable from a peer dying
    // mid-prefix (1-3 bytes), which must surface as a truncation error,
    // not be silently reported as a complete stream.
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("stream ended {filled} bytes into a frame length prefix"),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge(len).into());
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// Outcome of [`read_frame_idle`].
pub(crate) enum FrameRead {
    /// A complete frame landed in the buffer.
    Frame,
    /// The peer closed at a frame boundary.
    CleanEof,
    /// The socket read timeout fired **at a frame boundary** — the peer is
    /// merely quiet, not broken. The caller decides whether quiet means
    /// idle-reap, shutdown-check, or keep waiting.
    TimedOut,
}

/// [`read_frame`] for sockets with a read timeout: a timeout before any
/// prefix byte arrived is reported as [`FrameRead::TimedOut`] (an idle
/// peer), while a timeout *mid-frame* stays a hard error — the stream has
/// lost sync and the only safe recovery is dropping the connection.
pub(crate) fn read_frame_idle(r: &mut impl Read, buf: &mut Vec<u8>) -> std::io::Result<FrameRead> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::CleanEof),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("stream ended {filled} bytes into a frame length prefix"),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(FrameRead::TimedOut)
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge(len).into());
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(FrameRead::Frame)
}

// --------------------------------------------------------------- messages

/// One query's served estimates as they appear on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEstimates {
    /// Registry epoch of the model that answered (hot-swap detection).
    pub model_epoch: u64,
    /// Sub-plan estimates, in the deterministic `estimate_subplans` order,
    /// bit-identical to the in-process result.
    pub estimates: Vec<(SubplanMask, f64)>,
}

/// Server verdict on one multiplexed request.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOutcome {
    /// Every query was served; per-query results in submission order. A
    /// query slot holds `Err(message)` only when the service dropped it
    /// mid-shutdown.
    Served(Vec<Result<WireEstimates, String>>),
    /// The request was refused — by admission control (nothing was queued,
    /// retry is the client's call) or, for
    /// [`RejectReason::ResponseTooLarge`], after serving: the results did
    /// not fit one frame and were discarded, so the client should split
    /// the batch.
    Rejected {
        /// Why the server refused.
        reason: RejectReason,
        /// Human-readable detail.
        message: String,
    },
}

fn reason_code(reason: RejectReason) -> u8 {
    match reason {
        RejectReason::QuotaExceeded => 0,
        RejectReason::Overloaded => 1,
        RejectReason::ShuttingDown => 2,
        RejectReason::UnknownDataset => 3,
        RejectReason::ResponseTooLarge => 4,
        RejectReason::DeadlineExceeded => 5,
    }
}

fn reason_from_code(code: u8) -> Result<RejectReason, WireError> {
    Ok(match code {
        0 => RejectReason::QuotaExceeded,
        1 => RejectReason::Overloaded,
        2 => RejectReason::ShuttingDown,
        3 => RejectReason::UnknownDataset,
        4 => RejectReason::ResponseTooLarge,
        5 => RejectReason::DeadlineExceeded,
        tag => {
            return Err(WireError::BadTag {
                what: "reason",
                tag,
            })
        }
    })
}

pub(crate) fn encode_hello() -> Vec<u8> {
    let mut e = Enc::new(OP_HELLO);
    e.u32(PROTOCOL_VERSION);
    e.finish()
}

pub(crate) fn decode_hello(payload: &[u8]) -> Result<u32, WireError> {
    let mut d = Dec::new(payload);
    expect_op(&mut d, OP_HELLO)?;
    let version = d.u32()?;
    d.finish()?;
    Ok(version)
}

pub(crate) fn encode_hello_ok(datasets: &[String]) -> Vec<u8> {
    let mut e = Enc::new(OP_HELLO_OK);
    e.u32(PROTOCOL_VERSION);
    e.u32(datasets.len() as u32);
    for d in datasets {
        e.str(d);
    }
    e.finish()
}

pub(crate) fn decode_hello_ok(payload: &[u8]) -> Result<(u32, Vec<String>), WireError> {
    let mut d = Dec::new(payload);
    expect_op(&mut d, OP_HELLO_OK)?;
    let version = d.u32()?;
    let n = d.count(4)?;
    let mut datasets = Vec::with_capacity(n);
    for _ in 0..n {
        datasets.push(d.str()?);
    }
    d.finish()?;
    Ok((version, datasets))
}

/// A decoded estimate-batch request.
pub(crate) struct EstimateBatch {
    pub request_id: u64,
    pub dataset: String,
    pub min_size: u32,
    pub queries: Vec<Query>,
    /// Relative deadline budget in milliseconds, counted from receipt
    /// (never an absolute wall time — clocks are not synchronized across
    /// the wire). `0` means no deadline; on the wire the field is simply
    /// absent then, keeping the frame byte-identical to protocol v1.
    pub deadline_ms: u64,
    /// Client-minted trace id keying this request across client logs, the
    /// server's slow-query log, and future hops (protocol v3). `0` means
    /// untraced; the field is then absent on the wire, keeping the frame
    /// byte-identical to its v1/v2 encoding.
    pub trace_id: u64,
}

pub(crate) fn encode_estimate_batch(
    request_id: u64,
    dataset: &str,
    min_size: u32,
    queries: &[Query],
    deadline_ms: u64,
    trace_id: u64,
) -> Vec<u8> {
    let mut e = Enc::new(OP_ESTIMATE_BATCH);
    e.u64(request_id);
    e.str(dataset);
    e.u32(min_size);
    e.u32(queries.len() as u32);
    for q in queries {
        encode_query(&mut e, q);
    }
    // Trailing optional fields are positional: writing trace_id requires
    // writing deadline_ms first (even a zero one), so a decoder can tell
    // the 8-byte v2 shape from the 16-byte v3 shape by length alone.
    if trace_id > 0 {
        e.u64(deadline_ms);
        e.u64(trace_id);
    } else if deadline_ms > 0 {
        e.u64(deadline_ms);
    }
    e.finish()
}

pub(crate) fn decode_estimate_batch(payload: &[u8]) -> Result<EstimateBatch, WireError> {
    let mut d = Dec::new(payload);
    expect_op(&mut d, OP_ESTIMATE_BATCH)?;
    let request_id = d.u64()?;
    let dataset = d.str()?;
    let min_size = d.u32()?;
    let n = d.count(12)?;
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        queries.push(decode_query(&mut d)?);
    }
    // Optional trailing fields: a v1 frame ends here (0 bytes left), a v2
    // frame carries deadline_ms (8), a v3 frame deadline_ms + trace_id
    // (16). Any other remainder is corruption and falls through to
    // `finish()`'s TrailingBytes error.
    let deadline_ms = if d.remaining() > 0 { d.u64()? } else { 0 };
    let trace_id = if d.remaining() > 0 { d.u64()? } else { 0 };
    d.finish()?;
    Ok(EstimateBatch {
        request_id,
        dataset,
        min_size,
        queries,
        deadline_ms,
        trace_id,
    })
}

pub(crate) fn encode_batch_result(
    request_id: u64,
    results: &[Result<WireEstimates, String>],
) -> Vec<u8> {
    let mut e = Enc::new(OP_BATCH_RESULT);
    e.u64(request_id);
    e.u32(results.len() as u32);
    for r in results {
        match r {
            Ok(est) => {
                e.u8(0);
                e.u64(est.model_epoch);
                e.u32(est.estimates.len() as u32);
                for &(mask, value) in &est.estimates {
                    e.u64(mask);
                    e.f64(value);
                }
            }
            Err(msg) => {
                e.u8(1);
                e.str(msg);
            }
        }
    }
    e.finish()
}

pub(crate) fn decode_batch_result(
    payload: &[u8],
) -> Result<(u64, Vec<Result<WireEstimates, String>>), WireError> {
    let mut d = Dec::new(payload);
    expect_op(&mut d, OP_BATCH_RESULT)?;
    let request_id = d.u64()?;
    let n = d.count(1)?;
    let mut results = Vec::with_capacity(n);
    for _ in 0..n {
        match d.u8()? {
            0 => {
                let model_epoch = d.u64()?;
                let m = d.count(16)?;
                let mut estimates = Vec::with_capacity(m);
                for _ in 0..m {
                    let mask = d.u64()?;
                    let value = d.f64()?;
                    estimates.push((mask, value));
                }
                results.push(Ok(WireEstimates {
                    model_epoch,
                    estimates,
                }));
            }
            1 => results.push(Err(d.str()?)),
            tag => {
                return Err(WireError::BadTag {
                    what: "result",
                    tag,
                })
            }
        }
    }
    d.finish()?;
    Ok((request_id, results))
}

pub(crate) fn encode_rejected(request_id: u64, reason: RejectReason, message: &str) -> Vec<u8> {
    let mut e = Enc::new(OP_REJECTED);
    e.u64(request_id);
    e.u8(reason_code(reason));
    e.str(message);
    e.finish()
}

pub(crate) fn decode_rejected(payload: &[u8]) -> Result<(u64, RejectReason, String), WireError> {
    let mut d = Dec::new(payload);
    expect_op(&mut d, OP_REJECTED)?;
    let request_id = d.u64()?;
    let reason = reason_from_code(d.u8()?)?;
    let message = d.str()?;
    d.finish()?;
    Ok((request_id, reason, message))
}

/// One shard's load as reported by a health probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Dataset the shard serves.
    pub dataset: String,
    /// Registry epoch of the currently published model (0 when the shard
    /// has no model published).
    pub model_epoch: u64,
    /// Requests queued but not yet picked up by a worker.
    pub queue_depth: u32,
    /// The shard's bounded-queue capacity.
    pub queue_capacity: u32,
}

/// Server response to a [`OP_HEALTH`] probe: whether it is draining plus
/// every shard's queue depth and model epoch — what a load balancer needs
/// to stop routing to a shutting-down or saturated replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// The server has begun graceful shutdown: in-flight work finishes,
    /// new batches are rejected with `ShuttingDown` — fail over now.
    pub draining: bool,
    /// Per-shard load, sorted by dataset name.
    pub shards: Vec<ShardHealth>,
}

pub(crate) fn encode_metrics() -> Vec<u8> {
    Enc::new(OP_METRICS).finish()
}

pub(crate) fn decode_metrics(payload: &[u8]) -> Result<(), WireError> {
    let mut d = Dec::new(payload);
    expect_op(&mut d, OP_METRICS)?;
    d.finish()
}

/// The scrape response body: the server's full Prometheus exposition text
/// with the slow-query log appended as `# slowlog` comment lines.
pub(crate) fn encode_metrics_ok(text: &str) -> Vec<u8> {
    let mut e = Enc::new(OP_METRICS_OK);
    e.str(text);
    e.finish()
}

pub(crate) fn decode_metrics_ok(payload: &[u8]) -> Result<String, WireError> {
    let mut d = Dec::new(payload);
    expect_op(&mut d, OP_METRICS_OK)?;
    let text = d.str()?;
    d.finish()?;
    Ok(text)
}

pub(crate) fn encode_health() -> Vec<u8> {
    Enc::new(OP_HEALTH).finish()
}

pub(crate) fn decode_health(payload: &[u8]) -> Result<(), WireError> {
    let mut d = Dec::new(payload);
    expect_op(&mut d, OP_HEALTH)?;
    d.finish()
}

pub(crate) fn encode_health_ok(report: &HealthReport) -> Vec<u8> {
    let mut e = Enc::new(OP_HEALTH_OK);
    e.u8(report.draining as u8);
    e.u32(report.shards.len() as u32);
    for shard in &report.shards {
        e.str(&shard.dataset);
        e.u64(shard.model_epoch);
        e.u32(shard.queue_depth);
        e.u32(shard.queue_capacity);
    }
    e.finish()
}

pub(crate) fn decode_health_ok(payload: &[u8]) -> Result<HealthReport, WireError> {
    let mut d = Dec::new(payload);
    expect_op(&mut d, OP_HEALTH_OK)?;
    let draining = match d.u8()? {
        0 => false,
        1 => true,
        tag => {
            return Err(WireError::BadTag {
                what: "draining",
                tag,
            })
        }
    };
    let n = d.count(20)?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(ShardHealth {
            dataset: d.str()?,
            model_epoch: d.u64()?,
            queue_depth: d.u32()?,
            queue_capacity: d.u32()?,
        });
    }
    d.finish()?;
    Ok(HealthReport { draining, shards })
}

fn expect_op(d: &mut Dec<'_>, opcode: u8) -> Result<(), WireError> {
    let tag = d.u8()?;
    if tag != opcode {
        return Err(WireError::BadTag {
            what: "opcode",
            tag,
        });
    }
    Ok(())
}

// ------------------------------------------------------------ query codec

fn encode_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.u8(0),
        Value::Int(i) => {
            e.u8(1);
            e.i64(*i);
        }
        Value::Float(f) => {
            e.u8(2);
            e.f64(*f);
        }
        Value::Str(s) => {
            e.u8(3);
            e.str(s);
        }
    }
}

fn decode_value(d: &mut Dec<'_>) -> Result<Value, WireError> {
    Ok(match d.u8()? {
        0 => Value::Null,
        1 => Value::Int(d.i64()?),
        2 => Value::Float(d.f64()?),
        3 => Value::Str(d.str()?),
        tag => return Err(WireError::BadTag { what: "value", tag }),
    })
}

fn encode_predicate(e: &mut Enc, p: &Predicate) {
    match p {
        Predicate::Cmp { column, op, value } => {
            e.u8(0);
            e.str(column);
            e.u8(*op as u8);
            encode_value(e, value);
        }
        Predicate::Between { column, lo, hi } => {
            e.u8(1);
            e.str(column);
            encode_value(e, lo);
            encode_value(e, hi);
        }
        Predicate::InList { column, values } => {
            e.u8(2);
            e.str(column);
            e.u32(values.len() as u32);
            for v in values {
                encode_value(e, v);
            }
        }
        Predicate::Like {
            column,
            pattern,
            negated,
        } => {
            e.u8(3);
            e.str(column);
            e.str(pattern);
            e.u8(*negated as u8);
        }
        Predicate::IsNull { column, negated } => {
            e.u8(4);
            e.str(column);
            e.u8(*negated as u8);
        }
    }
}

fn decode_cmp_op(tag: u8) -> Result<fj_query::CmpOp, WireError> {
    use fj_query::CmpOp::*;
    Ok(match tag {
        0 => Eq,
        1 => Neq,
        2 => Lt,
        3 => Le,
        4 => Gt,
        5 => Ge,
        tag => return Err(WireError::BadTag { what: "cmp", tag }),
    })
}

fn decode_predicate(d: &mut Dec<'_>) -> Result<Predicate, WireError> {
    Ok(match d.u8()? {
        0 => Predicate::Cmp {
            column: d.str()?,
            op: decode_cmp_op(d.u8()?)?,
            value: decode_value(d)?,
        },
        1 => Predicate::Between {
            column: d.str()?,
            lo: decode_value(d)?,
            hi: decode_value(d)?,
        },
        2 => {
            let column = d.str()?;
            let n = d.count(1)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(decode_value(d)?);
            }
            Predicate::InList { column, values }
        }
        3 => Predicate::Like {
            column: d.str()?,
            pattern: d.str()?,
            negated: d.u8()? != 0,
        },
        4 => Predicate::IsNull {
            column: d.str()?,
            negated: d.u8()? != 0,
        },
        tag => {
            return Err(WireError::BadTag {
                what: "predicate",
                tag,
            })
        }
    })
}

fn encode_filter(e: &mut Enc, f: &FilterExpr) {
    match f {
        FilterExpr::True => e.u8(0),
        FilterExpr::Pred(p) => {
            e.u8(1);
            encode_predicate(e, p);
        }
        FilterExpr::And(parts) => {
            e.u8(2);
            e.u32(parts.len() as u32);
            for p in parts {
                encode_filter(e, p);
            }
        }
        FilterExpr::Or(parts) => {
            e.u8(3);
            e.u32(parts.len() as u32);
            for p in parts {
                encode_filter(e, p);
            }
        }
        FilterExpr::Not(inner) => {
            e.u8(4);
            encode_filter(e, inner);
        }
    }
}

fn decode_filter(d: &mut Dec<'_>) -> Result<FilterExpr, WireError> {
    let tag = d.u8()?;
    Ok(match tag {
        0 => FilterExpr::True,
        1 => FilterExpr::Pred(decode_predicate(d)?),
        2 | 3 => {
            let n = d.count(1)?;
            let mut parts = Vec::with_capacity(n);
            for _ in 0..n {
                parts.push(decode_filter(d)?);
            }
            if tag == 2 {
                FilterExpr::And(parts)
            } else {
                FilterExpr::Or(parts)
            }
        }
        4 => FilterExpr::Not(Box::new(decode_filter(d)?)),
        tag => {
            return Err(WireError::BadTag {
                what: "filter",
                tag,
            })
        }
    })
}

fn encode_query(e: &mut Enc, q: &Query) {
    e.u32(q.tables().len() as u32);
    for t in q.tables() {
        e.str(&t.alias);
        e.str(&t.table);
    }
    e.u32(q.joins().len() as u32);
    for j in q.joins() {
        e.u32(j.left.alias as u32);
        e.u32(j.left.column as u32);
        e.u32(j.right.alias as u32);
        e.u32(j.right.column as u32);
    }
    for f in q.filters() {
        encode_filter(e, f);
    }
}

fn decode_query(d: &mut Dec<'_>) -> Result<Query, WireError> {
    let nt = d.count(8)?;
    let mut tables = Vec::with_capacity(nt);
    for _ in 0..nt {
        let alias = d.str()?;
        let table = d.str()?;
        tables.push(TableRef { alias, table });
    }
    let nj = d.count(16)?;
    let mut joins = Vec::with_capacity(nj);
    for _ in 0..nj {
        joins.push(JoinPredicate {
            left: ColRef {
                alias: d.u32()? as usize,
                column: d.u32()? as usize,
            },
            right: ColRef {
                alias: d.u32()? as usize,
                column: d.u32()? as usize,
            },
        });
    }
    let mut filters = Vec::with_capacity(nt);
    for _ in 0..nt {
        filters.push(decode_filter(d)?);
    }
    Query::from_wire_parts(tables, joins, filters).map_err(|e| WireError::BadQuery(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_query::CmpOp;

    fn sample_query() -> Query {
        // Hand-built, catalog-free: three tables, two joins, nested filters
        // exercising every predicate and filter variant.
        let tables = vec![
            TableRef::new("a", "posts"),
            TableRef::new("b", "users"),
            TableRef::new("c", "votes"),
        ];
        let joins = vec![
            JoinPredicate {
                left: ColRef {
                    alias: 0,
                    column: 1,
                },
                right: ColRef {
                    alias: 1,
                    column: 0,
                },
            },
            JoinPredicate {
                left: ColRef {
                    alias: 1,
                    column: 0,
                },
                right: ColRef {
                    alias: 2,
                    column: 2,
                },
            },
        ];
        let filters = vec![
            FilterExpr::And(vec![
                FilterExpr::Pred(Predicate::Cmp {
                    column: "score".into(),
                    op: CmpOp::Ge,
                    value: Value::Int(10),
                }),
                FilterExpr::Or(vec![
                    FilterExpr::Pred(Predicate::Between {
                        column: "views".into(),
                        lo: Value::Float(1.5),
                        hi: Value::Float(99.25),
                    }),
                    FilterExpr::Not(Box::new(FilterExpr::Pred(Predicate::IsNull {
                        column: "tag".into(),
                        negated: false,
                    }))),
                ]),
            ]),
            FilterExpr::Pred(Predicate::InList {
                column: "kind".into(),
                values: vec![Value::Str("mod".into()), Value::Null, Value::Int(-3)],
            }),
            FilterExpr::Pred(Predicate::Like {
                column: "name".into(),
                pattern: "%ove%".into(),
                negated: true,
            }),
        ];
        Query::from_wire_parts(tables, joins, filters).expect("valid sample query")
    }

    #[test]
    fn hello_frames_roundtrip() {
        assert_eq!(decode_hello(&encode_hello()).unwrap(), PROTOCOL_VERSION);
        let datasets = vec!["imdb".to_string(), "stats".to_string()];
        let (version, got) = decode_hello_ok(&encode_hello_ok(&datasets)).unwrap();
        assert_eq!(version, PROTOCOL_VERSION);
        assert_eq!(got, datasets);
    }

    #[test]
    fn estimate_batch_roundtrips_losslessly() {
        let q = sample_query();
        let payload = encode_estimate_batch(42, "stats", 2, &[q.clone(), q.clone()], 0, 0);
        let batch = decode_estimate_batch(&payload).unwrap();
        assert_eq!(batch.request_id, 42);
        assert_eq!(batch.dataset, "stats");
        assert_eq!(batch.min_size, 2);
        assert_eq!(batch.queries.len(), 2);
        assert_eq!(batch.deadline_ms, 0);
        assert_eq!(batch.trace_id, 0);
        for got in &batch.queries {
            assert_eq!(got.tables(), q.tables());
            assert_eq!(got.joins(), q.joins());
            assert_eq!(got.filters(), q.filters());
        }
    }

    #[test]
    fn deadline_field_is_optional_trailing_and_v1_compatible() {
        let q = sample_query();
        // With a deadline: roundtrips, and is exactly 8 bytes longer.
        let with = encode_estimate_batch(1, "stats", 1, std::slice::from_ref(&q), 250, 0);
        let without = encode_estimate_batch(1, "stats", 1, std::slice::from_ref(&q), 0, 0);
        assert_eq!(with.len(), without.len() + 8);
        assert_eq!(decode_estimate_batch(&with).unwrap().deadline_ms, 250);
        // Without one, the encoding is byte-identical to what a protocol-v1
        // peer produces (v1 never wrote the field at all).
        assert_eq!(decode_estimate_batch(&without).unwrap().deadline_ms, 0);
        // A partial trailing field (1-7 stray bytes) is corruption, not a
        // deadline.
        let mut torn = without.clone();
        torn.extend_from_slice(&[0xaa, 0xbb, 0xcc]);
        assert!(decode_estimate_batch(&torn).is_err());
    }

    #[test]
    fn trace_field_decodes_v1_v2_and_v3_shapes() {
        let q = sample_query();
        let qs = std::slice::from_ref(&q);
        // v1 shape: no trailing fields at all.
        let v1 = encode_estimate_batch(1, "stats", 1, qs, 0, 0);
        // v2 shape: deadline only — byte-identical to a v2 peer's frame.
        let v2 = encode_estimate_batch(1, "stats", 1, qs, 250, 0);
        // v3 shape: deadline + trace (a traced frame always carries both,
        // even a zero deadline, so length alone disambiguates).
        let v3 = encode_estimate_batch(1, "stats", 1, qs, 250, 0xfeed);
        let v3_no_deadline = encode_estimate_batch(1, "stats", 1, qs, 0, 0xfeed);
        assert_eq!(v2.len(), v1.len() + 8);
        assert_eq!(v3.len(), v1.len() + 16);
        assert_eq!(v3_no_deadline.len(), v1.len() + 16);

        let b = decode_estimate_batch(&v1).unwrap();
        assert_eq!((b.deadline_ms, b.trace_id), (0, 0));
        let b = decode_estimate_batch(&v2).unwrap();
        assert_eq!((b.deadline_ms, b.trace_id), (250, 0));
        let b = decode_estimate_batch(&v3).unwrap();
        assert_eq!((b.deadline_ms, b.trace_id), (250, 0xfeed));
        let b = decode_estimate_batch(&v3_no_deadline).unwrap();
        assert_eq!((b.deadline_ms, b.trace_id), (0, 0xfeed));

        // 9..15 trailing bytes is neither shape: corruption, not a trace.
        let mut torn = v2.clone();
        torn.extend_from_slice(&[0x01, 0x02, 0x03]);
        assert!(decode_estimate_batch(&torn).is_err());
    }

    #[test]
    fn metrics_frames_roundtrip() {
        decode_metrics(&encode_metrics()).unwrap();
        let text = "# HELP fj_requests_total Requests served.\n\
                    fj_requests_total{dataset=\"stats\"} 12\n\
                    # slowlog trace_id=0x0000000000000007 dataset=\"stats\"\n";
        let got = decode_metrics_ok(&encode_metrics_ok(text)).unwrap();
        assert_eq!(got, text);
        // Truncation errors instead of panicking (satellite: fuzz also
        // covers these frames below).
        let full = encode_metrics_ok(text);
        for cut in [1, 3, full.len() - 1] {
            assert!(decode_metrics_ok(&full[..cut]).is_err(), "cut at {cut}");
        }
        // Wrong opcode is a bad tag.
        assert!(matches!(
            decode_metrics_ok(&encode_metrics()),
            Err(WireError::BadTag { what: "opcode", .. })
        ));
        // Trailing garbage after the text is corruption.
        let mut padded = encode_metrics_ok(text);
        padded.push(0x00);
        assert_eq!(decode_metrics_ok(&padded), Err(WireError::TrailingBytes));
    }

    #[test]
    fn health_frames_roundtrip() {
        decode_health(&encode_health()).unwrap();
        let report = HealthReport {
            draining: true,
            shards: vec![
                ShardHealth {
                    dataset: "imdb".into(),
                    model_epoch: 3,
                    queue_depth: 17,
                    queue_capacity: 1024,
                },
                ShardHealth {
                    dataset: "stats".into(),
                    model_epoch: 0,
                    queue_depth: 0,
                    queue_capacity: 64,
                },
            ],
        };
        let got = decode_health_ok(&encode_health_ok(&report)).unwrap();
        assert_eq!(got, report);
        // A draining byte outside {0, 1} is a bad tag, not a bool cast.
        let mut bad = encode_health_ok(&report);
        bad[1] = 7;
        assert!(matches!(
            decode_health_ok(&bad),
            Err(WireError::BadTag {
                what: "draining",
                ..
            })
        ));
    }

    #[test]
    fn batch_result_roundtrips_f64_bits_exactly() {
        // Values a decimal rendering would mangle: subnormals, -0.0, the
        // bound products FactorJoin actually emits.
        let nasty = [
            f64::MIN_POSITIVE / 2.0,
            -0.0,
            1.0 + f64::EPSILON,
            2.2250738585072014e-308,
            123456789.000000001,
        ];
        let results: Vec<Result<WireEstimates, String>> = vec![
            Ok(WireEstimates {
                model_epoch: 7,
                estimates: nasty
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (1u64 << i, v))
                    .collect(),
            }),
            Err("unknown dataset \"nope\"".to_string()),
        ];
        let (id, got) = decode_batch_result(&encode_batch_result(9, &results)).unwrap();
        assert_eq!(id, 9);
        assert_eq!(got.len(), 2);
        let est = got[0].as_ref().unwrap();
        assert_eq!(est.model_epoch, 7);
        for (i, &v) in nasty.iter().enumerate() {
            assert_eq!(est.estimates[i].0, 1u64 << i);
            assert_eq!(est.estimates[i].1.to_bits(), v.to_bits(), "bit-exact f64");
        }
        assert_eq!(got[1].as_ref().unwrap_err(), "unknown dataset \"nope\"");
    }

    #[test]
    fn rejected_frame_roundtrips_every_reason() {
        for reason in [
            RejectReason::QuotaExceeded,
            RejectReason::Overloaded,
            RejectReason::ShuttingDown,
            RejectReason::UnknownDataset,
            RejectReason::ResponseTooLarge,
            RejectReason::DeadlineExceeded,
        ] {
            let payload = encode_rejected(5, reason, "nope");
            let (id, got_reason, message) = decode_rejected(&payload).unwrap();
            assert_eq!((id, got_reason, message.as_str()), (5, reason, "nope"));
        }
    }

    #[test]
    fn framing_survives_a_stream_and_rejects_oversize() {
        let mut pipe: Vec<u8> = Vec::new();
        write_frame(&mut pipe, &encode_hello()).unwrap();
        write_frame(
            &mut pipe,
            &encode_rejected(1, RejectReason::Overloaded, "x"),
        )
        .unwrap();
        let mut cursor = &pipe[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(decode_hello(&buf).unwrap(), PROTOCOL_VERSION);
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf[0], OP_REJECTED);
        assert!(!read_frame(&mut cursor, &mut buf).unwrap(), "clean EOF");

        // A hostile length prefix is refused before allocating.
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut cursor = &huge[..];
        let err = read_frame(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_length_prefix_is_an_error_not_clean_eof() {
        // A peer dying 1-3 bytes into the length prefix is a truncated
        // stream, not an orderly close.
        let mut full = Vec::new();
        write_frame(&mut full, &encode_hello()).unwrap();
        let mut buf = Vec::new();
        for cut in 1..4 {
            let mut cursor = &full[..cut];
            let err = read_frame(&mut cursor, &mut buf).unwrap_err();
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof,
                "cut at {cut}"
            );
        }
        // Zero bytes at a frame boundary stays a clean EOF.
        let mut cursor: &[u8] = &[];
        assert!(!read_frame(&mut cursor, &mut buf).unwrap());
    }

    #[test]
    fn malformed_payloads_error_instead_of_panicking() {
        // Truncated mid-field.
        let payload = encode_estimate_batch(1, "stats", 1, &[sample_query()], 0, 0);
        for cut in [1, 5, payload.len() / 2, payload.len() - 1] {
            assert!(
                decode_estimate_batch(&payload[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // Wrong opcode.
        assert!(matches!(
            decode_hello(&encode_hello_ok(&[])),
            Err(WireError::BadTag { what: "opcode", .. })
        ));
        // Trailing garbage.
        let mut padded = encode_hello();
        padded.push(0xff);
        assert_eq!(decode_hello(&padded), Err(WireError::TrailingBytes));
        // Absurd element count with a tiny payload: rejected before any
        // allocation by the count() bound.
        let mut e = Enc::new(OP_HELLO_OK);
        e.u32(PROTOCOL_VERSION);
        e.u32(u32::MAX); // claims 4 billion datasets in a 9-byte payload
        assert_eq!(decode_hello_ok(&e.finish()), Err(WireError::Truncated));
        // A structurally invalid query (disconnected join graph) fails
        // validation at decode, not later at estimation.
        let tables = vec![TableRef::new("a", "posts"), TableRef::new("b", "users")];
        let mut enc = Enc::new(OP_ESTIMATE_BATCH);
        enc.u64(1);
        enc.str("stats");
        enc.u32(1);
        enc.u32(1); // one query
        enc.u32(tables.len() as u32);
        for t in &tables {
            enc.str(&t.alias);
            enc.str(&t.table);
        }
        enc.u32(0); // no joins between two tables: disconnected
        enc.u8(0); // FilterExpr::True
        enc.u8(0);
        assert!(matches!(
            decode_estimate_batch(&enc.finish()),
            Err(WireError::BadQuery(_))
        ));
    }

    /// Every decoder applied to a payload; none may panic. Results are
    /// deliberately ignored — a mutation can leave a frame valid (or valid
    /// for a *different* opcode), and that is fine; what matters is that
    /// arbitrary bytes always come back as `Ok`/`Err`, never an unwind.
    fn decode_with_everything(payload: &[u8]) {
        let _ = decode_hello(payload);
        let _ = decode_hello_ok(payload);
        let _ = decode_estimate_batch(payload);
        let _ = decode_batch_result(payload);
        let _ = decode_rejected(payload);
        let _ = decode_health(payload);
        let _ = decode_health_ok(payload);
        let _ = decode_metrics(payload);
        let _ = decode_metrics_ok(payload);
    }

    /// Deterministic seeded byte-mutation fuzz over every frame type: take
    /// each valid encoding, flip 1-8 random bytes (and sometimes truncate
    /// or extend), and require every decoder to return instead of
    /// panicking. Reproducible: a failure prints the seed that found it.
    #[test]
    fn seeded_byte_mutation_fuzz_never_panics() {
        use crate::fault::splitmix64;

        let q = sample_query();
        let report = HealthReport {
            draining: false,
            shards: vec![ShardHealth {
                dataset: "stats".into(),
                model_epoch: 1,
                queue_depth: 2,
                queue_capacity: 8,
            }],
        };
        let results: Vec<Result<WireEstimates, String>> = vec![
            Ok(WireEstimates {
                model_epoch: 4,
                estimates: vec![(0b101, 12.5), (0b111, 9e9)],
            }),
            Err("slot error".into()),
        ];
        let frames: Vec<Vec<u8>> = vec![
            encode_hello(),
            encode_hello_ok(&["imdb".into(), "stats".into()]),
            encode_estimate_batch(7, "stats", 1, &[q.clone(), q.clone()], 125, 0),
            encode_estimate_batch(8, "stats", 1, &[q], 125, 0xdead_beef),
            encode_batch_result(9, &results),
            encode_rejected(3, RejectReason::Overloaded, "full"),
            encode_health(),
            encode_health_ok(&report),
            encode_metrics(),
            encode_metrics_ok("# HELP fj_requests_total Requests served.\nfj_requests_total 1\n"),
        ];

        for seed in 0..64u64 {
            let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xfa17;
            for round in 0..64 {
                let base = &frames[(splitmix64(&mut rng) as usize) % frames.len()];
                let mut mutated = base.clone();
                let flips = 1 + (splitmix64(&mut rng) as usize) % 8;
                for _ in 0..flips {
                    if mutated.is_empty() {
                        break;
                    }
                    let pos = (splitmix64(&mut rng) as usize) % mutated.len();
                    mutated[pos] ^= (splitmix64(&mut rng) % 255) as u8 + 1;
                }
                match splitmix64(&mut rng) % 4 {
                    0 => {
                        // Truncate somewhere, including to empty.
                        let cut = (splitmix64(&mut rng) as usize) % (mutated.len() + 1);
                        mutated.truncate(cut);
                    }
                    1 => {
                        // Append trailing garbage.
                        let extra = 1 + (splitmix64(&mut rng) as usize) % 16;
                        for _ in 0..extra {
                            mutated.push(splitmix64(&mut rng) as u8);
                        }
                    }
                    _ => {}
                }
                let ok = std::panic::catch_unwind(|| decode_with_everything(&mutated)).is_ok();
                assert!(
                    ok,
                    "decoder panicked: seed={seed} round={round} bytes={mutated:02x?}"
                );
            }
        }
    }
}
