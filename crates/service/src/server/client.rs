//! [`FjClient`]: a pipelining TCP client for [`super::FjServer`].

use super::wire::{
    self, read_frame, write_frame, BatchOutcome, OP_BATCH_RESULT, OP_REJECTED, PROTOCOL_VERSION,
};
use fj_query::Query;
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected estimation client.
///
/// Requests are multiplexed: [`FjClient::send`] returns immediately with a
/// request id, any number may be pipelined, and [`FjClient::recv`] collects
/// each response whenever it lands (out-of-order completions are stashed
/// until asked for). [`FjClient::call`] is the one-shot convenience.
///
/// Served estimates are **bit-identical** to an in-process
/// `estimate_subplans` call against the same model — `f64`s cross the wire
/// as raw IEEE-754 bits — and each query's result carries the serving
/// model's registry epoch, so a client that sees the epoch change between
/// responses has detected a hot-swap mid-flight.
pub struct FjClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    datasets: Vec<String>,
    next_id: u64,
    stash: HashMap<u64, BatchOutcome>,
    frame: Vec<u8>,
}

impl FjClient {
    /// Connects and performs the version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<FjClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);

        write_frame(&mut writer, &wire::encode_hello())?;
        let mut frame = Vec::new();
        if !read_frame(&mut reader, &mut frame)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection during the handshake",
            ));
        }
        let (theirs, datasets) = wire::decode_hello_ok(&frame)?;
        if theirs != PROTOCOL_VERSION {
            return Err(wire::WireError::VersionMismatch { theirs }.into());
        }

        Ok(FjClient {
            reader,
            writer,
            datasets,
            next_id: 1,
            stash: HashMap::new(),
            frame,
        })
    }

    /// Datasets the server announced in the handshake, sorted.
    pub fn datasets(&self) -> &[String] {
        &self.datasets
    }

    /// Sends one estimate batch without waiting for the response; returns
    /// the request id to [`FjClient::recv`] on. `min_size` is the smallest
    /// sub-plan (in aliases) to report, as in `estimate_subplans`.
    pub fn send(&mut self, dataset: &str, min_size: u32, queries: &[Query]) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &wire::encode_estimate_batch(id, dataset, min_size, queries),
        )?;
        Ok(id)
    }

    /// Blocks until the response for `request_id` arrives. Responses for
    /// other pipelined requests that land first are stashed and returned
    /// by their own `recv` calls.
    pub fn recv(&mut self, request_id: u64) -> io::Result<BatchOutcome> {
        if let Some(outcome) = self.stash.remove(&request_id) {
            return Ok(outcome);
        }
        loop {
            if !read_frame(&mut self.reader, &mut self.frame)? {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection with the request in flight",
                ));
            }
            let (id, outcome) = match self.frame.first().copied() {
                Some(OP_BATCH_RESULT) => {
                    let (id, results) = wire::decode_batch_result(&self.frame)?;
                    (id, BatchOutcome::Served(results))
                }
                Some(OP_REJECTED) => {
                    let (id, reason, message) = wire::decode_rejected(&self.frame)?;
                    (id, BatchOutcome::Rejected { reason, message })
                }
                Some(tag) => {
                    return Err(wire::WireError::BadTag {
                        what: "opcode",
                        tag,
                    }
                    .into())
                }
                None => return Err(wire::WireError::Truncated.into()),
            };
            if id == request_id {
                return Ok(outcome);
            }
            self.stash.insert(id, outcome);
        }
    }

    /// [`FjClient::send`] + [`FjClient::recv`] in one call.
    pub fn call(
        &mut self,
        dataset: &str,
        min_size: u32,
        queries: &[Query],
    ) -> io::Result<BatchOutcome> {
        let id = self.send(dataset, min_size, queries)?;
        self.recv(id)
    }
}
