//! [`FjClient`]: a pipelining TCP client for [`super::FjServer`] with
//! deadlines, reconnect, and opt-in retries.

use super::retry::RetryPolicy;
use super::wire::{
    self, read_frame, write_frame, BatchOutcome, HealthReport, MIN_PROTOCOL_VERSION,
    OP_BATCH_RESULT, OP_HEALTH_OK, OP_METRICS_OK, OP_REJECTED, PROTOCOL_VERSION,
};
use fj_obs::next_trace_id;
use fj_query::Query;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side resilience knobs.
///
/// The defaults bound every operation (5 s to connect, 30 s per request)
/// but retry nothing — rejections and transport errors stay visible to
/// the caller unless a [`RetryPolicy`] is opted into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// TCP connect budget; `None` blocks on the OS default.
    pub connect_timeout: Option<Duration>,
    /// Per-call budget, covering socket reads/writes, the wire
    /// `deadline_ms` sent to the server, and — for [`FjClient::call`] —
    /// every retry and backoff within the call. `None` disables deadlines
    /// entirely (calls may block indefinitely on a stalled peer).
    pub request_timeout: Option<Duration>,
    /// What to retry and how to back off; [`RetryPolicy::none`] by
    /// default. Retrying is idempotent-safe: estimation is read-only.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            request_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::none(),
        }
    }
}

impl ClientConfig {
    /// Overrides the connect budget.
    pub fn with_connect_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Overrides the per-call budget.
    pub fn with_request_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.request_timeout = timeout;
        self
    }

    /// Opts into retrying with `policy`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }
}

/// Per-connection state, dropped wholesale when the transport errors —
/// after any I/O failure the stream may be mid-frame, and resynchronizing
/// a length-prefixed protocol is impossible, so the only safe recovery is
/// a fresh connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    stash: HashMap<u64, BatchOutcome>,
    health_stash: VecDeque<HealthReport>,
    metrics_stash: VecDeque<String>,
    frame: Vec<u8>,
}

/// A decoded server→client frame.
enum Incoming {
    Batch(u64, BatchOutcome),
    Health(HealthReport),
    Metrics(String),
}

/// A connected estimation client.
///
/// Requests are multiplexed: [`FjClient::send`] returns immediately with a
/// request id, any number may be pipelined, and [`FjClient::recv`] collects
/// each response whenever it lands (out-of-order completions are stashed
/// until asked for). [`FjClient::call`] is the one-shot convenience — and
/// the only path that retries, per the configured [`RetryPolicy`]
/// (reconnecting and resending on transport errors, backing off on
/// `Overloaded` rejections, always within the request budget).
///
/// Served estimates are **bit-identical** to an in-process
/// `estimate_subplans` call against the same model — `f64`s cross the wire
/// as raw IEEE-754 bits — and each query's result carries the serving
/// model's registry epoch, so a client that sees the epoch change between
/// responses has detected a hot-swap mid-flight.
pub struct FjClient {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    conn: Option<Conn>,
    datasets: Vec<String>,
    next_id: u64,
}

impl FjClient {
    /// Connects with [`ClientConfig::default`]: bounded connect and
    /// request times, no retries.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<FjClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects and performs the version handshake under `config`.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<FjClient> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        let mut client = FjClient {
            addrs,
            config,
            conn: None,
            datasets: Vec::new(),
            next_id: 1,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Datasets the server announced in the handshake, sorted.
    pub fn datasets(&self) -> &[String] {
        &self.datasets
    }

    /// Whether a live connection is currently held (a failed operation
    /// drops it; the next operation reconnects transparently).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Dials (respecting the connect budget), handshakes, and applies the
    /// socket timeouts. No-op when a connection is already up.
    fn ensure_connected(&mut self) -> io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let stream = dial(&self.addrs, self.config.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.config.request_timeout)?;
        stream.set_write_timeout(self.config.request_timeout)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);

        write_frame(&mut writer, &wire::encode_hello())?;
        let mut frame = Vec::new();
        if !read_frame(&mut reader, &mut frame)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection during the handshake",
            ));
        }
        let (theirs, datasets) = wire::decode_hello_ok(&frame)?;
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&theirs) {
            return Err(wire::WireError::VersionMismatch { theirs }.into());
        }

        self.datasets = datasets;
        self.conn = Some(Conn {
            reader,
            writer,
            stash: HashMap::new(),
            health_stash: VecDeque::new(),
            metrics_stash: VecDeque::new(),
            frame,
        });
        Ok(())
    }

    /// Sends one estimate batch without waiting for the response; returns
    /// the request id to [`FjClient::recv`] on. `min_size` is the smallest
    /// sub-plan (in aliases) to report, as in `estimate_subplans`. The
    /// configured request budget rides along as the wire deadline, so the
    /// server sheds the work if this client stops waiting.
    pub fn send(&mut self, dataset: &str, min_size: u32, queries: &[Query]) -> io::Result<u64> {
        self.send_with(dataset, min_size, queries, 0)
            .map(|(id, _)| id)
    }

    /// [`FjClient::send`] with a freshly minted trace id riding along on
    /// the wire; the server records the batch's per-stage timings under it
    /// and tags its slow-query log entry with it, so a slow response can
    /// be matched to this exact request in a scrape
    /// ([`FjClient::metrics`]). Returns `(request_id, trace_id)`.
    pub fn send_traced(
        &mut self,
        dataset: &str,
        min_size: u32,
        queries: &[Query],
    ) -> io::Result<(u64, u64)> {
        self.send_with(dataset, min_size, queries, next_trace_id())
    }

    fn send_with(
        &mut self,
        dataset: &str,
        min_size: u32,
        queries: &[Query],
        trace_id: u64,
    ) -> io::Result<(u64, u64)> {
        self.ensure_connected()?;
        let id = self.next_id;
        self.next_id += 1;
        let deadline_ms = budget_ms(self.config.request_timeout);
        let conn = self.conn.as_mut().expect("just connected");
        let frame =
            wire::encode_estimate_batch(id, dataset, min_size, queries, deadline_ms, trace_id);
        match write_frame(&mut conn.writer, &frame) {
            Ok(()) => Ok((id, trace_id)),
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Blocks until the response for `request_id` arrives, bounded by the
    /// request budget. Responses for other pipelined requests that land
    /// first are stashed and returned by their own `recv` calls.
    pub fn recv(&mut self, request_id: u64) -> io::Result<BatchOutcome> {
        let deadline = self.config.request_timeout.map(|t| Instant::now() + t);
        let Some(conn) = self.conn.as_mut() else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "not connected; any in-flight request died with the previous connection",
            ));
        };
        let result = recv_on(conn, request_id, deadline);
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// [`FjClient::send`] + [`FjClient::recv`] in one call, with retries.
    ///
    /// Under the configured [`RetryPolicy`], transient failures — transport
    /// errors (reconnect + idempotent resend) and `Overloaded` rejections
    /// (backoff, same connection) — are retried until the policy gives up
    /// or the request budget is spent; the budget covers the *whole* call,
    /// retries and backoff included, and rides to the server as each
    /// attempt's wire deadline. Fatal verdicts (`QuotaExceeded`,
    /// `ShuttingDown`, protocol errors, …) return immediately.
    pub fn call(
        &mut self,
        dataset: &str,
        min_size: u32,
        queries: &[Query],
    ) -> io::Result<BatchOutcome> {
        let deadline = self.config.request_timeout.map(|t| Instant::now() + t);
        // One trace id for the whole call: every retry of this logical
        // request shows up under the same trace server-side.
        let trace_id = next_trace_id();
        let mut attempt: u32 = 0;
        loop {
            let result = self.attempt_call(dataset, min_size, queries, deadline, trace_id);
            let transient = match &result {
                Ok(BatchOutcome::Rejected { reason, .. }) => {
                    RetryPolicy::is_retryable_rejection(*reason)
                }
                Err(e) => RetryPolicy::is_retryable_io(e.kind()),
                Ok(_) => false,
            };
            if !transient {
                return result;
            }
            let Some(backoff) = self.config.retry.backoff(attempt) else {
                return result; // policy exhausted (or never retried)
            };
            attempt += 1;
            if let Some(deadline) = deadline {
                // Don't start a backoff the budget cannot pay for.
                let remaining = deadline.saturating_duration_since(Instant::now());
                if backoff >= remaining {
                    return result;
                }
            }
            std::thread::sleep(backoff);
        }
    }

    /// One send+recv attempt against the shared call deadline.
    fn attempt_call(
        &mut self,
        dataset: &str,
        min_size: u32,
        queries: &[Query],
        deadline: Option<Instant>,
        trace_id: u64,
    ) -> io::Result<BatchOutcome> {
        remaining_budget(deadline)?;
        self.ensure_connected()?;
        let id = self.next_id;
        self.next_id += 1;
        let deadline_ms = match deadline {
            Some(d) => (d.saturating_duration_since(Instant::now()).as_millis() as u64).max(1),
            None => 0,
        };
        let conn = self.conn.as_mut().expect("just connected");
        let frame =
            wire::encode_estimate_batch(id, dataset, min_size, queries, deadline_ms, trace_id);
        let result =
            write_frame(&mut conn.writer, &frame).and_then(|()| recv_on(conn, id, deadline));
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Probes the server: draining state plus per-shard queue depth and
    /// model epoch, bounded by the request budget. Safe to interleave with
    /// pipelined batches — frames of either kind arriving out of turn are
    /// stashed for their own receiver.
    pub fn health(&mut self) -> io::Result<HealthReport> {
        let deadline = self.config.request_timeout.map(|t| Instant::now() + t);
        self.ensure_connected()?;
        let conn = self.conn.as_mut().expect("just connected");
        let result = write_frame(&mut conn.writer, &wire::encode_health()).and_then(|()| loop {
            if let Some(report) = conn.health_stash.pop_front() {
                return Ok(report);
            }
            match read_incoming(conn, deadline)? {
                Incoming::Health(report) => return Ok(report),
                Incoming::Batch(id, outcome) => {
                    conn.stash.insert(id, outcome);
                }
                Incoming::Metrics(text) => conn.metrics_stash.push_back(text),
            }
        });
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Scrapes the server's metrics plane: the Prometheus text exposition
    /// for every shard followed by `# slowlog` comment lines for the
    /// worst-N batches, bounded by the request budget. Like
    /// [`FjClient::health`], this keeps working while the server drains,
    /// and is safe to interleave with pipelined batches.
    pub fn metrics(&mut self) -> io::Result<String> {
        let deadline = self.config.request_timeout.map(|t| Instant::now() + t);
        self.ensure_connected()?;
        let conn = self.conn.as_mut().expect("just connected");
        let result = write_frame(&mut conn.writer, &wire::encode_metrics()).and_then(|()| loop {
            if let Some(text) = conn.metrics_stash.pop_front() {
                return Ok(text);
            }
            match read_incoming(conn, deadline)? {
                Incoming::Metrics(text) => return Ok(text),
                Incoming::Batch(id, outcome) => {
                    conn.stash.insert(id, outcome);
                }
                Incoming::Health(report) => conn.health_stash.push_back(report),
            }
        });
        if result.is_err() {
            self.conn = None;
        }
        result
    }
}

/// Connects to the first address that answers, within `timeout` each.
fn dial(addrs: &[SocketAddr], timeout: Option<Duration>) -> io::Result<TcpStream> {
    let mut last_err = None;
    for addr in addrs {
        let attempt = match timeout {
            Some(t) => TcpStream::connect_timeout(addr, t),
            None => TcpStream::connect(addr),
        };
        match attempt {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("addrs checked non-empty"))
}

/// The wire deadline for a fresh request under `budget` (0 = none).
fn budget_ms(budget: Option<Duration>) -> u64 {
    budget.map_or(0, |t| (t.as_millis() as u64).max(1))
}

/// The time left before `deadline`, erring `TimedOut` once it is spent.
fn remaining_budget(deadline: Option<Instant>) -> io::Result<Option<Duration>> {
    match deadline {
        None => Ok(None),
        Some(deadline) => {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "request budget spent before the response arrived",
                ));
            }
            Ok(Some(remaining))
        }
    }
}

/// Reads one server frame within the deadline and decodes it.
fn read_incoming(conn: &mut Conn, deadline: Option<Instant>) -> io::Result<Incoming> {
    if let Some(remaining) = remaining_budget(deadline)? {
        // Re-arm the socket timeout to the *remaining* budget, so a server
        // trickling frames cannot extend the call past its deadline by one
        // whole timeout per frame.
        conn.reader.get_ref().set_read_timeout(Some(remaining))?;
    }
    if !read_frame(&mut conn.reader, &mut conn.frame)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection with a request in flight",
        ));
    }
    match conn.frame.first().copied() {
        Some(OP_BATCH_RESULT) => {
            let (id, results) = wire::decode_batch_result(&conn.frame)?;
            Ok(Incoming::Batch(id, BatchOutcome::Served(results)))
        }
        Some(OP_REJECTED) => {
            let (id, reason, message) = wire::decode_rejected(&conn.frame)?;
            Ok(Incoming::Batch(
                id,
                BatchOutcome::Rejected { reason, message },
            ))
        }
        Some(OP_HEALTH_OK) => Ok(Incoming::Health(wire::decode_health_ok(&conn.frame)?)),
        Some(OP_METRICS_OK) => Ok(Incoming::Metrics(wire::decode_metrics_ok(&conn.frame)?)),
        Some(tag) => Err(wire::WireError::BadTag {
            what: "opcode",
            tag,
        }
        .into()),
        None => Err(wire::WireError::Truncated.into()),
    }
}

/// Drains frames until `request_id`'s response lands, stashing everything
/// else for its own receiver.
fn recv_on(
    conn: &mut Conn,
    request_id: u64,
    deadline: Option<Instant>,
) -> io::Result<BatchOutcome> {
    if let Some(outcome) = conn.stash.remove(&request_id) {
        return Ok(outcome);
    }
    loop {
        match read_incoming(conn, deadline)? {
            Incoming::Batch(id, outcome) if id == request_id => return Ok(outcome),
            Incoming::Batch(id, outcome) => {
                conn.stash.insert(id, outcome);
            }
            Incoming::Health(report) => conn.health_stash.push_back(report),
            Incoming::Metrics(text) => conn.metrics_stash.push_back(text),
        }
    }
}

// Retry-path tests against a *scripted* server: real servers drain queues
// in microseconds, so transient overload cannot be staged reliably over
// real estimation — instead a hand-rolled peer speaks just enough protocol
// to serve one exact failure sequence per test, deterministically.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RejectReason;
    use fj_query::{FilterExpr, TableRef};
    use std::io::BufReader as StdBufReader;
    use std::net::TcpListener;
    use wire::WireEstimates;

    fn one_query() -> Query {
        Query::from_wire_parts(
            vec![TableRef::new("t", "users")],
            vec![],
            vec![FilterExpr::True],
        )
        .expect("valid")
    }

    /// What the scripted server does after reading each estimate request.
    enum Step {
        /// Reply `Rejected { Overloaded }`.
        RejectOverloaded,
        /// Reply `Rejected { QuotaExceeded }` (a fatal verdict).
        RejectQuota,
        /// Drop the connection without replying (transport failure); the
        /// client must reconnect, so the script keeps accepting.
        Hangup,
        /// Serve a fixed single-query result.
        Serve,
    }

    /// Runs a server that handshakes each connection and then performs one
    /// scripted [`Step`] per estimate request, in order. Returns the
    /// listening address and a handle yielding the observed request count.
    fn scripted_server(script: Vec<Step>) -> (SocketAddr, std::thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let mut steps = std::collections::VecDeque::from(script);
            let mut served = 0usize;
            'sessions: loop {
                let Ok((stream, _)) = listener.accept() else {
                    return served;
                };
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = StdBufReader::new(stream);
                let mut frame = Vec::new();
                // Handshake.
                if !read_frame(&mut reader, &mut frame).expect("read hello") {
                    continue;
                }
                wire::decode_hello(&frame).expect("hello");
                write_frame(&mut writer, &wire::encode_hello_ok(&["stats".to_string()]))
                    .expect("write hello_ok");
                // One scripted step per request on this connection.
                while read_frame(&mut reader, &mut frame).unwrap_or(false) {
                    let batch = wire::decode_estimate_batch(&frame).expect("request");
                    served += 1;
                    match steps.pop_front() {
                        Some(Step::RejectOverloaded) => write_frame(
                            &mut writer,
                            &wire::encode_rejected(
                                batch.request_id,
                                RejectReason::Overloaded,
                                "scripted overload",
                            ),
                        )
                        .expect("write rejection"),
                        Some(Step::RejectQuota) => write_frame(
                            &mut writer,
                            &wire::encode_rejected(
                                batch.request_id,
                                RejectReason::QuotaExceeded,
                                "scripted quota refusal",
                            ),
                        )
                        .expect("write rejection"),
                        Some(Step::Hangup) => continue 'sessions,
                        Some(Step::Serve) => write_frame(
                            &mut writer,
                            &wire::encode_batch_result(
                                batch.request_id,
                                &[Ok(WireEstimates {
                                    model_epoch: 7,
                                    estimates: vec![(0b1, 42.5)],
                                })],
                            ),
                        )
                        .expect("write result"),
                        None => return served,
                    }
                    if steps.is_empty() {
                        // Script exhausted: let the client read the final
                        // reply (its EOF ends this read loop), then exit.
                        while read_frame(&mut reader, &mut frame).unwrap_or(false) {}
                        return served;
                    }
                }
                // The client closed the session with steps still scripted:
                // it gave up early (e.g. a fatal rejection it refuses to
                // retry). Only a `Hangup` step invites a reconnect, so
                // exit instead of blocking in accept forever.
                return served;
            }
        });
        (addr, handle)
    }

    fn fast_retries(n: u32) -> ClientConfig {
        ClientConfig::default()
            .with_retry(RetryPolicy::retries(n).with_base_backoff(Duration::from_millis(1)))
    }

    #[test]
    fn call_retries_overloaded_until_served() {
        let (addr, server) = scripted_server(vec![
            Step::RejectOverloaded,
            Step::RejectOverloaded,
            Step::Serve,
        ]);
        let mut client = FjClient::connect_with(addr, fast_retries(3)).expect("connect");
        match client.call("stats", 1, &[one_query()]).expect("call") {
            BatchOutcome::Served(results) => {
                let est = results[0].as_ref().expect("served");
                assert_eq!(est.model_epoch, 7);
                assert_eq!(est.estimates, vec![(0b1, 42.5)]);
            }
            other => panic!("retries did not ride out the overload: {other:?}"),
        }
        drop(client); // EOF ends the session so the script thread exits
        assert_eq!(
            server.join().unwrap(),
            3,
            "two rejected attempts + one served"
        );
    }

    #[test]
    fn call_reconnects_and_resends_after_hangup() {
        let (addr, server) = scripted_server(vec![Step::Hangup, Step::Serve]);
        let mut client = FjClient::connect_with(addr, fast_retries(2)).expect("connect");
        match client.call("stats", 1, &[one_query()]).expect("call") {
            BatchOutcome::Served(results) => assert!(results[0].is_ok()),
            other => panic!("reconnect+resend failed: {other:?}"),
        }
        assert!(client.is_connected(), "the replacement connection is live");
        drop(client);
        assert_eq!(server.join().unwrap(), 2, "the request was resent once");
    }

    #[test]
    fn fatal_rejections_are_not_retried() {
        let (addr, server) = scripted_server(vec![Step::RejectQuota, Step::Serve]);
        let mut client = FjClient::connect_with(addr, fast_retries(5)).expect("connect");
        match client.call("stats", 1, &[one_query()]).expect("call") {
            BatchOutcome::Rejected { reason, .. } => {
                assert_eq!(reason, RejectReason::QuotaExceeded);
            }
            other => panic!("fatal verdict must surface immediately: {other:?}"),
        }
        drop(client);
        assert_eq!(server.join().unwrap(), 1, "no retry after a fatal verdict");
    }

    #[test]
    fn exhausted_policy_returns_the_last_rejection() {
        let (addr, server) = scripted_server(vec![
            Step::RejectOverloaded,
            Step::RejectOverloaded,
            Step::RejectOverloaded,
        ]);
        let mut client = FjClient::connect_with(addr, fast_retries(2)).expect("connect");
        match client.call("stats", 1, &[one_query()]).expect("call") {
            BatchOutcome::Rejected { reason, .. } => assert_eq!(reason, RejectReason::Overloaded),
            other => panic!("expected the final rejection: {other:?}"),
        }
        drop(client);
        assert_eq!(server.join().unwrap(), 3, "initial attempt + 2 retries");
    }

    #[test]
    fn silent_server_times_out_within_the_request_budget() {
        // A server that handshakes and then never replies: the classic
        // stall only a deadline can unstick.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = StdBufReader::new(stream);
            let mut frame = Vec::new();
            read_frame(&mut reader, &mut frame).expect("hello");
            write_frame(&mut writer, &wire::encode_hello_ok(&["stats".to_string()]))
                .expect("hello_ok");
            // Read the request, confirm its wire deadline, go silent.
            read_frame(&mut reader, &mut frame).expect("request");
            let batch = wire::decode_estimate_batch(&frame).expect("decode");
            assert!(batch.deadline_ms > 0, "the budget rides as the deadline");
            while read_frame(&mut reader, &mut frame).unwrap_or(false) {}
        });
        let config = ClientConfig::default()
            .with_request_timeout(Some(Duration::from_millis(100)))
            .with_retry(RetryPolicy::none());
        let mut client = FjClient::connect_with(addr, config).expect("connect");
        let started = Instant::now();
        let err = client
            .call("stats", 1, &[one_query()])
            .expect_err("a silent server cannot serve");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            "unexpected error: {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the call must be bounded by its budget, took {:?}",
            started.elapsed()
        );
        assert!(!client.is_connected(), "the stalled connection is poisoned");
        drop(client);
        server.join().unwrap();
    }
}
