//! Client-side retry policy: jittered exponential backoff plus the
//! retryable-vs-fatal classification, as **pure functions** — no sockets,
//! no clocks, no global state — so the whole policy is testable (and
//! reproducible) in isolation. [`super::FjClient::call`] is the one place
//! that acts on it.
//!
//! Retrying an estimate is always safe: estimation is read-only, so an
//! idempotent resend can at worst waste work, never corrupt state.

use crate::fault::splitmix64;
use crate::request::RejectReason;
use std::io;
use std::time::Duration;

/// When and how long to back off between retries of one logical call.
///
/// Attempt `n` (0-based) backs off for `min(base_backoff · 2ⁿ,
/// max_backoff)` scaled by a deterministic jitter factor in `[0.5, 1.0)`
/// drawn from `seed` — jitter stops a herd of clients that failed together
/// from retrying together, and seeding it keeps test schedules exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt; 0 disables retrying entirely.
    pub max_retries: u32,
    /// Backoff before the first retry (doubles each further retry).
    pub base_backoff: Duration,
    /// Ceiling the exponential schedule saturates at.
    pub max_backoff: Duration,
    /// Seed for the jitter stream (same seed, same schedule).
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: every failure is final. The default for
    /// [`super::FjClient::connect`], so admission-control verdicts stay
    /// visible to callers that want to see them.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            seed: 0,
        }
    }

    /// `max_retries` retries with a 25 ms base backoff capped at 1 s.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            seed: 0x5eed_f0ed,
        }
    }

    /// Overrides the base backoff.
    pub fn with_base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Overrides the backoff ceiling.
    pub fn with_max_backoff(mut self, max: Duration) -> Self {
        self.max_backoff = max;
        self
    }

    /// Overrides the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The backoff before retry `attempt` (0-based), or `None` when the
    /// policy says give up. Pure: same policy, same attempt, same answer.
    pub fn backoff(&self, attempt: u32) -> Option<Duration> {
        if attempt >= self.max_retries {
            return None;
        }
        // 2^attempt saturates well below overflow; past 2^20 the cap has
        // long since taken over anyway.
        let uncapped = self.base_backoff.saturating_mul(1u32 << attempt.min(20));
        Some(uncapped.min(self.max_backoff).mul_f64(self.jitter(attempt)))
    }

    /// Deterministic jitter factor in `[0.5, 1.0)` for `attempt`.
    fn jitter(&self, attempt: u32) -> f64 {
        let mut state = self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let frac = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        0.5 + frac / 2.0
    }

    /// Whether a server rejection is worth retrying.
    ///
    /// | reason | verdict | why |
    /// |---|---|---|
    /// | `Overloaded` | retry | transient shed; backoff is the whole point |
    /// | `QuotaExceeded` | fatal | resending grows the very backlog that tripped it |
    /// | `ShuttingDown` | fatal | this replica is draining; fail over, don't wait |
    /// | `UnknownDataset` | fatal | a config bug; no retry fixes it |
    /// | `ResponseTooLarge` | fatal | same batch, same size; split it instead |
    /// | `DeadlineExceeded` | fatal | the budget is spent; a retry has none left |
    pub fn is_retryable_rejection(reason: RejectReason) -> bool {
        matches!(reason, RejectReason::Overloaded)
    }

    /// Whether a transport error is worth a reconnect-and-resend. Timeouts
    /// and dropped/refused connections are; protocol violations
    /// (`InvalidData` — a corrupt or incompatible peer) are not.
    pub fn is_retryable_io(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::TimedOut
                | io::ErrorKind::WouldBlock
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::ConnectionRefused
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::NotConnected
                | io::ErrorKind::UnexpectedEof
                | io::ErrorKind::Interrupted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gives_up_after_exactly_max_retries() {
        let policy = RetryPolicy::retries(3);
        assert!(policy.backoff(0).is_some());
        assert!(policy.backoff(1).is_some());
        assert!(policy.backoff(2).is_some());
        assert_eq!(policy.backoff(3), None);
        assert_eq!(policy.backoff(100), None);
        assert_eq!(RetryPolicy::none().backoff(0), None, "none() never retries");
    }

    #[test]
    fn schedule_doubles_within_jitter_bounds_until_the_cap() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(160);
        let policy = RetryPolicy::retries(12)
            .with_base_backoff(base)
            .with_max_backoff(cap);
        for attempt in 0..12u32 {
            let delay = policy.backoff(attempt).unwrap();
            let nominal = base.saturating_mul(1 << attempt.min(20)).min(cap);
            assert!(
                delay >= nominal.mul_f64(0.5) && delay < nominal,
                "attempt {attempt}: {delay:?} outside [{:?}, {nominal:?})",
                nominal.mul_f64(0.5),
            );
        }
        // Deep attempts saturate at the cap (never overflow, never exceed).
        let deep = policy.backoff(11).unwrap();
        assert!(deep < cap && deep >= cap.mul_f64(0.5));
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_varies_across_attempts() {
        let a = RetryPolicy::retries(8).with_seed(7);
        let b = RetryPolicy::retries(8).with_seed(7);
        let schedule_a: Vec<_> = (0..8).map(|n| a.backoff(n)).collect();
        let schedule_b: Vec<_> = (0..8).map(|n| b.backoff(n)).collect();
        assert_eq!(schedule_a, schedule_b, "same seed, same schedule");

        let other = RetryPolicy::retries(8).with_seed(8);
        let schedule_other: Vec<_> = (0..8).map(|n| other.backoff(n)).collect();
        assert_ne!(schedule_a, schedule_other, "seed changes the schedule");

        // Fixed-point jitter sanity: factors spread across [0.5, 1.0), not
        // stuck at one value (compare two capped attempts, same nominal).
        let capped = RetryPolicy::retries(20)
            .with_base_backoff(Duration::from_millis(100))
            .with_max_backoff(Duration::from_millis(100));
        assert_ne!(capped.backoff(10), capped.backoff(11));
    }

    #[test]
    fn rejection_classification_table() {
        use RejectReason::*;
        let table = [
            (Overloaded, true),
            (QuotaExceeded, false),
            (ShuttingDown, false),
            (UnknownDataset, false),
            (ResponseTooLarge, false),
            (DeadlineExceeded, false),
        ];
        for (reason, retryable) in table {
            assert_eq!(
                RetryPolicy::is_retryable_rejection(reason),
                retryable,
                "{reason:?}"
            );
        }
    }

    #[test]
    fn io_classification_table() {
        use io::ErrorKind::*;
        for kind in [
            TimedOut,
            WouldBlock,
            ConnectionReset,
            ConnectionAborted,
            ConnectionRefused,
            BrokenPipe,
            NotConnected,
            UnexpectedEof,
            Interrupted,
        ] {
            assert!(RetryPolicy::is_retryable_io(kind), "{kind:?} is transient");
        }
        for kind in [
            InvalidData,
            InvalidInput,
            PermissionDenied,
            AddrInUse,
            NotFound,
        ] {
            assert!(!RetryPolicy::is_retryable_io(kind), "{kind:?} is fatal");
        }
    }
}
