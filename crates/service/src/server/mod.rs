//! The network serving tier: [`FjServer`] / [`FjClient`] over a
//! length-prefixed binary TCP protocol (see [`wire`]).
//!
//! Design in one breath: per-dataset shards (own registry, own
//! [`crate::EstimatorService`] worker pool, own bounded queue), one
//! reader plus one collector thread per connection, client-chosen
//! `request_id`s multiplexing pipelined batches, and admission control
//! that **rejects
//! instead of blocking** — a full shard queue sheds the batch
//! ([`crate::request::RejectReason::Overloaded`]), a client past its
//! in-flight quota is refused
//! ([`crate::request::RejectReason::QuotaExceeded`]), and both show up in
//! [`crate::StatsSnapshot`]. Estimates cross the wire bit-identical
//! (`f64::to_bits`), epoch-tagged so clients detect model hot-swaps
//! mid-flight.

mod client;
mod retry;
#[allow(clippy::module_inception)]
mod server;
pub mod wire;

pub use client::{ClientConfig, FjClient};
pub use retry::RetryPolicy;
pub use server::{FjServer, ServerConfig, ShardSpec};
pub use wire::{
    BatchOutcome, HealthReport, ShardHealth, WireError, WireEstimates, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
